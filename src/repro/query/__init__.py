"""``repro.query`` -- the shared declarative query core.

Every read surface in the repo compiles the same operator-spec pipeline
language through this package: the Log store's server-side analytics
(:mod:`repro.store.loglake`), the Sync/Rollup push-down dataflows, the
unified :meth:`repro.exchange.base.DataExchange.query` API, and the
federation plane's composed views (:mod:`repro.federation`).

- :func:`compile_ops` -- operator specs -> ``records -> records``;
- :data:`OPERATORS` -- the operator catalog;
- :class:`Query` / :class:`QueryResult` -- the keyword-only read spec
  and its answered form;
- :class:`~repro.errors.QueryError` -- the typed failure, re-exported.

The old entry point ``repro.store.zql.compile_query`` survives as a
warn-once deprecation shim; new code imports from here.
"""

from repro.errors import QueryError
from repro.query.core import OPERATORS, compile_ops
from repro.query.spec import CONSISTENCY_LEVELS, Query, QueryResult

__all__ = [
    "CONSISTENCY_LEVELS",
    "OPERATORS",
    "Query",
    "QueryError",
    "QueryResult",
    "compile_ops",
]
