"""The shared query core: operator compilation for every read surface.

One pipeline language serves the whole repo -- the Log store's
server-side analytics, Sync/Rollup push-down dataflows, the unified
``DataExchange.query`` read API, and the federation plane's composed
views all compile the same operator specs through :func:`compile_ops`.
(Historically this engine lived in :mod:`repro.store.zql`; that module
remains as the compatibility shim.)

A query is a list of operator specs applied left-to-right to a batch of
records (plain dicts)::

    {"op": "filter",   "expr": "triggered == true"}
    {"op": "rename",   "from": "triggered", "to": "motion"}
    {"op": "cut",      "fields": ["ts", "motion"]}
    {"op": "drop",     "fields": ["raw"]}
    {"op": "derive",   "field": "kwh", "expr": "watts * hours / 1000"}
    {"op": "sort",     "by": "ts", "reverse": false}
    {"op": "head",     "count": 10}
    {"op": "tail",     "count": 10}
    {"op": "distinct", "field": "device"}
    {"op": "agg",      "aggs": {"total": "sum(kwh)"}, "by": ["device"]}

Expressions reference record fields by name (missing fields evaluate to
``None`` rather than failing: logs are semi-structured) and may use the
safe builtins of :mod:`repro.util.safeexpr`.

Errors are typed: a malformed spec or a pipeline failure raises
:class:`~repro.errors.QueryError` (a :class:`~repro.errors.StoreError`
subclass, so pre-existing handlers keep working) that names the
offending operator spec.
"""

from repro.errors import ExpressionError, QueryError
from repro.util.safeexpr import SAFE_BUILTINS, SafeExpression


def _eval(expr, record):
    """Evaluate against a record; absent fields read as None.

    Free names that are safe builtins (``int``, ``len``, ...) stay
    functions unless the record actually has a field of that name.
    """
    context = {
        name: record.get(name)
        for name in expr.names
        if name != "this" and (name not in SAFE_BUILTINS or name in record)
    }
    context["this"] = record
    try:
        return expr.evaluate(context)
    except ExpressionError:
        return None


def compile_ops(ops):
    """Compile operator specs into a ``records -> records`` callable."""
    stages = [_compile_op(spec) for spec in ops]

    def run(records):
        for stage in stages:
            records = stage(records)
        return records

    run.stages = len(stages)
    return run


def _compile_op(spec):
    if not isinstance(spec, dict) or "op" not in spec:
        raise QueryError(f"bad operator spec {spec!r}")
    op = spec["op"]
    builder = _BUILDERS.get(op)
    if builder is None:
        raise QueryError(f"unknown operator {op!r}")
    return builder(spec)


def _require(spec, *keys):
    for key in keys:
        if key not in spec:
            raise QueryError(f"operator {spec.get('op')!r} requires {key!r}")


def _build_filter(spec):
    _require(spec, "expr")
    expr = SafeExpression(spec["expr"])

    def stage(records):
        return [r for r in records if _eval(expr, r)]

    return stage


def _build_rename(spec):
    _require(spec, "from", "to")
    src, dst = spec["from"], spec["to"]

    def stage(records):
        out = []
        for record in records:
            record = dict(record)
            if src in record:
                record[dst] = record.pop(src)
            out.append(record)
        return out

    return stage


def _build_cut(spec):
    _require(spec, "fields")
    fields = list(spec["fields"])

    def stage(records):
        return [{f: r.get(f) for f in fields if f in r} for r in records]

    return stage


def _build_drop(spec):
    _require(spec, "fields")
    fields = set(spec["fields"])

    def stage(records):
        return [{k: v for k, v in r.items() if k not in fields} for r in records]

    return stage


def _build_derive(spec):
    _require(spec, "field", "expr")
    field = spec["field"]
    expr = SafeExpression(spec["expr"])

    def stage(records):
        out = []
        for record in records:
            record = dict(record)
            record[field] = _eval(expr, record)
            out.append(record)
        return out

    return stage


def _build_sort(spec):
    _require(spec, "by")
    by = spec["by"]
    reverse = bool(spec.get("reverse", False))

    def key(record):
        value = record.get(by)
        # None sorts first (stable across mixed presence).
        return (value is not None, value)

    def stage(records):
        if records and not any(by in r for r in records):
            # A field no record carries is a spec mistake, not a
            # semi-structured gap -- fail loudly, naming the operator.
            raise QueryError(
                f"sort: unknown field {by!r} (no scanned record has it) "
                f"in op {spec!r}"
            )
        try:
            return sorted(records, key=key, reverse=reverse)
        except TypeError as error:
            raise QueryError(
                f"sort: field {by!r} mixes un-orderable types in op "
                f"{spec!r}: {error}"
            ) from None

    return stage


def _build_head(spec):
    count = int(spec.get("count", 1))

    def stage(records):
        return records[:count]

    return stage


def _build_tail(spec):
    count = int(spec.get("count", 1))

    def stage(records):
        return records[-count:] if count else []

    return stage


def _build_distinct(spec):
    _require(spec, "field")
    field = spec["field"]

    def stage(records):
        seen = set()
        out = []
        for record in records:
            value = record.get(field)
            marker = (type(value).__name__, str(value))
            if marker not in seen:
                seen.add(marker)
                out.append(record)
        return out

    return stage


_AGG_RE_HELP = "aggregations must look like 'sum(field)', 'count()', 'avg(x)'"
_AGG_FUNCS = {
    "sum": lambda values: sum(values) if values else 0,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "count": len,
    "first": lambda values: values[0] if values else None,
    "last": lambda values: values[-1] if values else None,
}


def _parse_agg(text):
    text = text.strip()
    if "(" not in text or not text.endswith(")"):
        raise QueryError(f"bad aggregation {text!r}: {_AGG_RE_HELP}")
    fn_name, arg = text[:-1].split("(", 1)
    fn = _AGG_FUNCS.get(fn_name.strip())
    if fn is None:
        raise QueryError(f"unknown aggregation function {fn_name!r}")
    return fn_name.strip(), fn, arg.strip()


def _build_agg(spec):
    _require(spec, "aggs")
    parsed = {out: _parse_agg(agg) for out, agg in spec["aggs"].items()}
    group_by = list(spec.get("by", []))

    def stage(records):
        groups = {}
        for record in records:
            key = tuple(record.get(g) for g in group_by)
            groups.setdefault(key, []).append(record)
        if not groups and not group_by:
            # Global aggregation over no records: one identity row
            # (count()=0, sum()=0, ...), matching SQL semantics.
            groups[()] = []
        out = []
        for key, members in groups.items():
            row = dict(zip(group_by, key))
            for out_field, (fn_name, fn, arg) in parsed.items():
                if fn_name == "count" and not arg:
                    row[out_field] = len(members)
                else:
                    values = [m[arg] for m in members if m.get(arg) is not None]
                    row[out_field] = fn(values)
            out.append(row)
        return out

    return stage


_BUILDERS = {
    "filter": _build_filter,
    "rename": _build_rename,
    "cut": _build_cut,
    "drop": _build_drop,
    "derive": _build_derive,
    "sort": _build_sort,
    "head": _build_head,
    "tail": _build_tail,
    "distinct": _build_distinct,
    "agg": _build_agg,
}

#: Operator names understood by :func:`compile_ops`.
OPERATORS = frozenset(_BUILDERS)
