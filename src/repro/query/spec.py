"""The unified declarative read spec behind ``DataExchange.query``.

One keyword-only :class:`Query` subsumes the repo's historically
fragmented read surface -- ``ObjectStoreHandle.list()`` + local
filtering, ad-hoc ``zql.compile_query`` call sites, and per-DE query
verbs -- behind a single shape the exchange (and the federation
planner) can reason about:

- ``target``: a hosted store name or a registered composed-view name;
- ``ops``: a pipeline of shared-core operator specs
  (:func:`repro.query.core.compile_ops`), validated eagerly;
- ``freshness``: the staleness bound in seconds the caller tolerates
  (``0`` demands a synchronous read of the source stores; ``None``
  defers to the view's declared default);
- ``consistency``: ``"strong"`` (always read the sources),
  ``"bounded"`` (serve materialized state while its staleness estimate
  is within ``freshness``), or ``"any"`` (serve materialized state
  whenever one exists);
- ``principal``: the RBAC / admission / audit identity of the read;
- ``keys``: optional root-key restriction (the "order details page"
  access path: exactly these objects, composed).
"""

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.core import compile_ops

#: Accepted ``consistency`` levels, weakest-to-strongest guarantees last.
CONSISTENCY_LEVELS = ("strong", "bounded", "any")


@dataclass(frozen=True)
class Query:
    """A validated, immutable read specification."""

    target: str
    ops: tuple = ()
    freshness: float = None
    consistency: str = None
    principal: str = None
    keys: tuple = None

    def __post_init__(self):
        if not self.target or not isinstance(self.target, str):
            raise QueryError(f"query target must be a store/view name, got "
                             f"{self.target!r}")
        object.__setattr__(self, "ops", tuple(self.ops or ()))
        compile_ops(self.ops)  # validate eagerly; raises QueryError
        if self.freshness is not None and self.freshness < 0:
            raise QueryError(
                f"freshness bound must be >= 0 seconds, got {self.freshness}"
            )
        if self.consistency is not None \
                and self.consistency not in CONSISTENCY_LEVELS:
            raise QueryError(
                f"unknown consistency {self.consistency!r} "
                f"(expected one of {CONSISTENCY_LEVELS})"
            )
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(self.keys))

    def effective_consistency(self):
        """The level the planner acts on when none was named.

        ``freshness=0`` (or no bound at all) means the caller wants the
        sources' current truth -- ``strong``; a positive bound opts into
        ``bounded`` staleness.
        """
        if self.consistency is not None:
            return self.consistency
        if self.freshness is None or self.freshness <= 0:
            return "strong"
        return "bounded"

    def pipeline(self):
        """The compiled ``records -> records`` callable."""
        return compile_ops(self.ops)


@dataclass
class QueryResult:
    """Records plus the provenance the planner attached."""

    records: list
    strategy: str  # "direct" | "federated" | "materialized"
    staleness: float = 0.0
    sources: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]
