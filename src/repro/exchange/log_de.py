"""The Log Data Exchange.

Hosts append-only data stores ("keeps states as structured and
semi-structured data as append-only logs and exposes data ingestion and
analytics APIs", paper §3.2) on the Zed-lake-like backend.  In the smart
home app (Fig. 4) each knactor has a Log store holding sensor readings:
Motion's ``{triggered}``, Lamp's ``{energy}``, House's ``{kwh, motion}``.

Access model: the owner may load anything its schema admits; an
integrator's standard grant may load only the fields annotated
``+kr: ingest`` (plus query/watch).  Log stores are semi-structured, so
validation checks declared fields' types but permits unknown fields.
"""

from repro.errors import ConfigurationError
from repro.exchange.base import DataExchange, StoreHandle
from repro.schema.validation import validate_state
from repro.store.loglake import LogLake, LogLakeClient


class LogDE(DataExchange):
    """Log exchange over the lake backend."""

    def __init__(self, env, backend, name="log-de", retry_policy=None,
                 watch_credits=None, watch_overflow=None):
        if not isinstance(backend, LogLake):
            raise ConfigurationError(
                f"LogDE needs a LogLake backend, got {type(backend).__name__}"
            )
        super().__init__(env, backend, name, retry_policy=retry_policy,
                         watch_credits=watch_credits,
                         watch_overflow=watch_overflow)

    def _on_hosted(self, hosted):
        # Control-plane setup: create the backing pool directly.
        self.backend.op_create_pool(pool=hosted.name)

    def _role_policy(self, role, store_name):
        """Integrator: query/watch + load scoped to ``+kr: ingest``.
        Reader: query/watch only."""
        if role == "integrator":
            schema = self.schema_for(store_name)
            ingest = tuple(f.path for f in schema.ingest_fields())
            return (
                {"query", "watch", "load"},
                ingest,
                "integrator grant (ingest fields only)",
            )
        if role == "reader":
            return {"query", "watch"}, (), "read-only grant"
        return super()._role_policy(role, store_name)

    def _make_handle(self, hosted, principal, location, retry_policy):
        policy = retry_policy if retry_policy is not None else self.retry_policy
        client = LogLakeClient(self.backend, location, retry_policy=policy)
        return LogStoreHandle(self, hosted, principal, client)


class LogStoreHandle(StoreHandle):
    """A principal's access handle to one hosted Log store."""

    # -- operations -------------------------------------------------------------

    def load(self, records):
        """Append records (validated; field scope enforced for grants)."""
        touched = sorted({key for record in records for key in record})
        self._check("load", fields=touched)
        for record in records:
            validate_state(
                record, self.schema, partial=True, allow_unknown=True
            ).raise_if_invalid()
        return self.client.load(self.hosted.name, records)

    def query(self, ops=(), since_seq=None, until_seq=None,
              include_watermark=False):
        """Run a pushed-down pipeline over the pool (optional seq range).

        ``include_watermark=True`` (the federation scan hook) returns
        ``{"records", "watermark"}`` so the caller can stamp the exact
        sequence point its snapshot covers and resume from it.
        """
        self._check("query")
        return self.client.query(
            self.hosted.name, ops=ops, since_seq=since_seq,
            until_seq=until_seq, include_watermark=include_watermark,
        )

    def stats(self):
        self._check("query")
        return self.client.stats(self.hosted.name)

    def watch(self, handler, *, batch_handler=None, on_close=None,
              credits=None, overflow=None):
        """Subscribe to appended batches.

        ``on_close`` fires if the backend drops the subscription
        (failover) or credit flow control forces a slow-consumer resync;
        callers re-watch and catch up from their cursor.
        ``batch_handler`` consumes coalesced deliveries in one call when
        the lake batches watch fan-out.  ``credits``/``overflow``
        override the handle's flow-control defaults for this stream
        (Log streams queue contiguously while paused; batches are never
        coalesced away).
        """
        self._check("watch")
        return self.client.watch(
            handler, key_prefix=self.hosted.name, on_close=on_close,
            batch_handler=batch_handler, credits=credits, overflow=overflow,
        )
