"""The Log Data Exchange.

Hosts append-only data stores ("keeps states as structured and
semi-structured data as append-only logs and exposes data ingestion and
analytics APIs", paper §3.2) on the Zed-lake-like backend.  In the smart
home app (Fig. 4) each knactor has a Log store holding sensor readings:
Motion's ``{triggered}``, Lamp's ``{energy}``, House's ``{kwh, motion}``.

Access model: the owner may load anything its schema admits; an
integrator's standard grant may load only the fields annotated
``+kr: ingest`` (plus query/watch).  Log stores are semi-structured, so
validation checks declared fields' types but permits unknown fields.
"""

from repro.errors import ConfigurationError
from repro.exchange.base import DataExchange
from repro.schema.validation import validate_state
from repro.store.loglake import LogLake, LogLakeClient


class LogDE(DataExchange):
    """Log exchange over the lake backend."""

    def __init__(self, env, backend, name="log-de"):
        if not isinstance(backend, LogLake):
            raise ConfigurationError(
                f"LogDE needs a LogLake backend, got {type(backend).__name__}"
            )
        super().__init__(env, backend, name)

    def _on_hosted(self, hosted):
        # Control-plane setup: create the backing pool directly.
        self.backend.op_create_pool(pool=hosted.name)

    def grant_integrator(self, principal, store_name, note=""):
        """Query/watch + load scoped to ``+kr: ingest`` fields."""
        schema = self.schema_for(store_name)
        ingest = tuple(f.path for f in schema.ingest_fields())
        return self.grant(
            principal,
            store_name,
            verbs={"query", "watch", "load"},
            write_fields=ingest,
            note=note or "integrator grant (ingest fields only)",
        )

    def grant_reader(self, principal, store_name, note=""):
        return self.grant(
            principal,
            store_name,
            verbs={"query", "watch"},
            write_fields=(),
            note=note or "read-only grant",
        )

    def handle(self, store_name, principal, location=None):
        hosted = self.store(store_name)
        client = LogLakeClient(
            self.backend, location if location is not None else principal,
            retry_policy=self.retry_policy,
        )
        return LogStoreHandle(self, hosted, principal, client)


class LogStoreHandle:
    """A principal's access handle to one hosted Log store."""

    def __init__(self, de, hosted, principal, client):
        self.de = de
        self.hosted = hosted
        self.principal = principal
        self.client = client

    @property
    def env(self):
        return self.de.env

    @property
    def schema(self):
        return self.hosted.schema

    @property
    def store_name(self):
        return self.hosted.name

    def _check(self, verb, fields=None):
        self.de.acl.check(
            self.principal,
            self.hosted.name,
            verb,
            now=self.env.now,
            fields=fields,
        )

    # -- operations -------------------------------------------------------------

    def load(self, records):
        """Append records (validated; field scope enforced for grants)."""
        touched = sorted({key for record in records for key in record})
        self._check("load", fields=touched)
        for record in records:
            validate_state(
                record, self.schema, partial=True, allow_unknown=True
            ).raise_if_invalid()
        return self.client.load(self.hosted.name, records)

    def query(self, ops=(), since_seq=None, until_seq=None):
        self._check("query")
        return self.client.query(
            self.hosted.name, ops=ops, since_seq=since_seq, until_seq=until_seq
        )

    def stats(self):
        self._check("query")
        return self.client.stats(self.hosted.name)

    def watch(self, handler, on_close=None):
        """Subscribe to appended batches.

        ``on_close`` fires if the backend drops the subscription
        (failover); callers re-watch and catch up from their cursor.
        """
        self._check("watch")
        return self.client.watch(
            handler, key_prefix=self.hosted.name, on_close=on_close
        )
