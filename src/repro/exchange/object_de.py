"""The Object Data Exchange.

Hosts attribute-value data stores ("keeps states as attribute-value pairs
in a k-v store and exposes APIs for CRUD operations", paper §3.2) on either
Object backend -- the apiserver-like store or the Redis-like store -- which
is exactly the ``K-apiserver`` vs ``K-redis`` axis of Table 2.

Every handle operation:

1. passes RBAC (+ field-scope for writes, + run-time conditions),
2. validates the payload against the store's schema,
3. executes on the backend with real (virtual-clock) latency,
4. masks ``+kr: secret`` fields on the way out for non-privileged readers.
"""

from repro.errors import ConfigurationError
from repro.exchange.base import DataExchange, StoreHandle
from repro.schema.validation import validate_state
from repro.store.apiserver import ApiServer, ApiServerClient
from repro.store.base import WatchEvent
from repro.store.cow import copy_value, mask_shared
from repro.store.memkv import MemKV, MemKVClient
from repro.store.sharded import ShardedStore, ShardedStoreClient
from repro.util.paths import delete_path, get_path, walk_leaves


class ObjectDE(DataExchange):
    """Object exchange over an apiserver-like, Redis-like, or sharded backend."""

    def __init__(self, env, backend, name="object-de", retry_policy=None,
                 watch_credits=None, watch_overflow=None):
        if not isinstance(backend, (ApiServer, MemKV, ShardedStore)):
            raise ConfigurationError(
                f"ObjectDE needs an ApiServer, MemKV, or ShardedStore "
                f"backend, got {type(backend).__name__}"
            )
        super().__init__(env, backend, name, retry_policy=retry_policy,
                         watch_credits=watch_credits,
                         watch_overflow=watch_overflow)

    def _client(self, location, retry_policy=None):
        policy = retry_policy if retry_policy is not None else self.retry_policy
        if isinstance(self.backend, ShardedStore):
            return ShardedStoreClient(self.backend, location, retry_policy=policy)
        if isinstance(self.backend, ApiServer):
            return ApiServerClient(self.backend, location, retry_policy=policy)
        return MemKVClient(self.backend, location, retry_policy=policy)

    def _role_policy(self, role, store_name):
        """Integrator: read + writes scoped to ``+kr: external``.  Reader:
        read-only."""
        if role == "integrator":
            schema = self.schema_for(store_name)
            external = tuple(f.path for f in schema.external_fields())
            return (
                {"get", "list", "watch", "patch", "create"},
                external,
                "integrator grant (external fields only)",
            )
        if role == "reader":
            return {"get", "list", "watch"}, (), "read-only grant"
        return super()._role_policy(role, store_name)

    def _make_handle(self, hosted, principal, location, retry_policy):
        return ObjectStoreHandle(
            de=self,
            hosted=hosted,
            principal=principal,
            client=self._client(location, retry_policy),
        )

    def transaction(self, principal, location=None, mode=None,
                    idempotence_key=None):
        """Start an atomic multi-store transaction (paper §5).

        Operations may span any stores hosted on THIS exchange (they share
        a backend, which is what makes atomicity cheap).  Every queued
        operation passes the same access-control and schema checks a
        handle would apply; ``commit()`` applies all of them in one
        backend round trip, all-or-nothing.

        On a sharded backend, a batch whose keys land on several shards
        needs ``mode="2pc"`` or ``mode="saga"`` (and optionally an
        ``idempotence_key`` for exactly-once submission) -- otherwise
        ``commit()`` fails with
        :class:`~repro.errors.CrossShardTxnError`.
        """
        return Transaction(
            de=self,
            principal=principal,
            client=self._client(location if location is not None else principal),
            mode=mode,
            idempotence_key=idempotence_key,
        )

    @property
    def supports_udf(self):
        """True when the backend can run pushed-down integrator logic."""
        return isinstance(self.backend, MemKV)


class ObjectStoreHandle(StoreHandle):
    """A principal's access handle to one hosted Object store."""

    # -- helpers -----------------------------------------------------------

    def _key(self, key):
        return f"{self.hosted.name}/{key}"

    def _mask(self, view):
        """Strip secret fields unless this principal may read them.

        Zero-copy backends build the masked view as a deletion
        merge-patch applied by path copy: unmasked subtrees stay shared
        with the store's frozen structure instead of being deep-copied
        per read.
        """
        secrets = self.schema.secret_fields()
        if not secrets:
            return view
        readable = self.de.acl.readable_secret_fields(
            self.principal, self.hosted.name
        )
        if "*" in readable:
            return view
        hidden = [f.path for f in secrets if f.path not in readable]
        if not hidden:
            return view
        masked = dict(view)
        if getattr(self.client, "zero_copy", False):
            masked["data"] = mask_shared(
                view["data"], hidden, meter=self.client.copy_meter
            )
        else:
            meter = getattr(self.client, "copy_meter", None)
            masked["data"] = copy_value(view["data"], meter, "mask")
            for path in hidden:
                delete_path(masked["data"], path)
        return masked

    @staticmethod
    def _patch_paths(patch):
        return [".".join(str(p) for p in path) for path, _ in walk_leaves(patch)]

    # -- operations (each returns a simnet process event) --------------------

    def create(self, key, data):
        self._check("create", fields=self._patch_paths(data))
        validate_state(data, self.schema).raise_if_invalid()
        return self._masked_request(self.client.create(self._key(key), data))

    def get(self, key):
        self._check("get")
        return self._masked_request(self.client.get(self._key(key)))

    def update(self, key, data, resource_version=None):
        self._check("update", fields=self._patch_paths(data))
        validate_state(data, self.schema).raise_if_invalid()
        return self._masked_request(
            self.client.update(self._key(key), data, resource_version)
        )

    def patch(self, key, patch, resource_version=None):
        self._check("patch", fields=self._patch_paths(patch))
        validate_state(patch, self.schema, partial=True).raise_if_invalid()
        return self._masked_request(
            self.client.patch(self._key(key), patch, resource_version)
        )

    def delete(self, key):
        self._check("delete")
        return self.client.delete(self._key(key))

    def list(self, prefix=""):
        self._check("list")

        def run(env):
            views = yield self.client.list(self._key(prefix))
            return [self._strip_prefix(self._mask(v)) for v in views]

        return self.env.process(run(self.env))

    def watch(self, handler, prefix="", *, batch_handler=None, on_close=None,
              credits=None, overflow=None):
        """Watch this store; events carry keys relative to the store.

        ``on_close`` fires if the backend drops the watch (failover) or
        credit flow control forces a slow-consumer resync; callers
        re-watch and resync.  ``batch_handler(events)`` receives whole
        coalesced deliveries (masked, prefix-stripped) when the backend
        batches watch fan-out.  ``credits``/``overflow`` override the
        handle's flow-control defaults for this stream.
        """
        self._check("watch")

        def transform(event):
            view = self._mask({"data": event.object})
            return WatchEvent(
                type=event.type,
                key=event.key[len(self.hosted.key_prefix) :],
                object=view["data"],
                revision=event.revision,
                ctx=event.ctx,
                committed_at=event.committed_at,
            )

        wrapped = None
        if handler is not None:
            def wrapped(event):
                handler(transform(event))

        wrapped_batch = None
        if batch_handler is not None:
            def wrapped_batch(events):
                batch_handler([transform(e) for e in events])

        return self.client.watch(
            wrapped, key_prefix=self.hosted.key_prefix + prefix,
            on_close=on_close, batch_handler=wrapped_batch,
            credits=credits, overflow=overflow,
        )

    def read_field(self, key, path, default=None):
        """Convenience: read one dotted field of one object."""

        def run(env):
            view = yield self.get(key)
            return get_path(view["data"], path, default=default)

        return self.env.process(run(self.env))

    # -- internals ------------------------------------------------------------

    def _masked_request(self, request):
        def run(env):
            view = yield request
            return self._strip_prefix(self._mask(view))

        return self.env.process(run(self.env))

    def _strip_prefix(self, view):
        out = dict(view)
        key = out.get("key", "")
        if key.startswith(self.hosted.key_prefix):
            out["key"] = key[len(self.hosted.key_prefix) :]
        return out


class Transaction:
    """An atomic batch of checked operations across one DE's stores."""

    def __init__(self, de, principal, client, mode=None, idempotence_key=None):
        self.de = de
        self.principal = principal
        self.client = client
        self.mode = mode
        self.idempotence_key = idempotence_key
        self._ops = []
        self.committed = False

    def __len__(self):
        return len(self._ops)

    def _admit(self, verb, store_name, payload_fields):
        hosted = self.de.store(store_name)
        self.de.acl.check(
            self.principal, store_name, verb,
            now=self.de.env.now, fields=payload_fields,
        )
        return hosted

    @staticmethod
    def _paths(payload):
        return [".".join(str(p) for p in path) for path, _ in walk_leaves(payload)]

    def create(self, store_name, key, data):
        hosted = self._admit("create", store_name, self._paths(data))
        validate_state(data, hosted.schema).raise_if_invalid()
        self._ops.append(
            {"action": "create", "key": f"{hosted.key_prefix}{key}", "data": data}
        )
        return self

    def update(self, store_name, key, data, resource_version=None):
        hosted = self._admit("update", store_name, self._paths(data))
        validate_state(data, hosted.schema).raise_if_invalid()
        self._ops.append(
            {"action": "update", "key": f"{hosted.key_prefix}{key}",
             "data": data, "resource_version": resource_version}
        )
        return self

    def patch(self, store_name, key, patch, resource_version=None):
        hosted = self._admit("patch", store_name, self._paths(patch))
        validate_state(patch, hosted.schema, partial=True).raise_if_invalid()
        self._ops.append(
            {"action": "patch", "key": f"{hosted.key_prefix}{key}",
             "patch": patch, "resource_version": resource_version}
        )
        return self

    def delete(self, store_name, key):
        hosted = self._admit("delete", store_name, ())
        self._ops.append(
            {"action": "delete", "key": f"{hosted.key_prefix}{key}"}
        )
        return self

    def commit(self):
        """Apply atomically; returns a process event with the views."""
        if self.committed:
            raise ConfigurationError("transaction already committed")
        if not self._ops:
            raise ConfigurationError("empty transaction")
        self.committed = True
        if self.mode is not None:
            # Cross-shard plane: only the sharded client understands
            # modes; surface a clear error on single-server backends
            # (where every batch is already atomic and mode is noise).
            try:
                return self.client.txn(
                    self._ops, mode=self.mode,
                    idempotence_key=self.idempotence_key,
                )
            except TypeError:
                raise ConfigurationError(
                    f"backend {self.client.server.location!r} does not "
                    "support cross-shard txn modes; drop mode="
                    f"{self.mode!r} (single-server txns are atomic "
                    "already)"
                ) from None
        return self.client.txn(self._ops)
