"""The Data Exchange (DE) layer.

A Data Exchange hosts knactors' data stores on a backend and provides
"state access and management capabilities such as data storage, caching,
scaling, analytics, and access control" (paper §3.2).  Two DE types are
provided, matching the paper:

- :class:`ObjectDE` -- attribute-value states with CRUD + watch, hosted on
  either the apiserver-like or the Redis-like backend,
- :class:`LogDE` -- append-only structured records with ingest + analytics,
  hosted on the Zed-lake-like backend.

Every access goes through role-based access control with optional
field-level scoping, and is recorded in the audit log -- the visibility
that API-centric composition hides (paper Problem 3).
"""

from repro.exchange.access import (
    ALL_VERBS,
    AccessController,
    Permission,
    Role,
)
from repro.exchange.audit import AuditLog, AuditRecord
from repro.exchange.base import DataExchange, HostedStore, StoreHandle
from repro.exchange.log_de import LogDE, LogStoreHandle
from repro.exchange.object_de import ObjectDE, ObjectStoreHandle, Transaction

__all__ = [
    "ALL_VERBS",
    "AccessController",
    "AuditLog",
    "AuditRecord",
    "DataExchange",
    "HostedStore",
    "LogDE",
    "LogStoreHandle",
    "ObjectDE",
    "ObjectStoreHandle",
    "Permission",
    "Role",
    "StoreHandle",
    "Transaction",
]
