"""DataExchange base: hosting, schemas, grants, and handles.

A :class:`DataExchange` owns a backend store, a schema registry, an access
controller, and an audit log.  Knactors *host* their data stores on it
(the development workflow's "Externalize" step), and reconcilers /
integrators obtain :class:`~repro.exchange.object_de.ObjectStoreHandle` /
:class:`~repro.exchange.log_de.LogStoreHandle` objects bound to a principal
and network location ("Exchange" step).

Grants follow the paper's rule set: a store's owner (its reconciler) gets
full access; an integrator granted access to a store may read it and may
write only the fields annotated ``+kr: external`` (Object) or
``+kr: ingest`` (Log), unless the grant says otherwise.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, NotFoundError
from repro.exchange.access import (
    ALL_VERBS,
    AccessController,
    Grant,
    Permission,
    Role,
)
from repro.exchange.audit import AuditLog
from repro.schema import Schema, SchemaRegistry


@dataclass
class HostedStore:
    """One knactor data store hosted on a DE."""

    name: str
    schema: Schema
    owner: str

    @property
    def key_prefix(self):
        return f"{self.name}/"


class DataExchange:
    """Base class for Object and Log data exchanges."""

    #: Verbs handed to a store owner.
    OWNER_VERBS = ALL_VERBS

    def __init__(self, env, backend, name="de", retry_policy=None,
                 watch_credits=None, watch_overflow=None):
        self.env = env
        self.backend = backend
        self.name = name
        #: Optional :class:`repro.faults.RetryPolicy` shared by every
        #: client this DE mints -- one knob makes the whole exchange
        #: ride through transient backend faults.
        self.retry_policy = retry_policy
        #: DE-wide flow-control defaults: every handle this DE mints
        #: inherits them unless ``handle(..., credits=, overflow=)``
        #: overrides (see :mod:`repro.flow`).  None disables credit flow.
        self.watch_credits = watch_credits
        self.watch_overflow = watch_overflow
        self.schemas = SchemaRegistry()
        self.audit = AuditLog()
        self.acl = AccessController(audit=self.audit)
        self.grants = []
        self._stores = {}

    # -- hosting ---------------------------------------------------------------

    def host_store(self, store_name, schema, owner):
        """Host a data store: register its schema and grant the owner.

        ``schema`` may be a :class:`Schema` or its Fig. 5 text form.
        """
        if store_name in self._stores:
            raise ConfigurationError(f"store {store_name!r} is already hosted")
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        self.schemas.register(schema)
        hosted = HostedStore(store_name, schema, owner)
        self._stores[store_name] = hosted
        role = Role(
            f"owner:{store_name}",
            [
                Permission(
                    store=store_name,
                    verbs=self.OWNER_VERBS,
                    write_fields=None,
                    read_fields=("*",),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(owner, role.name)
        self._on_hosted(hosted)
        return hosted

    def _on_hosted(self, hosted):
        """Subclass hook (e.g. the Log DE creates the backing pool)."""

    def store(self, store_name):
        try:
            return self._stores[store_name]
        except KeyError:
            raise NotFoundError(f"store {store_name!r} is not hosted here") from None

    def stores(self):
        return sorted(self._stores)

    def schema_for(self, store_name):
        """The only thing non-owners may inspect: the schema, not states."""
        return self.store(store_name).schema

    def update_schema(self, store_name, schema, allow_breaking=False):
        """Re-register a store's schema (schema evolution, task T3)."""
        hosted = self.store(store_name)
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        delta = self.schemas.register(schema, allow_breaking=allow_breaking)
        hosted.schema = schema
        return delta

    # -- grants ------------------------------------------------------------------

    def grant(
        self,
        principal,
        store_name,
        *_removed,
        role="integrator",
        verbs=None,
        write_fields=None,
        read_fields=(),
        note="",
    ):
        """Grant ``principal`` access to a hosted store -- the one entry point.

        Two modes:

        - **role-based** (the common case): ``role="integrator"`` (the
          DE-specific standard integrator grant: reads plus writes scoped
          to the schema's externalized fields) or ``role="reader"``
          (read-only).
        - **custom**: pass ``verbs`` explicitly (optionally with
          ``write_fields`` / ``read_fields``) for a hand-tuned permission
          set; ``role`` is ignored.

        The pre-unification positional form ``grant(principal, store,
        verbs, ...)`` was removed after its deprecation window; it now
        raises :class:`TypeError` (as do the old ``grant_integrator`` /
        ``grant_reader`` aliases).
        """
        if _removed:
            raise TypeError(
                "positional verbs/write_fields were removed from "
                "DataExchange.grant(); migrate to grant(principal, "
                "store_name, role=...) or grant(principal, store_name, "
                "verbs=..., write_fields=...)"
            )
        if verbs is None:
            verbs, write_fields, default_note = self._role_policy(role, store_name)
            note = note or default_note
        return self._grant(
            principal, store_name, verbs,
            write_fields=write_fields, read_fields=read_fields, note=note,
        )

    def _role_policy(self, role, store_name):
        """Subclass hook: ``(verbs, write_fields, default_note)`` for a role."""
        raise ConfigurationError(
            f"{type(self).__name__} has no grant role {role!r}"
        )

    def _grant(self, principal, store_name, verbs, write_fields=None,
               read_fields=(), note=""):
        self.store(store_name)  # must exist
        verbs = frozenset(verbs)
        role = Role(
            f"grant:{principal}:{store_name}:{len(self.grants)}",
            [
                Permission(
                    store=store_name,
                    verbs=verbs,
                    write_fields=tuple(write_fields) if write_fields is not None else None,
                    read_fields=tuple(read_fields),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(principal, role.name)
        grant = Grant(
            principal=principal,
            store=store_name,
            verbs=verbs,
            write_fields=tuple(write_fields) if write_fields is not None else None,
            note=note,
        )
        self.grants.append(grant)
        return grant

    def grant_integrator(self, *args, **kwargs):
        """Removed alias; raises with the migration."""
        raise TypeError(
            "DataExchange.grant_integrator() was removed; use "
            'grant(principal, store_name, role="integrator")'
        )

    def grant_reader(self, *args, **kwargs):
        """Removed alias; raises with the migration."""
        raise TypeError(
            "DataExchange.grant_reader() was removed; use "
            'grant(principal, store_name, role="reader")'
        )

    # -- handles -----------------------------------------------------------------

    def handle(self, store_name, *_removed, principal=None, location=None,
               retry_policy=None, credits=None, overflow=None):
        """A :class:`StoreHandle` bound to ``principal`` at ``location``.

        The unified signature across Object and Log exchanges:

        - ``principal`` (required, keyword-only): who the handle acts as
          (RBAC subject, audit identity, admission-control identity);
        - ``location`` defaults to the principal's name (the common
          "client runs where the knactor runs" case);
        - ``retry_policy`` overrides the DE-wide policy for this handle
          only;
        - ``credits`` / ``overflow`` set the flow-control defaults for
          every watch opened through this handle (falling back to the
          DE-wide ``watch_credits`` / ``watch_overflow``; see
          :mod:`repro.flow`).

        The pre-unification positional form ``handle(store, principal,
        location)`` was removed after its deprecation window; it now
        raises :class:`TypeError`.
        """
        if _removed:
            raise TypeError(
                "positional principal/location were removed from "
                "DataExchange.handle(); migrate to handle(store_name, "
                "principal=..., location=...)"
            )
        if principal is None:
            raise TypeError("handle() missing required argument: 'principal'")
        hosted = self.store(store_name)
        handle = self._make_handle(
            hosted, principal,
            location if location is not None else principal,
            retry_policy,
        )
        client = handle.client
        client.principal = principal
        client.default_watch_credits = (
            credits if credits is not None else self.watch_credits
        )
        client.default_watch_overflow = (
            overflow if overflow is not None else self.watch_overflow
        )
        return handle

    def _make_handle(self, hosted, principal, location, retry_policy):
        """Subclass hook: build the DE-specific :class:`StoreHandle`."""
        raise NotImplementedError

    def describe(self):
        """Human-oriented summary (used by the CLI)."""
        lines = [f"DataExchange {self.name!r} ({type(self).__name__})"]
        for name in self.stores():
            hosted = self._stores[name]
            lines.append(
                f"  store {name}  schema={hosted.schema.name}  owner={hosted.owner}"
            )
        for grant in self.grants:
            scope = (
                "all fields"
                if grant.write_fields is None
                else ", ".join(grant.write_fields) or "(read-only)"
            )
            lines.append(
                f"  grant {grant.principal} -> {grant.store}: "
                f"{'/'.join(sorted(grant.verbs))} [{scope}]"
            )
        return "\n".join(lines)


class StoreHandle:
    """The common handle protocol returned by :meth:`DataExchange.handle`.

    Every handle, regardless of exchange type, carries the same four
    bindings (``de`` / ``hosted`` / ``principal`` / ``client``), exposes
    ``env`` / ``schema`` / ``store_name``, and admits every operation
    through RBAC via :meth:`_check`.  Subclasses add the substrate
    surface -- CRUD + ``watch`` for the Object DE, ``load`` / ``query``
    + ``watch`` for the Log DE -- with every operation returning a
    simnet process event.  ``watch`` is part of the shared protocol:
    both exchanges accept ``handler``, ``on_close`` (stream broke:
    re-watch + resync), ``batch_handler`` (consume a coalesced delivery
    in one call), and ``credits`` (override the handle's credit window
    for this stream; see :mod:`repro.flow`).
    """

    def __init__(self, de, hosted, principal, client):
        self.de = de
        self.hosted = hosted
        self.principal = principal
        self.client = client

    @property
    def env(self):
        return self.de.env

    @property
    def schema(self):
        return self.hosted.schema

    @property
    def store_name(self):
        return self.hosted.name

    def _check(self, verb, fields=None):
        self.de.acl.check(
            self.principal,
            self.hosted.name,
            verb,
            now=self.env.now,
            fields=fields,
        )

    def watch(self, handler, *, batch_handler=None, on_close=None,
              credits=None, overflow=None):
        raise NotImplementedError
