"""DataExchange base: hosting, schemas, grants, and handles.

A :class:`DataExchange` owns a backend store, a schema registry, an access
controller, and an audit log.  Knactors *host* their data stores on it
(the development workflow's "Externalize" step), and reconcilers /
integrators obtain :class:`~repro.exchange.object_de.ObjectStoreHandle` /
:class:`~repro.exchange.log_de.LogStoreHandle` objects bound to a principal
and network location ("Exchange" step).

Grants follow the paper's rule set: a store's owner (its reconciler) gets
full access; an integrator granted access to a store may read it and may
write only the fields annotated ``+kr: external`` (Object) or
``+kr: ingest`` (Log), unless the grant says otherwise.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, NotFoundError
from repro.exchange.access import (
    ALL_VERBS,
    AccessController,
    Grant,
    Permission,
    Role,
)
from repro.exchange.audit import AuditLog
from repro.schema import Schema, SchemaRegistry


@dataclass
class HostedStore:
    """One knactor data store hosted on a DE."""

    name: str
    schema: Schema
    owner: str

    @property
    def key_prefix(self):
        return f"{self.name}/"


class DataExchange:
    """Base class for Object and Log data exchanges."""

    #: Verbs handed to a store owner.
    OWNER_VERBS = ALL_VERBS

    def __init__(self, env, backend, name="de", retry_policy=None):
        self.env = env
        self.backend = backend
        self.name = name
        #: Optional :class:`repro.faults.RetryPolicy` shared by every
        #: client this DE mints -- one knob makes the whole exchange
        #: ride through transient backend faults.
        self.retry_policy = retry_policy
        self.schemas = SchemaRegistry()
        self.audit = AuditLog()
        self.acl = AccessController(audit=self.audit)
        self.grants = []
        self._stores = {}

    # -- hosting ---------------------------------------------------------------

    def host_store(self, store_name, schema, owner):
        """Host a data store: register its schema and grant the owner.

        ``schema`` may be a :class:`Schema` or its Fig. 5 text form.
        """
        if store_name in self._stores:
            raise ConfigurationError(f"store {store_name!r} is already hosted")
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        self.schemas.register(schema)
        hosted = HostedStore(store_name, schema, owner)
        self._stores[store_name] = hosted
        role = Role(
            f"owner:{store_name}",
            [
                Permission(
                    store=store_name,
                    verbs=self.OWNER_VERBS,
                    write_fields=None,
                    read_fields=("*",),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(owner, role.name)
        self._on_hosted(hosted)
        return hosted

    def _on_hosted(self, hosted):
        """Subclass hook (e.g. the Log DE creates the backing pool)."""

    def store(self, store_name):
        try:
            return self._stores[store_name]
        except KeyError:
            raise NotFoundError(f"store {store_name!r} is not hosted here") from None

    def stores(self):
        return sorted(self._stores)

    def schema_for(self, store_name):
        """The only thing non-owners may inspect: the schema, not states."""
        return self.store(store_name).schema

    def update_schema(self, store_name, schema, allow_breaking=False):
        """Re-register a store's schema (schema evolution, task T3)."""
        hosted = self.store(store_name)
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        delta = self.schemas.register(schema, allow_breaking=allow_breaking)
        hosted.schema = schema
        return delta

    # -- grants ------------------------------------------------------------------

    def grant(
        self,
        principal,
        store_name,
        verbs,
        write_fields=None,
        read_fields=(),
        note="",
    ):
        """Grant ``principal`` the given verbs on a hosted store."""
        self.store(store_name)  # must exist
        verbs = frozenset(verbs)
        role = Role(
            f"grant:{principal}:{store_name}:{len(self.grants)}",
            [
                Permission(
                    store=store_name,
                    verbs=verbs,
                    write_fields=tuple(write_fields) if write_fields is not None else None,
                    read_fields=tuple(read_fields),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(principal, role.name)
        grant = Grant(
            principal=principal,
            store=store_name,
            verbs=verbs,
            write_fields=tuple(write_fields) if write_fields is not None else None,
            note=note,
        )
        self.grants.append(grant)
        return grant

    def grant_integrator(self, principal, store_name, note=""):
        """The standard integrator grant for this DE type (subclasses)."""
        raise NotImplementedError

    # -- handles -----------------------------------------------------------------

    def handle(self, store_name, principal, location=None):
        """A store handle bound to ``principal`` at ``location``."""
        raise NotImplementedError

    def describe(self):
        """Human-oriented summary (used by the CLI)."""
        lines = [f"DataExchange {self.name!r} ({type(self).__name__})"]
        for name in self.stores():
            hosted = self._stores[name]
            lines.append(
                f"  store {name}  schema={hosted.schema.name}  owner={hosted.owner}"
            )
        for grant in self.grants:
            scope = (
                "all fields"
                if grant.write_fields is None
                else ", ".join(grant.write_fields) or "(read-only)"
            )
            lines.append(
                f"  grant {grant.principal} -> {grant.store}: "
                f"{'/'.join(sorted(grant.verbs))} [{scope}]"
            )
        return "\n".join(lines)
