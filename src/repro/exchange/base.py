"""DataExchange base: hosting, schemas, grants, and handles.

A :class:`DataExchange` owns a backend store, a schema registry, an access
controller, and an audit log.  Knactors *host* their data stores on it
(the development workflow's "Externalize" step), and reconcilers /
integrators obtain :class:`~repro.exchange.object_de.ObjectStoreHandle` /
:class:`~repro.exchange.log_de.LogStoreHandle` objects bound to a principal
and network location ("Exchange" step).

Grants follow the paper's rule set: a store's owner (its reconciler) gets
full access; an integrator granted access to a store may read it and may
write only the fields annotated ``+kr: external`` (Object) or
``+kr: ingest`` (Log), unless the grant says otherwise.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, NotFoundError, QueryError
from repro.exchange.access import (
    ALL_VERBS,
    AccessController,
    Grant,
    Permission,
    Role,
)
from repro.exchange.audit import AuditLog
from repro.federation import MaterializedView, RegisteredView, ViewHandle
from repro.flow.admission import VIEW
from repro.query import Query, QueryResult
from repro.schema import Schema, SchemaRegistry


@dataclass
class HostedStore:
    """One knactor data store hosted on a DE."""

    name: str
    schema: Schema
    owner: str

    @property
    def key_prefix(self):
        return f"{self.name}/"


class DataExchange:
    """Base class for Object and Log data exchanges."""

    #: Verbs handed to a store owner.
    OWNER_VERBS = ALL_VERBS

    def __init__(self, env, backend, name="de", retry_policy=None,
                 watch_credits=None, watch_overflow=None):
        self.env = env
        self.backend = backend
        self.name = name
        #: Optional :class:`repro.faults.RetryPolicy` shared by every
        #: client this DE mints -- one knob makes the whole exchange
        #: ride through transient backend faults.
        self.retry_policy = retry_policy
        #: DE-wide flow-control defaults: every handle this DE mints
        #: inherits them unless ``handle(..., credits=, overflow=)``
        #: overrides (see :mod:`repro.flow`).  None disables credit flow.
        self.watch_credits = watch_credits
        self.watch_overflow = watch_overflow
        self.schemas = SchemaRegistry()
        self.audit = AuditLog()
        self.acl = AccessController(audit=self.audit)
        self.grants = []
        self._stores = {}
        self._views = {}  # composed-view name -> RegisteredView

    # -- hosting ---------------------------------------------------------------

    def host_store(self, store_name, schema, owner):
        """Host a data store: register its schema and grant the owner.

        ``schema`` may be a :class:`Schema` or its Fig. 5 text form.
        """
        if store_name in self._stores:
            raise ConfigurationError(f"store {store_name!r} is already hosted")
        if store_name in self._views:
            raise ConfigurationError(
                f"{store_name!r} already names a composed view here"
            )
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        self.schemas.register(schema)
        hosted = HostedStore(store_name, schema, owner)
        self._stores[store_name] = hosted
        role = Role(
            f"owner:{store_name}",
            [
                Permission(
                    store=store_name,
                    verbs=self.OWNER_VERBS,
                    write_fields=None,
                    read_fields=("*",),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(owner, role.name)
        self._on_hosted(hosted)
        return hosted

    def _on_hosted(self, hosted):
        """Subclass hook (e.g. the Log DE creates the backing pool)."""

    def store(self, store_name):
        try:
            return self._stores[store_name]
        except KeyError:
            raise NotFoundError(f"store {store_name!r} is not hosted here") from None

    def stores(self):
        return sorted(self._stores)

    def schema_for(self, store_name):
        """The only thing non-owners may inspect: the schema, not states."""
        return self.store(store_name).schema

    def update_schema(self, store_name, schema, allow_breaking=False):
        """Re-register a store's schema (schema evolution, task T3)."""
        hosted = self.store(store_name)
        if isinstance(schema, str):
            schema = Schema.from_text(schema)
        delta = self.schemas.register(schema, allow_breaking=allow_breaking)
        hosted.schema = schema
        return delta

    # -- grants ------------------------------------------------------------------

    def grant(
        self,
        principal,
        store_name,
        *_removed,
        role="integrator",
        verbs=None,
        write_fields=None,
        read_fields=(),
        note="",
    ):
        """Grant ``principal`` access to a hosted store -- the one entry point.

        Two modes:

        - **role-based** (the common case): ``role="integrator"`` (the
          DE-specific standard integrator grant: reads plus writes scoped
          to the schema's externalized fields), ``role="reader"``
          (read-only), or -- when ``store_name`` is a registered composed
          view -- ``role="viewer"`` (the ``query`` verb on the view; the
          per-source secret masks compose at the view boundary, see
          :meth:`register_view`).
        - **custom**: pass ``verbs`` explicitly (optionally with
          ``write_fields`` / ``read_fields``) for a hand-tuned permission
          set; ``role`` is ignored.

        The pre-unification positional form ``grant(principal, store,
        verbs, ...)`` was removed after its deprecation window; it now
        raises :class:`TypeError` (as do the old ``grant_integrator`` /
        ``grant_reader`` aliases).
        """
        if _removed:
            raise TypeError(
                "positional verbs/write_fields were removed from "
                "DataExchange.grant(); migrate to grant(principal, "
                "store_name, role=...) or grant(principal, store_name, "
                "verbs=..., write_fields=...)"
            )
        if verbs is None:
            if store_name in self._views:
                if role != "viewer":
                    raise ConfigurationError(
                        f"{store_name!r} is a composed view; grant it with "
                        f'role="viewer" (got role={role!r})'
                    )
                verbs, write_fields = {"query"}, None
                note = note or f"viewer grant on composed view {store_name!r}"
            else:
                verbs, write_fields, default_note = self._role_policy(
                    role, store_name
                )
                note = note or default_note
        return self._grant(
            principal, store_name, verbs,
            write_fields=write_fields, read_fields=read_fields, note=note,
        )

    def _role_policy(self, role, store_name):
        """Subclass hook: ``(verbs, write_fields, default_note)`` for a role."""
        if role == "viewer":
            raise ConfigurationError(
                f'role="viewer" is scoped to registered composed views; '
                f"{store_name!r} is a hosted store (use role=\"reader\")"
            )
        raise ConfigurationError(
            f"{type(self).__name__} has no grant role {role!r}"
        )

    def _grant(self, principal, store_name, verbs, write_fields=None,
               read_fields=(), note=""):
        if store_name not in self._views:
            self.store(store_name)  # must exist
        verbs = frozenset(verbs)
        role = Role(
            f"grant:{principal}:{store_name}:{len(self.grants)}",
            [
                Permission(
                    store=store_name,
                    verbs=verbs,
                    write_fields=tuple(write_fields) if write_fields is not None else None,
                    read_fields=tuple(read_fields),
                )
            ],
        )
        self.acl.add_role(role)
        self.acl.bind(principal, role.name)
        grant = Grant(
            principal=principal,
            store=store_name,
            verbs=verbs,
            write_fields=tuple(write_fields) if write_fields is not None else None,
            note=note,
        )
        self.grants.append(grant)
        return grant

    def grant_integrator(self, *args, **kwargs):
        """Removed alias; raises with the migration."""
        raise TypeError(
            "DataExchange.grant_integrator() was removed; use "
            'grant(principal, store_name, role="integrator")'
        )

    def grant_reader(self, *args, **kwargs):
        """Removed alias; raises with the migration."""
        raise TypeError(
            "DataExchange.grant_reader() was removed; use "
            'grant(principal, store_name, role="reader")'
        )

    # -- composed views ----------------------------------------------------------

    def register_view(self, view, *, exchanges=None, materialize=True,
                      registry=None, tracer=None, lag_window=1.0,
                      floor=0.002):
        """Register a :class:`~repro.federation.views.ComposedView` here.

        This exchange becomes the view's *home*: the view name joins the
        ACL namespace (grant read access with ``grant(principal,
        view_name, role="viewer")``), and ``view()`` / ``query()``
        answer against it.

        Sources may live on other exchanges: ``exchanges`` maps the
        names used in :attr:`ViewSource.exchange` to live
        :class:`DataExchange` instances (``None``/unset sources resolve
        to this exchange).  For every source the view's service
        principal (``view:<name>``) is granted ``role="reader"`` on its
        home exchange and bound to the :data:`~repro.flow.VIEW`
        admission class on its backend -- so each source's secret-field
        masks apply at the edge, exactly as they would for any other
        reader, and the composed record can never leak a field the view
        itself could not read.

        ``materialize=True`` additionally starts incremental
        maintenance (a :class:`~repro.federation.MaterializedView` fed
        from the sources' watch streams); ``lag_window`` / ``floor``
        tune its staleness estimator.  ``registry`` / ``tracer`` wire
        the per-view metrics and ``view_*`` trace spans.
        """
        name = view.name
        if name in self._views:
            raise ConfigurationError(f"view {name!r} is already registered")
        if name in self._stores:
            raise ConfigurationError(
                f"view {name!r} collides with a hosted store name"
            )
        resolve = dict(exchanges or {})
        principal = f"view:{name}"
        handles, kinds = {}, {}
        for src in view.sources:
            if src.exchange is None:
                de = self
            else:
                de = resolve.get(src.exchange)
                if de is None:
                    raise ConfigurationError(
                        f"view {name!r} source {src.alias!r} names unknown "
                        f"exchange {src.exchange!r}; pass it via "
                        f"register_view(..., exchanges={{...}})"
                    )
            de.grant(principal, src.store, role="reader",
                     note=f"composed view {name!r} source {src.alias!r}")
            handles[src.alias] = de.handle(
                src.store, principal=principal, location=principal,
            )
            kinds[src.alias] = (
                "log" if hasattr(handles[src.alias], "load") else "object"
            )
            for server in getattr(de.backend, "shards", None) or [de.backend]:
                admission = getattr(server, "admission", None)
                if admission is not None:
                    admission.assign(principal, VIEW)
        materialized = None
        if materialize:
            materialized = MaterializedView(
                self.env, view, handles, kinds, registry=registry,
                lag_window=lag_window, floor=floor,
            )
        registered = RegisteredView(
            self.env, view, self, handles, kinds, registry=registry,
            tracer=tracer, materialized=materialized,
        )
        self._views[name] = registered
        if materialized is not None:
            materialized.start()
        return registered

    def views(self):
        return sorted(self._views)

    def view(self, view_name, *, principal=None):
        """A :class:`~repro.federation.ViewHandle` bound to ``principal``.

        The view-side analogue of :meth:`handle`; every ``query`` it
        answers passes RBAC (the ``query`` verb on the view name).
        """
        if principal is None:
            raise TypeError("view() missing required argument: 'principal'")
        registered = self._views.get(view_name)
        if registered is None:
            raise NotFoundError(
                f"view {view_name!r} is not registered here"
            )
        return ViewHandle(registered, principal)

    # -- the unified declarative read ---------------------------------------------

    def query(self, target, *, ops=(), freshness=None, consistency=None,
              principal=None, keys=None, strategy=None):
        """One declarative read API over stores *and* composed views.

        ``target`` is a hosted store name, a registered view name, or a
        pre-built :class:`repro.query.Query` (whose fields then provide
        the defaults).  Keyword-only:

        - ``ops``: shared-core pipeline over the result records;
        - ``freshness`` / ``consistency``: staleness tolerance -- drives
          the federation planner for views; direct store reads are
          strong by construction and simply record it;
        - ``principal``: required; RBAC / admission / audit identity;
        - ``keys``: root-key restriction (Object stores and views);
        - ``strategy``: force a view strategy past the planner
          (views only).

        Returns a process event yielding a
        :class:`repro.query.QueryResult`.  This subsumes the historical
        read spellings -- ``handle.list()`` plus a hand-compiled
        ``zql.compile_query`` pipeline, or per-DE query verbs -- behind
        one shape (``compile_query`` itself survives only as a warn-once
        shim in :mod:`repro.store.zql`).
        """
        if isinstance(target, Query):
            spec, target = target, target.target
            ops = ops or spec.ops
            freshness = freshness if freshness is not None else spec.freshness
            consistency = consistency or spec.consistency
            principal = principal or spec.principal
            keys = keys if keys is not None else spec.keys
        if principal is None:
            raise TypeError("query() missing required argument: 'principal'")
        if target in self._views:
            return self.view(target, principal=principal).query(
                ops=ops, freshness=freshness, consistency=consistency,
                keys=keys, strategy=strategy,
            )
        if strategy is not None:
            raise QueryError(
                f"strategy= applies to composed views; {target!r} is a "
                f"hosted store"
            )
        spec = Query(
            target=target, ops=ops, freshness=freshness,
            consistency=consistency, principal=principal, keys=keys,
        )
        handle = self.handle(target, principal=principal)
        if hasattr(handle, "load"):
            if spec.keys is not None:
                raise QueryError(
                    f"keys= applies to Object stores and views; "
                    f"{spec.target!r} is a Log store"
                )
            return self.env.process(self._query_log(handle, spec))
        return self.env.process(self._query_object(handle, spec))

    def _query_log(self, handle, spec):
        # Analytics push-down: the pipeline executes in the Log store.
        records = yield handle.query(ops=list(spec.ops))
        return QueryResult(list(records), strategy="direct")

    def _query_object(self, handle, spec):
        if spec.keys is not None:
            rows = []
            for key in dict.fromkeys(spec.keys):
                try:
                    view = yield handle.get(key)
                except NotFoundError:
                    continue
                rows.append({**view["data"], "_key": view["key"]})
        else:
            views = yield handle.list()
            rows = [{**v["data"], "_key": v["key"]} for v in views]
        return QueryResult(spec.pipeline()(rows), strategy="direct")

    # -- handles -----------------------------------------------------------------

    def handle(self, store_name, *_removed, principal=None, location=None,
               retry_policy=None, credits=None, overflow=None):
        """A :class:`StoreHandle` bound to ``principal`` at ``location``.

        The unified signature across Object and Log exchanges:

        - ``principal`` (required, keyword-only): who the handle acts as
          (RBAC subject, audit identity, admission-control identity);
        - ``location`` defaults to the principal's name (the common
          "client runs where the knactor runs" case);
        - ``retry_policy`` overrides the DE-wide policy for this handle
          only;
        - ``credits`` / ``overflow`` set the flow-control defaults for
          every watch opened through this handle (falling back to the
          DE-wide ``watch_credits`` / ``watch_overflow``; see
          :mod:`repro.flow`).

        The pre-unification positional form ``handle(store, principal,
        location)`` was removed after its deprecation window; it now
        raises :class:`TypeError`.
        """
        if _removed:
            raise TypeError(
                "positional principal/location were removed from "
                "DataExchange.handle(); migrate to handle(store_name, "
                "principal=..., location=...)"
            )
        if principal is None:
            raise TypeError("handle() missing required argument: 'principal'")
        if store_name in self._views:
            raise ConfigurationError(
                f"{store_name!r} is a composed view; read it via "
                f"view({store_name!r}, principal=...) or query(...)"
            )
        hosted = self.store(store_name)
        handle = self._make_handle(
            hosted, principal,
            location if location is not None else principal,
            retry_policy,
        )
        client = handle.client
        client.principal = principal
        client.default_watch_credits = (
            credits if credits is not None else self.watch_credits
        )
        client.default_watch_overflow = (
            overflow if overflow is not None else self.watch_overflow
        )
        return handle

    def _make_handle(self, hosted, principal, location, retry_policy):
        """Subclass hook: build the DE-specific :class:`StoreHandle`."""
        raise NotImplementedError

    def describe(self):
        """Human-oriented summary (used by the CLI)."""
        lines = [f"DataExchange {self.name!r} ({type(self).__name__})"]
        for name in self.stores():
            hosted = self._stores[name]
            lines.append(
                f"  store {name}  schema={hosted.schema.name}  owner={hosted.owner}"
            )
        for name in self.views():
            registered = self._views[name]
            sources = ", ".join(
                f"{alias}:{kind}" for alias, kind in registered.kinds.items()
            )
            lines.append(
                f"  view {name}  sources=[{sources}]  "
                f"freshness={registered.view.freshness}s  "
                f"materialized={registered.materialized is not None}"
            )
        for grant in self.grants:
            scope = (
                "all fields"
                if grant.write_fields is None
                else ", ".join(grant.write_fields) or "(read-only)"
            )
            lines.append(
                f"  grant {grant.principal} -> {grant.store}: "
                f"{'/'.join(sorted(grant.verbs))} [{scope}]"
            )
        return "\n".join(lines)


class StoreHandle:
    """The common handle protocol returned by :meth:`DataExchange.handle`.

    Every handle, regardless of exchange type, carries the same four
    bindings (``de`` / ``hosted`` / ``principal`` / ``client``), exposes
    ``env`` / ``schema`` / ``store_name``, and admits every operation
    through RBAC via :meth:`_check`.  Subclasses add the substrate
    surface -- CRUD + ``watch`` for the Object DE, ``load`` / ``query``
    + ``watch`` for the Log DE -- with every operation returning a
    simnet process event.  ``watch`` is part of the shared protocol:
    both exchanges accept ``handler``, ``on_close`` (stream broke:
    re-watch + resync), ``batch_handler`` (consume a coalesced delivery
    in one call), and ``credits`` (override the handle's credit window
    for this stream; see :mod:`repro.flow`).
    """

    def __init__(self, de, hosted, principal, client):
        self.de = de
        self.hosted = hosted
        self.principal = principal
        self.client = client

    @property
    def env(self):
        return self.de.env

    @property
    def schema(self):
        return self.hosted.schema

    @property
    def store_name(self):
        return self.hosted.name

    def _check(self, verb, fields=None):
        self.de.acl.check(
            self.principal,
            self.hosted.name,
            verb,
            now=self.env.now,
            fields=fields,
        )

    def watch(self, handler, *, batch_handler=None, on_close=None,
              credits=None, overflow=None):
        raise NotImplementedError
