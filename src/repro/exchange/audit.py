"""Audit log of state accesses.

One of the paper's core claims (Problem 3) is that API-centric composition
*hides* data exchanges inside pair-wise calls.  The DE's audit log is the
inverse: every access -- allowed or denied -- is recorded with principal,
store, verb, and touched fields, making cross-service data exchanges
observable at the application level.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditRecord:
    """One recorded access attempt."""

    time: float
    principal: str
    store: str
    verb: str
    fields: tuple = ()
    allowed: bool = True
    reason: str = ""
    key: str = ""


class AuditLog:
    """Append-only in-memory audit trail with simple queries."""

    def __init__(self, capacity=100_000):
        self.capacity = capacity
        self._records = []
        self.dropped = 0

    def record(self, **kwargs):
        if len(self._records) >= self.capacity:
            # Keep the most recent window; count what we dropped.
            del self._records[: self.capacity // 10]
            self.dropped += self.capacity // 10
        self._records.append(AuditRecord(**kwargs))

    def records(self, principal=None, store=None, verb=None, allowed=None):
        """Filtered view of the trail."""
        out = self._records
        if principal is not None:
            out = [r for r in out if r.principal == principal]
        if store is not None:
            out = [r for r in out if r.store == store]
        if verb is not None:
            out = [r for r in out if r.verb == verb]
        if allowed is not None:
            out = [r for r in out if r.allowed == allowed]
        return list(out)

    def denials(self):
        return self.records(allowed=False)

    def exchange_matrix(self):
        """``{(principal, store): count}`` of allowed accesses.

        This is the app-level data-exchange visibility the paper argues
        for: who touches whose state, measurable at run time.
        """
        matrix = {}
        for r in self._records:
            if r.allowed:
                key = (r.principal, r.store)
                matrix[key] = matrix.get(key, 0) + 1
        return matrix

    def __len__(self):
        return len(self._records)
