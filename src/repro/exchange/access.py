"""Role-based access control with field-level scoping (paper §3.3).

"Knactor ensures only authorized entities can access the states in the
data stores. [...] This can be done via the standard Role-based Access
Control (RBAC) [...] the data-centric approach allows finer-grained
access control over states, e.g., granting access to certain state
objects/fields but not others to specific roles."

Model:

- a :class:`Permission` allows a set of verbs on one store, optionally
  scoped to specific *writable* field paths and specific *readable*
  (unmask-able) secret fields;
- a :class:`Role` is a named bundle of permissions;
- principals (reconcilers, integrators, operators) are bound to roles;
- :class:`AccessController` answers ``check()`` queries and supports
  run-time policy predicates (e.g. the paper's "House should not access
  the Lamp during user-defined sleep hours").
"""

from dataclasses import dataclass, field

from repro.errors import AccessDeniedError, ConfigurationError

#: The full verb set.  ``load``/``query`` are the Log DE's surface.
ALL_VERBS = frozenset(
    {"get", "list", "watch", "create", "update", "patch", "delete", "load", "query"}
)

READ_VERBS = frozenset({"get", "list", "watch", "query"})
WRITE_VERBS = frozenset({"create", "update", "patch", "delete", "load"})


@dataclass(frozen=True)
class Permission:
    """Allows ``verbs`` on ``store``.

    - ``write_fields``: if not None, writes may only touch these dotted
      field paths (a prefix covers its sub-paths).
    - ``read_fields``: secret fields this permission un-masks on read.
    """

    store: str
    verbs: frozenset
    write_fields: tuple = None
    read_fields: tuple = ()

    def __post_init__(self):
        bad = set(self.verbs) - ALL_VERBS
        if bad:
            raise ConfigurationError(f"unknown verb(s) {sorted(bad)}")

    def allows(self, store, verb):
        return store == self.store and verb in self.verbs

    def allows_field_write(self, path):
        if self.write_fields is None:
            return True
        return any(
            path == allowed or path.startswith(allowed + ".")
            for allowed in self.write_fields
        )


class Role:
    """A named bundle of permissions."""

    def __init__(self, name, permissions=()):
        if not name:
            raise ConfigurationError("role name must be non-empty")
        self.name = name
        self.permissions = list(permissions)

    def add(self, permission):
        self.permissions.append(permission)
        return self

    def __repr__(self):
        return f"<Role {self.name} permissions={len(self.permissions)}>"


class AccessController:
    """Binds principals to roles and answers access queries."""

    def __init__(self, audit=None):
        self._roles = {}
        self._bindings = {}  # principal -> set of role names
        self._conditions = []  # callables(principal, store, verb, now) -> bool
        self.audit = audit

    # -- policy management ---------------------------------------------------

    def add_role(self, role):
        self._roles[role.name] = role
        return role

    def bind(self, principal, role_name):
        if role_name not in self._roles:
            raise ConfigurationError(f"unknown role {role_name!r}")
        self._bindings.setdefault(principal, set()).add(role_name)

    def unbind(self, principal, role_name):
        self._bindings.get(principal, set()).discard(role_name)

    def add_condition(self, predicate):
        """Add a run-time condition applied to *every* access.

        ``predicate(principal, store, verb, now) -> bool``; returning
        False denies the access even if a role allows it.  This is the
        mechanism behind data-centric policies like "no Lamp access
        during sleep hours".
        """
        self._conditions.append(predicate)

    # -- queries ---------------------------------------------------------------

    def permissions_for(self, principal):
        perms = []
        for role_name in self._bindings.get(principal, ()):
            perms.extend(self._roles[role_name].permissions)
        return perms

    def check(self, principal, store, verb, now=0.0, fields=None):
        """Raise :class:`AccessDeniedError` unless the access is allowed.

        ``fields`` (for writes) is the list of dotted paths being written;
        every one must be covered by some permission's field scope.
        """
        matching = [
            p for p in self.permissions_for(principal) if p.allows(store, verb)
        ]
        allowed = bool(matching)
        reason = "" if allowed else "no role grants this verb"
        if allowed and fields:
            for path in fields:
                if not any(p.allows_field_write(path) for p in matching):
                    allowed = False
                    reason = f"field {path!r} is outside the granted write scope"
                    break
        if allowed:
            for predicate in self._conditions:
                if not predicate(principal, store, verb, now):
                    allowed = False
                    reason = "denied by run-time policy condition"
                    break
        if self.audit is not None:
            self.audit.record(
                time=now, principal=principal, store=store, verb=verb,
                fields=tuple(fields or ()), allowed=allowed, reason=reason,
            )
        if not allowed:
            raise AccessDeniedError(
                f"{principal!r} may not {verb} on {store!r}: {reason}"
            )

    def readable_secret_fields(self, principal, store):
        """Secret field paths this principal may see unmasked."""
        fields = set()
        for p in self.permissions_for(principal):
            if p.store == store:
                fields.update(p.read_fields)
        return fields

    def can(self, principal, store, verb, now=0.0):
        """Non-raising, non-auditing variant of :meth:`check`."""
        try:
            saved, self.audit = self.audit, None
            try:
                self.check(principal, store, verb, now=now)
            finally:
                self.audit = saved
            return True
        except AccessDeniedError:
            return False


def owner_role(store, owner):
    """The implicit all-verbs role a store's owner receives."""
    return Role(
        f"owner:{store}",
        [
            Permission(
                store=store,
                verbs=ALL_VERBS,
                write_fields=None,
                read_fields=("*",),
            )
        ],
    )


@dataclass
class Grant:
    """Record of one integrator grant (used for introspection/UX)."""

    principal: str
    store: str
    verbs: frozenset
    write_fields: tuple = None
    note: str = ""
    extra: dict = field(default_factory=dict)
