"""The knactor abstraction: a service as reconciler + data stores.

"In Knactor, each microservice is represented as a knactor that contains
a reconciler component and one or multiple data stores." (paper §3.2)

A :class:`Knactor` declares its data stores as :class:`StoreBinding`
entries (which DE, which schema, which store name); the runtime hosts them
("Externalize"), the schema's ``+kr`` annotations declare what can be
filled externally ("Express"), and integrators are configured separately
("Exchange").
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.schema import Schema


@dataclass
class StoreBinding:
    """One data store a knactor externalizes.

    - ``local_name``: how the reconciler refers to it (``"default"`` is
      the primary Object store; Log stores conventionally ``"log"``),
    - ``de``: the runtime's DE name to host on (``"object"`` / ``"log"``),
    - ``schema``: a :class:`~repro.schema.Schema` or its text form,
    - ``store_name``: hosted store name; defaults to
      ``knactor-<knactor name>`` (plus ``-<local_name>`` for extras).
    """

    local_name: str
    de: str
    schema: object
    store_name: str = None

    def resolved_schema(self):
        if isinstance(self.schema, Schema):
            return self.schema
        return Schema.from_text(self.schema)


@dataclass
class Knactor:
    """A service in the Knactor pattern."""

    name: str
    stores: list = field(default_factory=list)
    reconciler: object = None
    location: str = None  # network location; defaults to the name

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("knactor name must be non-empty")
        if self.location is None:
            self.location = self.name
        seen = set()
        for binding in self.stores:
            if binding.local_name in seen:
                raise ConfigurationError(
                    f"knactor {self.name!r}: duplicate store "
                    f"local name {binding.local_name!r}"
                )
            seen.add(binding.local_name)
            if binding.store_name is None:
                suffix = (
                    "" if binding.local_name == "default" else f"-{binding.local_name}"
                )
                binding.store_name = f"knactor-{self.name}{suffix}"

    def binding(self, local_name):
        for b in self.stores:
            if b.local_name == local_name:
                return b
        raise ConfigurationError(
            f"knactor {self.name!r} has no store {local_name!r}"
        )

    @property
    def default_store_name(self):
        return self.binding("default").store_name

    def describe(self):
        lines = [f"knactor {self.name}"]
        for b in self.stores:
            lines.append(
                f"  store {b.local_name} -> {b.store_name} on {b.de} "
                f"(schema {b.resolved_schema().name})"
            )
        if self.reconciler is not None:
            lines.append(f"  reconciler {self.reconciler.name}")
        return "\n".join(lines)
