"""Cast: the built-in integrator for Object exchanges, driven by a DXG.

Cast watches every store its DXG involves; when any object changes it runs
the data exchange for that object's correlation id (fixpoint evaluation,
see :mod:`repro.core.dxg.executor`).  Reconfiguration swaps the DXG in
place -- running services are untouched.

Push-down (paper §3.3 / Table 2's ``K-redis-udf``): with a UDF-capable
backend, Cast registers the whole exchange as a server-side function and
issues a single ``fcall`` per change instead of N reads + M writes.
"""

import random
import zlib
from collections import OrderedDict

from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ConflictError,
    DXGError,
    UnavailableError,
)
from repro.faults.dlq import DeadLetterQueue
from repro.obs.context import use
from repro.core.dxg import DXGExecutor, analyze, parse_dxg, standard_functions
from repro.core.dxg.executor import ExecutorOptions
from repro.core.dxg.parser import DXGSpec, build_spec
from repro.core.integrator import Integrator
from repro.store.memkv import MemKVClient


class Cast(Integrator):
    """DXG-driven integrator over an Object Data Exchange."""

    #: Simulated integrator CPU time per assignment per exchange.
    compute_cost_per_assignment = 5e-6

    #: Transient-failure policy: an exchange hitting an unavailable /
    #: conflicting store is requeued with jittered backoff up to this
    #: many times, then its cid is dead-lettered.
    max_exchange_attempts = 5
    requeue_backoff = 0.005

    def __init__(
        self,
        name,
        spec,
        de="object",
        functions=None,
        options=None,
        creatable_targets=None,
        pushdown=False,
        store_map=None,
        location=None,
        workers=1,
    ):
        super().__init__(name)
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self._initial_spec = spec
        self.de_name = de
        self.functions = functions if functions is not None else standard_functions()
        self.options = options or ExecutorOptions()
        self.creatable_targets = creatable_targets
        self.pushdown = pushdown
        self.store_map = dict(store_map) if store_map else None
        self.location = location or name
        self.executor = None
        self.analysis = None
        self._inputs = None
        self._body = None
        self._extra_kinds = {}
        self._globals = {}
        self._watches = []
        self._queue = OrderedDict()
        self._cid_ctx = {}  # cid -> causal ctx of the latest triggering commit
        self._wakeups = []
        self._workers = []
        self._in_flight = set()
        self._seen_cids = set()
        self._udf_name = None
        self._udf_client = None
        self._exchange_failures = {}  # cid -> consecutive transient failures
        self._rng = random.Random(zlib.crc32(name.encode()))
        self.dead_letters = DeadLetterQueue(name=name)
        self.exchanges_run = 0
        self.denied = 0
        self.errors = 0
        self.unavailable_count = 0
        self.kill_count = 0

    # -- configuration ------------------------------------------------------------

    def _on_bind(self):
        self._apply_configuration(self._initial_spec)

    def _apply_configuration(self, spec=None, body=None):
        """(Re)build the executor from a spec (text / DXGSpec) or a body.

        ``body`` is the programmatic form: ``{target: {field: expr}}``,
        merged over the current body (None removes a field) -- this is how
        run-time policy additions work (e.g. T2's shipment-method policy).
        """
        if spec is not None and body is not None:
            raise ConfigurationError("pass either spec or body, not both")
        if spec is not None:
            if isinstance(spec, str):
                spec = parse_dxg(spec)
            if not isinstance(spec, DXGSpec):
                raise ConfigurationError(f"bad spec {spec!r}")
            self._inputs = dict(spec.inputs)
            self._globals = dict(spec.globals_)
            self._body = self._body_of(spec)
            # Preserve source-only kinds for later body-based rebuilds.
            target_kinds = {
                (a.target_alias, a.target_kind) for a in spec.assignments
            }
            self._extra_kinds = {}
            for a in spec.assignments:
                for ref in a.sources:
                    if ref.kind and (ref.alias, ref.kind) not in target_kinds:
                        self._extra_kinds.setdefault(ref.alias, set()).add(ref.kind)
        else:
            if self._body is None:
                raise ConfigurationError("no existing spec to amend")
            merged = {t: dict(fields) for t, fields in self._body.items()}
            for target, fields in (body or {}).items():
                slot = merged.setdefault(target, {})
                for field_name, expr in fields.items():
                    if expr is None:
                        slot.pop(field_name, None)
                    else:
                        slot[field_name] = expr
                if not slot:
                    del merged[target]
            spec = build_spec(
                self._inputs, merged,
                extra_kinds={a: sorted(k) for a, k in self._extra_kinds.items()},
                globals_=self._globals,
            )
            self._body = merged

        de = self.runtime.exchange(self.de_name)
        store_names = {
            alias: self._store_name(alias, ref)
            for alias, ref in spec.inputs.items()
        }
        schemas = {
            alias: de.schema_for(store_name)
            for alias, store_name in store_names.items()
        }
        self.analysis = analyze(spec, functions=self.functions, schemas=schemas)
        self.analysis.raise_if_invalid()
        handles = {
            alias: de.handle(store_name, principal=self.name, location=self.location)
            for alias, store_name in store_names.items()
        }
        self.executor = DXGExecutor(
            self.runtime.env,
            spec,
            handles,
            functions=self.functions,
            options=self.options,
            creatable_targets=self.creatable_targets,
            tracer=self.runtime.tracer,
        )
        self._store_names = store_names
        if self.pushdown:
            self._install_pushdown(de)
        if self.started:
            self._rewire_watches()
        return f"dxg with {len(spec.assignments)} assignment(s)"

    @staticmethod
    def _body_of(spec):
        body = {}
        for a in spec.assignments:
            target = f"{a.target_alias}.{a.target_kind}" if a.target_kind else a.target_alias
            body.setdefault(target, {})[a.field] = a.expression.source
        return body

    def _store_name(self, alias, ref):
        if self.store_map and alias in self.store_map:
            return self.store_map[alias]
        # Convention: the input reference's last component names the store.
        return ref.rsplit("/", 1)[-1]

    def _install_pushdown(self, de):
        if not getattr(de, "supports_udf", False):
            raise ConfigurationError(
                f"integrator {self.name!r}: push-down requires a "
                "UDF-capable backend (MemKV)"
            )
        prefixes = {
            alias: de.store(store_name).key_prefix
            for alias, store_name in self._store_names.items()
        }
        self._udf_name = f"dxg:{self.name}:g{self.generation + 1}"
        de.backend.functions.register(
            self._udf_name,
            self.executor.as_udf(prefixes),
            cost=self.executor.udf_cost,
        )
        self._udf_client = MemKVClient(de.backend, location=self.location)

    # -- convenience reconfiguration API ----------------------------------------------

    def set_assignment(self, target, field, expression):
        """Add/replace one assignment at run time (a data-centric policy)."""
        return self.reconfigure(body={target: {field: expression}})

    def remove_assignment(self, target, field):
        return self.reconfigure(body={target: {field: None}})

    # -- lifecycle ------------------------------------------------------------------------

    def _on_start(self):
        self._rewire_watches()
        env = self.runtime.env
        self._workers = [
            env.process(self._work_loop(env)) for _ in range(self.workers)
        ]

    def _on_stop(self):
        for watch in self._watches:
            watch.cancel()
        self._watches = []
        self._kick()

    def _rewire_watches(self):
        for watch in self._watches:
            watch.cancel()
        self._watches = []
        for alias, handle in self.executor.handles.items():
            self._watches.append(
                handle.watch(self._make_handler(alias),
                             on_close=self._on_watch_lost,
                             batch_handler=self._make_batch_handler(alias))
            )

    def _on_watch_lost(self):
        """Backend failover: re-watch everything, resync every group."""
        if not self.started:
            return
        self.runtime.tracer.record("cast", "watch-lost", integrator=self.name)
        self._rewire_watches()
        for cid in sorted(self._seen_cids):
            self._queue[cid] = True
        self._kick()

    def _make_handler(self, alias):
        def handler(event):
            self._ingest(alias, event)
            self._kick()

        return handler

    def _make_batch_handler(self, alias):
        """Consume a coalesced watch delivery: N events, ONE worker kick."""

        def handler(events):
            for event in events:
                self._ingest(alias, event)
            self._kick()

        return handler

    def _ingest(self, alias, event):
        kind, cid = DXGExecutor.split_key(event.key)
        self.runtime.tracer.record(
            "cast", "event", integrator=self.name, alias=alias,
            kind=kind, cid=cid, type=event.type,
        )
        self.executor.update_cache(
            alias, kind, cid, None if event.type == "DELETED" else event.object
        )
        if self.executor.is_global(alias):
            # A lookup object changed: every known exchange group may
            # derive different values now.  Sorted: deterministic.
            for seen_cid in sorted(self._seen_cids):
                self._queue[seen_cid] = True
        else:
            self._seen_cids.add(cid)
            self._queue[cid] = True
            # The commit that triggered this exchange is its causal
            # parent (lookup-object fan-outs keep no per-cid parent:
            # one global change is not "the" cause of N exchanges).
            self._cid_ctx[cid] = getattr(event, "ctx", None)

    def _kick(self):
        pending, self._wakeups = self._wakeups, []
        for wakeup in pending:
            if not wakeup.triggered:
                wakeup.succeed()

    # -- the exchange loop ----------------------------------------------------------------

    def _work_loop(self, env):
        while self.started:
            cid = self._next_cid()
            if cid is None:
                wakeup = env.event()
                self._wakeups.append(wakeup)
                yield wakeup
                continue
            self._in_flight.add(cid)
            try:
                yield env.process(self._process(env, cid))
            finally:
                self._in_flight.discard(cid)
                self._kick()  # a worker may be waiting on this cid

    def _next_cid(self):
        """Pop the first queued cid that is not already being processed.

        Per-cid execution stays serial even with multiple workers: two
        concurrent exchanges for one correlation id would race their
        read-compute-write cycles.
        """
        for cid in self._queue:
            if cid not in self._in_flight:
                del self._queue[cid]
                return cid
        return None

    def _process(self, env, cid):
        tracer = self.runtime.tracer
        tracer.record("cast", "begin", integrator=self.name, cid=cid)
        parent = self._cid_ctx.pop(cid, None)
        octx = None
        if parent is not None and parent.sink is not None:
            octx = parent.sink.start_span(
                "exchange", service=self.name, parent=parent, cid=cid,
            )
        compute = self.compute_cost_per_assignment * len(
            self.executor.spec.assignments
        )
        if not self.pushdown and compute > 0:
            yield env.timeout(compute)
        tracer.record("cast", "writes.begin", integrator=self.name, cid=cid)
        try:
            if self.pushdown:
                # The fcall request captures the ambient context
                # synchronously, so the pushdown UDF's server-side
                # writes chain onto the exchange span.
                with use(octx):
                    work = self._udf_client.fcall(self._udf_name, cid)
                yield work
            else:
                yield self.executor.exchange(cid, ctx=octx)
        except AccessDeniedError as exc:
            # A run-time access policy (e.g. sleep hours) vetoed this
            # exchange.  That is policy working, not a crash: count it and
            # move on; a later event will retry the cid.
            self.denied += 1
            tracer.record(
                "cast", "denied", integrator=self.name, cid=cid,
                reason=str(exc),
            )
            if octx is not None:
                octx.sink.end_span(octx, outcome="denied")
            return
        except (UnavailableError, ConflictError) as exc:
            # Transient substrate failure (crashed/partitioned store,
            # optimistic-concurrency race): requeue with backoff; after
            # max_exchange_attempts the cid is parked in the DLQ so one
            # unreachable group never wedges the worker pool.
            self.unavailable_count += 1
            if octx is not None:
                octx.sink.end_span(octx, outcome=type(exc).__name__)
                self._cid_ctx.setdefault(cid, parent)  # retried: re-parent
            self._retry_later(env, cid, exc)
            return
        except DXGError as exc:
            # Value-level divergence (non-quiescence) on this cid: record
            # it and keep the integrator alive for other exchanges.
            self.errors += 1
            tracer.record(
                "cast", "error", integrator=self.name, cid=cid,
                reason=str(exc),
            )
            if octx is not None:
                octx.sink.end_span(octx, outcome="dxg-error")
            return
        self._exchange_failures.pop(cid, None)
        self.exchanges_run += 1
        tracer.record("cast", "end", integrator=self.name, cid=cid)
        if octx is not None:
            octx.sink.end_span(octx, outcome="ok")

    def _retry_later(self, env, cid, exc):
        count = self._exchange_failures.get(cid, 0) + 1
        if count > self.max_exchange_attempts:
            self._exchange_failures.pop(cid, None)
            self.dead_letters.push(
                cid, exc, attempts=count, time=env.now, source=self.name
            )
            self.runtime.tracer.record(
                "cast", "dead-letter", integrator=self.name, cid=cid,
                reason=str(exc),
            )
            return
        self._exchange_failures[cid] = count
        delay = (
            min(0.5, self.requeue_backoff * (2 ** (count - 1)))
            * self._rng.uniform(0.5, 1.5)
        )
        timer = env.timeout(delay)
        timer.callbacks.append(lambda _evt, c=cid: self._requeue_cid(c))
        self.runtime.tracer.record(
            "cast", "retry-later", integrator=self.name, cid=cid,
            attempt=count, delay=delay,
        )

    def _requeue_cid(self, cid):
        if not self.started:
            return
        self._queue[cid] = True
        self._kick()

    # -- process faults (see repro.faults) ---------------------------------

    def kill(self):
        """Simulate a worker-process crash: queue and retry state vanish.

        The watches are cancelled (connections die with the process); a
        :meth:`restart` re-wires them and resyncs every known group, so
        level-triggered re-evaluation recovers anything lost.
        """
        if not self.started:
            return
        self.kill_count += 1
        self._queue.clear()
        self._exchange_failures.clear()
        self.stop()
        self.runtime.tracer.record("cast", "killed", integrator=self.name)

    def restart(self):
        """Restart after :meth:`kill`: re-watch and resync seen groups."""
        if self.started:
            return
        self.start()
        for cid in sorted(self._seen_cids):
            self._queue[cid] = True
        self._kick()
        self.runtime.tracer.record("cast", "restarted", integrator=self.name)

    def status(self):
        base = super().status()
        base.update(
            {
                "exchanges_run": self.exchanges_run,
                "dead_letters": len(self.dead_letters),
                "unavailable": self.unavailable_count,
                "pushdown": self.pushdown,
                "assignments": len(self.executor.spec.assignments)
                if self.executor
                else 0,
                "warnings": list(self.analysis.warnings) if self.analysis else [],
            }
        )
        return base
