"""Optimization profiles: the §3.3 performance knobs in one place.

The paper lists three optimization levers:

1. a high-performance DE (in-memory k-v store) and **push-down** of
   composition logic into it via UDFs,
2. **zero-copy** data exchange when data stores and integrator are
   co-located with the DE,
3. **consolidation** of state-processing operations.

An :class:`OptimizationProfile` bundles the corresponding toggles so
benchmarks can sweep them, and configures a :class:`~repro.core.cast.Cast`
accordingly.  The three named profiles reproduce Table 2's rows.
"""

from dataclasses import dataclass

from repro.core.dxg.executor import ExecutorOptions


@dataclass(frozen=True)
class OptimizationProfile:
    """A named combination of the paper's optimization toggles."""

    name: str
    backend: str = "apiserver"  # "apiserver" | "memkv"
    pushdown: bool = False
    zero_copy: bool = False  # co-locate the integrator with the DE backend
    consolidate: bool = True
    refresh_reads: bool = True

    def executor_options(self):
        return ExecutorOptions(
            consolidate=self.consolidate,
            refresh_reads=self.refresh_reads,
            # Integrators under a profile run watch-fed (informer-style):
            # never pay a round trip to learn an object does not exist.
            trust_cache_for_missing=True,
        )

    def integrator_location(self, backend_location, default):
        """Where the integrator runs: on the DE node when zero-copy."""
        return backend_location if self.zero_copy else default


#: Table 2's three Knactor rows.
K_APISERVER = OptimizationProfile(name="K-apiserver", backend="apiserver")
K_REDIS = OptimizationProfile(name="K-redis", backend="memkv")
K_REDIS_UDF = OptimizationProfile(
    name="K-redis-udf", backend="memkv", pushdown=True
)

PROFILES = {p.name: p for p in (K_APISERVER, K_REDIS, K_REDIS_UDF)}
