"""The Knactor runtime: hosts knactors and integrators on DEs.

The runtime owns the simulation environment, the network, the tracer, and
one or more named Data Exchanges.  Registering a knactor *externalizes*
its stores (hosts them + registers schemas); registering an integrator
binds it (static analysis against live schemas) so it can be started and
reconfigured at run time.
"""

from repro.errors import ConfigurationError, NotFoundError
from repro.core.knactor import Knactor
from repro.core.reconciler import ReconcilerContext
from repro.obs import ObsPlane

#: Execution backends the runtime can create environments for.
MODES = ("sim", "realtime")


def create_environment(mode="sim", **kwargs):
    """Build an execution environment for ``mode``.

    ``"sim"`` returns the deterministic discrete-event
    :class:`repro.simnet.Environment`; ``"realtime"`` returns a
    wall-clock-paced :class:`repro.realtime.RealtimeEnvironment`.
    Extra keyword arguments go to the environment constructor
    (e.g. ``factor=`` for realtime).
    """
    if mode == "sim":
        from repro.simnet import Environment

        return Environment(**kwargs)
    if mode == "realtime":
        from repro.realtime import RealtimeEnvironment

        return RealtimeEnvironment(**kwargs)
    raise ConfigurationError(
        f"unknown execution mode {mode!r}: expected one of {MODES}"
    )


class KnactorRuntime:
    """Hosts knactors + integrators over a set of Data Exchanges.

    The runtime is backend-agnostic: pass an environment built by
    :func:`create_environment` (or any object with the simnet kernel
    surface), or pass ``mode="sim"`` / ``mode="realtime"`` and let the
    runtime build one.  Passing both checks they agree.  Under the
    realtime backend the default network carries zero simulated latency
    -- real scheduling provides the time.

    With ``obs=True`` (or a pre-built :class:`repro.obs.ObsPlane`), the
    runtime attaches the observability plane to its tracer -- store
    servers and watches reach it through ``tracer.obs`` -- and binds its
    component registries for metric scraping.  ``obs=None`` (default)
    leaves tracing/metrics off with zero overhead.
    """

    def __init__(self, env=None, network=None, tracer=None, obs=None,
                 mode=None):
        if env is None:
            env = create_environment(mode if mode is not None else "sim")
        elif mode is not None:
            if mode not in MODES:
                raise ConfigurationError(
                    f"unknown execution mode {mode!r}: "
                    f"expected one of {MODES}"
                )
            backend = getattr(env, "backend", "sim")
            if backend != mode:
                raise ConfigurationError(
                    f"mode={mode!r} does not match the given "
                    f"environment's backend {backend!r}"
                )
        self.env = env
        self.mode = getattr(env, "backend", "sim")
        self.network = (
            network if network is not None else self._default_network(env)
        )
        self.tracer = tracer if tracer is not None else self._default_tracer(env)
        self.obs = None
        if obs is not None and obs is not False:
            plane = obs if isinstance(obs, ObsPlane) else ObsPlane(env)
            self.obs = plane.attach(self.tracer).bind_runtime(self)
        self.exchanges = {}  # name -> DataExchange
        self.knactors = {}
        self.integrators = {}
        self._started = False

    @staticmethod
    def _default_network(env):
        """A network matched to the backend: simulated hop latencies in
        the sim, zero added latency in real time (the wall clock is the
        latency)."""
        from repro.simnet import FixedLatency, Network

        if getattr(env, "backend", "sim") == "realtime":
            return Network(env, default_latency=FixedLatency(0.0))
        return Network(env)

    @staticmethod
    def _default_tracer(env):
        from repro.simnet import Tracer

        return Tracer(env)

    # -- registration -------------------------------------------------------------

    def add_exchange(self, name, de):
        if name in self.exchanges:
            raise ConfigurationError(f"exchange {name!r} already registered")
        self.exchanges[name] = de
        return de

    def exchange(self, name):
        try:
            return self.exchanges[name]
        except KeyError:
            raise NotFoundError(f"no exchange named {name!r}") from None

    def add_knactor(self, knactor):
        """Register and externalize a knactor's data stores."""
        if not isinstance(knactor, Knactor):
            raise ConfigurationError(f"expected a Knactor, got {knactor!r}")
        if knactor.name in self.knactors:
            raise ConfigurationError(f"knactor {knactor.name!r} already registered")
        self.knactors[knactor.name] = knactor
        handles = {}
        for binding in knactor.stores:
            de = self.exchange(binding.de)
            de.host_store(
                binding.store_name, binding.resolved_schema(), owner=knactor.name
            )
            handles[binding.local_name] = de.handle(
                binding.store_name, principal=knactor.name,
                location=knactor.location,
            )
        if knactor.reconciler is not None:
            ctx = ReconcilerContext(
                self.env, knactor.name, handles, tracer=self.tracer
            )
            knactor.reconciler.attach(ctx)
        knactor._handles = handles
        if self._started and knactor.reconciler is not None:
            knactor.reconciler.start()
        return knactor

    def add_integrator(self, integrator):
        if integrator.name in self.integrators:
            raise ConfigurationError(
                f"integrator {integrator.name!r} already registered"
            )
        self.integrators[integrator.name] = integrator
        integrator.bind(self)
        if self._started:
            integrator.start()
        return integrator

    # -- lookups ---------------------------------------------------------------------

    def knactor(self, name):
        try:
            return self.knactors[name]
        except KeyError:
            raise NotFoundError(f"no knactor named {name!r}") from None

    def integrator(self, name):
        try:
            return self.integrators[name]
        except KeyError:
            raise NotFoundError(f"no integrator named {name!r}") from None

    def handle_of(self, knactor_name, local_name="default"):
        """A knactor's own handle to one of its stores."""
        return self.knactor(knactor_name)._handles[local_name]

    def store_owner(self, store_name):
        """Which knactor owns a hosted store name (any DE)."""
        for knactor in self.knactors.values():
            for binding in knactor.stores:
                if binding.store_name == store_name:
                    return knactor.name
        raise NotFoundError(f"no knactor hosts store {store_name!r}")

    # -- lifecycle ---------------------------------------------------------------------

    def start(self):
        """Start every reconciler and integrator."""
        if self._started:
            return
        self._started = True
        for knactor in self.knactors.values():
            if knactor.reconciler is not None:
                knactor.reconciler.start()
        for integrator in self.integrators.values():
            integrator.start()

    def stop(self):
        if not self._started:
            return
        self._started = False
        for integrator in self.integrators.values():
            integrator.stop()
        for knactor in self.knactors.values():
            if knactor.reconciler is not None:
                knactor.reconciler.stop()

    def describe(self):
        lines = [f"runtime: {len(self.knactors)} knactor(s), "
                 f"{len(self.integrators)} integrator(s)"]
        for knactor in self.knactors.values():
            lines.append(knactor.describe())
        for integrator in self.integrators.values():
            lines.append(repr(integrator))
        for name, de in self.exchanges.items():
            lines.append(de.describe())
        return "\n".join(lines)
