"""Transformation functions available inside DXG expressions.

The paper's Fig. 6 uses ``currency_convert``; integrator authors can
register their own pure functions.  Functions must be deterministic and
side-effect-free: the executor re-evaluates assignments freely and may
push them down into a store (where re-execution is also possible).
"""

from repro.errors import ConfigurationError, ExpressionError

#: Fixed demo conversion table (rates to USD).  A real deployment would
#: plug in a live table; determinism matters more here.
_RATES_TO_USD = {
    "USD": 1.0,
    "EUR": 1.08,
    "GBP": 1.27,
    "JPY": 0.0067,
    "CAD": 0.73,
}


def currency_convert(amount, from_currency, to_currency):
    """Convert ``amount`` between currencies using a fixed rate table."""
    if amount is None:
        return None
    try:
        usd = amount * _RATES_TO_USD[from_currency]
        return round(usd / _RATES_TO_USD[to_currency], 4)
    except KeyError as exc:
        raise ExpressionError(f"unknown currency {exc.args[0]!r}") from exc


def coalesce(*values):
    """First non-None value (or None)."""
    for value in values:
        if value is not None:
            return value
    return None


def concat(*parts):
    """Join parts as strings, skipping None."""
    return "".join(str(p) for p in parts if p is not None)


def lookup(mapping, key, default=None):
    """Safe dict lookup usable from expressions."""
    from repro.util.safeexpr import unwrap

    mapping = unwrap(mapping)
    if not isinstance(mapping, dict):
        return default
    return mapping.get(key, default)


def clamp(value, low, high):
    """Clamp a number into ``[low, high]``."""
    if value is None:
        return None
    return max(low, min(high, value))


class FunctionRegistry:
    """Named pure functions exposed to DXG expressions."""

    def __init__(self, functions=None):
        self._functions = {}
        for name, fn in (functions or {}).items():
            self.register(name, fn)

    def register(self, name, fn):
        if not callable(fn):
            raise ConfigurationError(f"function {name!r} must be callable")
        if not name.isidentifier():
            raise ConfigurationError(f"function name {name!r} must be an identifier")
        self._functions[name] = fn

    def unregister(self, name):
        self._functions.pop(name, None)

    def table(self):
        """The name -> callable mapping handed to the evaluator."""
        return dict(self._functions)

    def names(self):
        return sorted(self._functions)

    def __contains__(self, name):
        return name in self._functions


def standard_functions():
    """The registry every Cast integrator starts with."""
    return FunctionRegistry(
        {
            "currency_convert": currency_convert,
            "coalesce": coalesce,
            "concat": concat,
            "lookup": lookup,
            "clamp": clamp,
        }
    )
