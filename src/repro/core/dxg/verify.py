"""Bounded verification of DXG robustness (paper §5).

"The visibility over states and data exchanges in Knactor allows
developers to leverage tools such as formal methods and static analysis
[...] for implementing composition at large-scale."

Static analysis (cycle/unused-state detection) lives in
:mod:`repro.core.dxg.analysis`.  This module adds a *dynamic* bounded
checker: **confluence**.  A data exchange is confluent when the final
fixpoint does not depend on the order in which source updates arrive --
the property that makes integrators safe to run against watch streams,
whose delivery order across stores is not guaranteed.

:func:`check_confluence` replays a set of source-state updates in every
*valid* interleaving (bounded): per-object update order is preserved --
that is the FIFO guarantee a watch stream gives -- while updates to
DIFFERENT objects interleave arbitrarily, which is exactly what is NOT
guaranteed across stores.  The executor runs to fixpoint after each
delivery; final states of all involved objects must match across
interleavings.  Any divergence is reported with the two orderings that
disagree -- the counterexample a developer needs.
"""

from dataclasses import dataclass, field
from itertools import islice

from repro.core.dxg.executor import DXGExecutor, ExecutorOptions
from repro.errors import ConfigurationError
from repro.exchange import ObjectDE
from repro.simnet import Environment, FixedLatency, Network
from repro.store import MemKV


@dataclass
class ConfluenceReport:
    """Outcome of a bounded confluence check."""

    confluent: bool
    orders_checked: int
    final_state: dict = None  # (alias, kind) -> data, when confluent
    counterexample: tuple = None  # (order_a, state_a, order_b, state_b)
    problems: list = field(default_factory=list)

    def describe(self):
        if self.confluent:
            return f"confluent across {self.orders_checked} orderings"
        lines = [f"NOT confluent (checked {self.orders_checked} orderings)"]
        if self.counterexample:
            order_a, state_a, order_b, state_b = self.counterexample
            lines.append(f"  order {order_a} -> {state_a}")
            lines.append(f"  order {order_b} -> {state_b}")
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def check_confluence(
    spec,
    schemas,
    updates,
    cid="verify",
    functions=None,
    creatable_targets=None,
    max_orders=24,
    options=None,
):
    """Bounded confluence check for one correlation group.

    - ``spec``: a parsed :class:`DXGSpec`.
    - ``schemas``: ``{alias: Schema}`` for every alias (hosted on a fresh
      in-memory exchange per ordering).
    - ``updates``: list of ``(alias, kind, data)`` source writes; the
      first occurrence of an (alias, kind) creates the object, later ones
      update it.  All orderings (up to ``max_orders``) are executed with
      an exchange run to fixpoint after every write.
    - Returns a :class:`ConfluenceReport`.
    """
    if not updates:
        raise ConfigurationError("need at least one source update")
    if max_orders < 1:
        raise ConfigurationError("max_orders must be >= 1")

    groups = [(alias, kind) for alias, kind, _data in updates]
    orders = list(islice(_interleavings(groups), max_orders))
    outcomes = []
    for order in orders:
        state = _run_order(
            spec, schemas, updates, order, cid, functions,
            creatable_targets, options,
        )
        outcomes.append((order, state))

    report = ConfluenceReport(confluent=True, orders_checked=len(orders))
    baseline_order, baseline = outcomes[0]
    report.final_state = baseline
    for order, state in outcomes[1:]:
        if state != baseline:
            report.confluent = False
            report.counterexample = (baseline_order, baseline, order, state)
            report.final_state = None
            diverging = sorted(
                k for k in set(baseline) | set(state)
                if baseline.get(k) != state.get(k)
            )
            report.problems.append(
                "diverging objects: "
                + ", ".join(".".join(p for p in key if p) for key in diverging)
            )
            break
    return report


def _interleavings(groups):
    """All index orderings preserving each group's internal order.

    ``groups[i]`` is update ``i``'s object identity; within one object,
    updates stay FIFO (the watch-stream guarantee), across objects they
    shuffle freely.
    """
    queues = {}
    for index, group in enumerate(groups):
        queues.setdefault(group, []).append(index)

    def merge(remaining, prefix):
        live = [g for g, q in remaining.items() if q]
        if not live:
            yield tuple(prefix)
            return
        for group in live:
            head, *rest = remaining[group]
            next_remaining = dict(remaining)
            next_remaining[group] = rest
            yield from merge(next_remaining, prefix + [head])

    yield from merge(queues, [])


def _run_order(spec, schemas, updates, order, cid, functions,
               creatable_targets, options):
    env = Environment()
    network = Network(env, default_latency=FixedLatency(0.0))
    de = ObjectDE(env, MemKV(env, network, watch_overhead=0.0))
    handles = {}
    owners = {}
    for alias in spec.inputs:
        schema = schemas.get(alias)
        if schema is None:
            raise ConfigurationError(f"no schema supplied for alias {alias!r}")
        store_name = f"verify-{alias}"
        de.host_store(store_name, schema, owner=f"owner-{alias}")
        de.grant("verifier", store_name, role="integrator")
        handles[alias] = de.handle(store_name, principal="verifier")
        owners[alias] = de.handle(store_name, principal=f"owner-{alias}")
    executor = DXGExecutor(
        env, spec, handles,
        functions=functions,
        options=options or ExecutorOptions(),
        creatable_targets=creatable_targets,
    )

    from repro.errors import AlreadyExistsError

    created = set()
    for index in order:
        alias, kind, data = updates[index]
        key = executor.object_key(kind, cid)
        owner = owners[alias]
        if (alias, kind) in created:
            env.run(until=owner.patch(key, data))
        else:
            # The integrator may have created the object already (it is a
            # creatable DXG target); the owner's first write then merges.
            try:
                env.run(until=owner.create(key, data))
            except AlreadyExistsError:
                env.run(until=owner.patch(key, data))
            created.add((alias, kind))
        env.run(until=executor.exchange(cid))

    # Final snapshot of every involved object.
    snapshot = {}
    for alias, kind in executor._involved:
        key = executor.object_key(kind, cid)
        try:
            view = env.run(until=owners[alias].get(key))
            snapshot[(alias, kind)] = view["data"]
        except Exception:
            snapshot[(alias, kind)] = None
    return snapshot
