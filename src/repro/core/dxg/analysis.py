"""Static analysis of DXG specifications.

Run before a Cast integrator is (re)configured, so bad compositions are
rejected at configuration time rather than discovered as runtime churn:

- **cycle detection**: a dependency cycle among assigned fields can make
  propagation oscillate forever; rejected outright.
- **duplicate assignment**: two assignments to the same target field are
  ambiguous; rejected.
- **unknown function**: expressions may only call registered functions.
- **schema conformance** (when schemas are supplied): referenced source
  fields must exist; assigned fields must exist and, for non-owner
  integrators, be annotated ``+kr: external``.
- **unused-state detection** (warning): ``+kr: external`` fields that no
  assignment fills -- declared intent that the composition does not meet.
"""

from dataclasses import dataclass, field

from repro.errors import DXGAnalysisError
from repro.core.dxg.graph import DependencyGraph
from repro.util.safeexpr import SAFE_BUILTINS


@dataclass
class AnalysisReport:
    """Outcome of static analysis: hard errors and soft warnings."""

    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    cycles: list = field(default_factory=list)
    unused_external: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.errors

    def raise_if_invalid(self):
        if self.errors:
            raise DXGAnalysisError("; ".join(self.errors))

    def summary(self):
        parts = []
        if self.errors:
            parts.append(f"{len(self.errors)} error(s): " + "; ".join(self.errors))
        if self.warnings:
            parts.append(
                f"{len(self.warnings)} warning(s): " + "; ".join(self.warnings)
            )
        return " | ".join(parts) if parts else "ok"


def analyze(spec, functions=None, schemas=None):
    """Statically analyze ``spec``.

    - ``functions``: a :class:`~repro.core.dxg.functions.FunctionRegistry`
      (or None to skip call checking).
    - ``schemas``: optional ``{alias: Schema}`` for conformance checks.
    """
    report = AnalysisReport()
    graph = DependencyGraph.from_spec(spec)

    _check_duplicates(spec, report)
    _check_cycles(graph, report)
    if functions is not None:
        _check_functions(spec, functions, report)
    if schemas:
        _check_schemas(spec, schemas, report)
        _check_unused_external(spec, schemas, report)
    return report


def _check_duplicates(spec, report):
    seen = set()
    for a in spec.assignments:
        node = a.target_node
        if node in seen:
            report.errors.append(f"duplicate assignment to {'.'.join(filter(None, node))}")
        seen.add(node)


def _check_cycles(graph, report):
    cycles = graph.find_cycles()
    for cycle in cycles:
        spelling = " -> ".join(
            ".".join(p for p in node if p) for node in cycle
        )
        report.errors.append(f"dependency cycle: {spelling}")
    report.cycles = cycles


def _check_functions(spec, functions, report):
    import ast

    for a in spec.assignments:
        tree = ast.parse(a.expression.source, mode="eval")
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name not in functions and name not in SAFE_BUILTINS:
                    report.errors.append(
                        f"{a.describe()}: unknown function {name!r}"
                    )


def _check_schemas(spec, schemas, report):
    for a in spec.assignments:
        schema = schemas.get(a.target_alias)
        if schema is not None:
            if not schema.has_field(a.field):
                report.errors.append(
                    f"{a.describe()}: target schema {schema.name} "
                    f"has no field {a.field!r}"
                )
        for ref in a.sources:
            src_schema = schemas.get(ref.alias)
            if src_schema is None or not ref.path:
                continue
            if not _schema_covers(src_schema, ref.path):
                report.errors.append(
                    f"{a.describe()}: source schema {src_schema.name} "
                    f"has no field {ref.path!r}"
                )


def _schema_covers(schema, path):
    """True if ``path`` is declared, or falls under an open object field."""
    if schema.has_field(path):
        return True
    parts = path.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        ancestor = ".".join(parts[:cut])
        if schema.has_field(ancestor):
            return not schema.children(ancestor)
    return False


def _check_unused_external(spec, schemas, report):
    assigned = {(a.target_alias, a.field) for a in spec.assignments}
    for alias, schema in schemas.items():
        for f in schema.external_fields():
            if (alias, f.path) not in assigned:
                message = (
                    f"{alias}.{f.path} is annotated '+kr: external' "
                    "but no assignment fills it"
                )
                report.warnings.append(message)
                report.unused_external.append((alias, f.path))
