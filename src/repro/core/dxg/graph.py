"""The field-level dependency graph of a DXG.

Nodes are ``(alias, kind, field_path)`` triples; a directed edge
``source -> target`` means the target field is computed from the source
field.  ``this.X`` reads contribute edges from the target object's own
field ``X``.  The graph supports the static analyses the paper calls out
(§5 "the Cast can provide loop and unused state detection with static
analysis") and the planner's topological ordering.
"""

from collections import defaultdict


class DependencyGraph:
    """Directed graph over DXG field nodes."""

    def __init__(self):
        self._succ = defaultdict(set)  # node -> set of downstream nodes
        self._pred = defaultdict(set)
        self._nodes = set()
        self._assignment_of = {}  # target node -> Assignment

    @classmethod
    def from_spec(cls, spec):
        graph = cls()
        for assignment in spec.assignments:
            graph.add_assignment(assignment)
        return graph

    def add_assignment(self, assignment):
        target = assignment.target_node
        self._nodes.add(target)
        self._assignment_of[target] = assignment
        for ref in assignment.sources:
            self.add_edge(ref.node(), target)
        for self_path in assignment.uses_this:
            source = (assignment.target_alias, assignment.target_kind, self_path)
            self.add_edge(source, target)

    def add_edge(self, source, target):
        self._nodes.add(source)
        self._nodes.add(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    @property
    def nodes(self):
        return set(self._nodes)

    def successors(self, node):
        return set(self._succ.get(node, ()))

    def predecessors(self, node):
        return set(self._pred.get(node, ()))

    def assignment_for(self, node):
        return self._assignment_of.get(node)

    def assigned_nodes(self):
        """Nodes that are the target of an assignment."""
        return set(self._assignment_of)

    def source_nodes(self):
        """Nodes that are read but never assigned by the DXG."""
        return self._nodes - set(self._assignment_of)

    # -- analyses ---------------------------------------------------------

    def find_cycles(self):
        """All elementary cycles among *assigned* nodes (field paths).

        A cycle through a pure source node cannot oscillate (the DXG never
        writes it), so only cycles where every node is assigned matter.
        Field-path overlap is respected: an edge into ``quote`` also
        blocks ``quote.price`` readers (handled by ``_expand_overlaps``).
        """
        succ = self._effective_successors()
        assigned = set(self._assignment_of)
        cycles = []
        state = {}  # node -> 0 visiting / 1 done
        stack = []

        def visit(node):
            state[node] = 0
            stack.append(node)
            for nxt in sorted(succ.get(node, ())):
                if nxt not in assigned:
                    continue
                if state.get(nxt) == 0:
                    cycles.append(tuple(stack[stack.index(nxt) :]) + (nxt,))
                elif nxt not in state:
                    visit(nxt)
            stack.pop()
            state[node] = 1

        for node in sorted(assigned):
            if node not in state:
                visit(node)
        return cycles

    def _effective_successors(self):
        """Successor map with field-path overlap edges added.

        Writing ``(A, k, "quote")`` affects readers of ``(A, k,
        "quote.price")`` and vice versa, so overlapping paths on the same
        object are linked both ways for cycle detection.
        """
        succ = {n: set(s) for n, s in self._succ.items()}
        by_object = defaultdict(list)
        for node in self._nodes:
            by_object[(node[0], node[1])].append(node)
        for nodes in by_object.values():
            for a in nodes:
                for b in nodes:
                    if a is b:
                        continue
                    if a[2] == b[2]:
                        continue
                    if a[2].startswith(b[2] + ".") or b[2].startswith(a[2] + "."):
                        # Overlap: a write to either is a change to both.
                        # Only propagate *from assigned* nodes to readers.
                        for src, dst in ((a, b), (b, a)):
                            if src in self._assignment_of:
                                succ.setdefault(src, set()).update(
                                    self._succ.get(dst, ())
                                )
        return succ

    def topological_order(self):
        """Assigned nodes in dependency order (raises on cycles).

        Pure source nodes are not included; ties break lexicographically
        for determinism.
        """
        if self.find_cycles():
            raise ValueError("graph has cycles; no topological order")
        assigned = set(self._assignment_of)
        indegree = {
            node: len([p for p in self._pred.get(node, ()) if p in assigned])
            for node in assigned
        }
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(self._succ.get(node, ())):
                if nxt in indegree:
                    indegree[nxt] -= 1
                    if indegree[nxt] == 0:
                        ready.append(nxt)
                        ready.sort()
        return order

    def affected_by(self, changed_nodes):
        """Transitive closure of assigned nodes downstream of changes.

        ``changed_nodes`` may be whole-object nodes ``(alias, kind, "")``
        meaning "anything in this object changed".
        """
        frontier = []
        for node in changed_nodes:
            frontier.extend(self._matching_nodes(node))
        seen = set()
        result = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._succ.get(node, ()):
                if nxt in self._assignment_of:
                    result.add(nxt)
                frontier.append(nxt)
        return result

    def _matching_nodes(self, changed):
        alias, kind, path = changed
        matches = []
        for node in self._nodes:
            if node[0] != alias or node[1] != kind:
                continue
            npath = node[2]
            if not path or not npath:
                matches.append(node)
            elif npath == path or npath.startswith(path + ".") or path.startswith(
                npath + "."
            ):
                matches.append(node)
        return matches
