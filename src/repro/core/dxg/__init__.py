"""Data Exchange Graphs (DXG): the Cast integrator's specification language.

A DXG (paper Fig. 6) declaratively describes data exchanges among multiple
services' data stores: which target fields are filled from which source
fields, through which transformation expressions, under which data-centric
policies.  The sub-modules:

- :mod:`parser`    -- parse the YAML-subset spec into a :class:`DXGSpec`,
- :mod:`graph`     -- the field-level dependency graph,
- :mod:`analysis`  -- static analysis: cycle detection, unused-state
  detection, schema conformance (writes must target ``+kr: external``),
- :mod:`functions` -- the transformation-function registry
  (``currency_convert`` and friends),
- :mod:`planner`   -- execution planning: evaluation order and operation
  consolidation (one patch per target object, not one per field),
- :mod:`executor`  -- the runtime that evaluates assignments against DE
  handles, with optional push-down to UDF-capable backends.
"""

from repro.core.dxg.parser import Assignment, DXGSpec, Reference, parse_dxg
from repro.core.dxg.graph import DependencyGraph
from repro.core.dxg.analysis import AnalysisReport, analyze
from repro.core.dxg.functions import FunctionRegistry, standard_functions
from repro.core.dxg.planner import ExecutionPlan, plan
from repro.core.dxg.executor import DXGExecutor
from repro.core.dxg.verify import ConfluenceReport, check_confluence

__all__ = [
    "AnalysisReport",
    "ConfluenceReport",
    "check_confluence",
    "Assignment",
    "DXGExecutor",
    "DXGSpec",
    "DependencyGraph",
    "ExecutionPlan",
    "FunctionRegistry",
    "Reference",
    "analyze",
    "parse_dxg",
    "plan",
    "standard_functions",
]
