"""Parsing of DXG specifications (paper Fig. 6).

A specification has two sections::

    Input:
      C: OnlineRetail/v1/Checkout/knactor-checkout
      S: OnlineRetail/v1/Shipping/knactor-shipping
      P: OnlineRetail/v1/Payment/knactor-payment
    DXG:
      C.order:
        shippingCost: >
          currency_convert(S.quote.price, S.quote.currency, this.currency)
        paymentID: P.id
        trackingID: S.id
      P:
        amount: C.order.totalCost
        currency: C.order.currency
      S:
        items: '[item.name for item in C.order.items]'
        addr: C.order.address
        method: >
          "air" if C.order.cost > 1000 else "ground"

Terminology:

- an **alias** (``C``) names one knactor data store (from ``Input``),
- a **target** (``C.order`` or ``P``) names an object *kind* in an alias's
  store; a bare alias targets the store's default (unnamed) kind,
- an **assignment** fills one target field from an expression over
  references like ``S.quote.price`` (alias ``S``, default kind, field path
  ``quote.price``) and ``this.currency`` (the target object itself).

Reference resolution uses the declared target kinds: in ``C.order.items``
the ``order`` component is a kind because the spec declares target
``C.order``; in ``S.quote.price`` the ``quote`` component is a field
because ``S`` is only declared with its default kind.
"""

from dataclasses import dataclass, field

from repro.errors import DXGParseError
from repro.util import yamlish
from repro.util.safeexpr import SafeExpression

#: Kind name used when a target is a bare alias.
DEFAULT_KIND = ""


@dataclass(frozen=True)
class Reference:
    """A resolved read reference: alias + kind + dotted field path."""

    alias: str
    kind: str
    path: str  # "" means "the whole object"

    def node(self):
        return (self.alias, self.kind, self.path)

    def __str__(self):
        kind = f".{self.kind}" if self.kind else ""
        path = f".{self.path}" if self.path else ""
        return f"{self.alias}{kind}{path}"


@dataclass
class Assignment:
    """One DXG edge bundle: ``target.field = expression(sources...)``."""

    target_alias: str
    target_kind: str
    field: str
    expression: SafeExpression
    sources: tuple = ()  # tuple[Reference]
    uses_this: tuple = ()  # dotted self-paths read via ``this.``

    @property
    def target_node(self):
        return (self.target_alias, self.target_kind, self.field)

    def describe(self):
        kind = f".{self.target_kind}" if self.target_kind else ""
        return f"{self.target_alias}{kind}.{self.field} = {self.expression.source}"


@dataclass
class DXGSpec:
    """A parsed DXG: inputs, declared targets, and assignments.

    ``globals_`` maps aliases to FIXED object keys: a global alias reads
    one shared object (a rate table, a config singleton) instead of the
    per-correlation object -- lookup data for every exchange group.
    """

    inputs: dict  # alias -> store reference string
    assignments: list = field(default_factory=list)
    globals_: dict = field(default_factory=dict)  # alias -> fixed object key
    source_text: str = ""

    @property
    def aliases(self):
        return set(self.inputs)

    def targets(self):
        """Declared (alias, kind) targets in declaration order."""
        seen = []
        for a in self.assignments:
            key = (a.target_alias, a.target_kind)
            if key not in seen:
                seen.append(key)
        return seen

    def kinds_for(self, alias):
        """Kinds this spec declares or references for an alias."""
        kinds = set()
        for a in self.assignments:
            if a.target_alias == alias:
                kinds.add(a.target_kind)
            for ref in a.sources:
                if ref.alias == alias:
                    kinds.add(ref.kind)
        return kinds

    def assignments_for(self, alias, kind):
        return [
            a
            for a in self.assignments
            if a.target_alias == alias and a.target_kind == kind
        ]


def parse_dxg(text):
    """Parse the Fig. 6 syntax into a :class:`DXGSpec`."""
    data = yamlish.parse(text)
    if not isinstance(data, dict):
        raise DXGParseError("DXG spec must be a mapping")
    if "Input" not in data or "DXG" not in data:
        raise DXGParseError("DXG spec needs 'Input' and 'DXG' sections")
    inputs = data["Input"]
    if not isinstance(inputs, dict) or not inputs:
        raise DXGParseError("'Input' must map aliases to store references")
    for alias, ref in inputs.items():
        if not isinstance(alias, str) or not alias.isidentifier():
            raise DXGParseError(f"alias {alias!r} must be an identifier")
        if not isinstance(ref, str) or not ref:
            raise DXGParseError(f"alias {alias!r} has an invalid store reference")
    body = data["DXG"]
    if not isinstance(body, dict):
        raise DXGParseError("'DXG' must map targets to field assignments")
    kinds = data.get("Kinds", {})
    if kinds is not None and not isinstance(kinds, dict):
        raise DXGParseError("'Kinds' must map aliases to kind-name lists")
    globals_ = data.get("Globals", {})
    if globals_ is not None and not isinstance(globals_, dict):
        raise DXGParseError("'Globals' must map aliases to fixed object keys")
    return build_spec(
        inputs, body, source_text=text, extra_kinds=kinds, globals_=globals_
    )


def build_spec(inputs, body, source_text="", extra_kinds=None, globals_=None):
    """Build a :class:`DXGSpec` from already-parsed mappings.

    ``body`` maps target spellings (``"C.order"`` / ``"P"``) to
    ``{field: expression}`` mappings.  ``extra_kinds`` declares kinds an
    alias is only *read* with (``{"C": ["order"]}``) -- needed when a DXG
    references ``C.order.status`` without ever writing to ``C.order``.
    Exposed separately so integrators can be configured programmatically.
    """
    # Pass 1: declared target kinds per alias (needed to resolve refs).
    declared_kinds = {}
    for alias, kind_names in (extra_kinds or {}).items():
        if alias not in inputs:
            raise DXGParseError(f"'Kinds' uses undeclared alias {alias!r}")
        names = kind_names if isinstance(kind_names, list) else [kind_names]
        declared_kinds.setdefault(alias, set()).update(str(k) for k in names)
    targets = []
    for target_spelling, fields in body.items():
        alias, kind = _parse_target(str(target_spelling), inputs)
        declared_kinds.setdefault(alias, set()).add(kind)
        targets.append((alias, kind, fields))

    globals_ = dict(globals_ or {})
    for alias, key in globals_.items():
        if alias not in inputs:
            raise DXGParseError(f"'Globals' uses undeclared alias {alias!r}")
        if not isinstance(key, str) or not key:
            raise DXGParseError(f"global alias {alias!r} needs an object key")
    spec = DXGSpec(
        inputs=dict(inputs), source_text=source_text, globals_=globals_
    )
    for alias, kind, fields in targets:
        if alias in globals_:
            raise DXGParseError(
                f"global alias {alias!r} is read-only lookup data; "
                "it cannot be a target"
            )
        if not isinstance(fields, dict) or not fields:
            raise DXGParseError(
                f"target {alias}{'.' + kind if kind else ''} has no assignments"
            )
        for field_path, expr_text in _flatten_fields(fields).items():
            spec.assignments.append(
                _build_assignment(
                    alias, kind, field_path, expr_text, inputs, declared_kinds
                )
            )
    return spec


def _flatten_fields(fields, prefix=""):
    """Nested mappings denote nested target fields (dotted paths).

    ``destination: {street_address: expr}`` assigns the dotted field
    ``destination.street_address``.  To assign a *literal* dict, write it
    as an expression: ``meta: '{"a": 1}'``.
    """
    flat = {}
    for key, value in fields.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            if not value:
                raise DXGParseError(f"field {path!r} has an empty mapping")
            flat.update(_flatten_fields(value, path + "."))
        else:
            flat[path] = value
    return flat


def _parse_target(spelling, inputs):
    parts = spelling.split(".")
    alias = parts[0]
    if alias not in inputs:
        raise DXGParseError(f"target {spelling!r} uses undeclared alias {alias!r}")
    if len(parts) == 1:
        return alias, DEFAULT_KIND
    if len(parts) == 2:
        return alias, parts[1]
    raise DXGParseError(
        f"target {spelling!r} must be 'Alias' or 'Alias.kind'"
    )


def _build_assignment(alias, kind, field_path, expr_text, inputs, declared_kinds):
    if not isinstance(expr_text, str):
        # Scalars are allowed as constant expressions: `method: ground`
        expr_text = repr(expr_text)
    try:
        expression = SafeExpression(expr_text)
    except Exception as exc:
        raise DXGParseError(
            f"bad expression for {alias}.{field_path}: {exc}"
        ) from exc
    sources = []
    uses_this = []
    for path in expression.paths:
        root = path[0]
        if root == "this":
            uses_this.append(".".join(path[1:]))
            continue
        if root not in inputs:
            # Function names and builtins show up as bare names; skip them.
            if len(path) == 1:
                continue
            raise DXGParseError(
                f"expression for {alias}.{field_path} references "
                f"undeclared alias {root!r}"
            )
        sources.append(_resolve_reference(path, declared_kinds))
    return Assignment(
        target_alias=alias,
        target_kind=kind,
        field=field_path,
        expression=expression,
        sources=tuple(sources),
        uses_this=tuple(uses_this),
    )


def _resolve_reference(path, declared_kinds):
    """Resolve ``(alias, part1, ...)`` against declared kinds."""
    alias = path[0]
    rest = path[1:]
    kinds = declared_kinds.get(alias, set())
    if rest and rest[0] in kinds and rest[0] != DEFAULT_KIND:
        return Reference(alias=alias, kind=rest[0], path=".".join(rest[1:]))
    return Reference(alias=alias, kind=DEFAULT_KIND, path=".".join(rest))
