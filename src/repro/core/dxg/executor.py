"""Runtime evaluation of DXGs against Data Exchange handles.

The executor maintains one *exchange group* per correlation id (the object
name that ties an order to its shipment and payment).  ``exchange(cid)``
evaluates the plan's write steps repeatedly until no write happens -- the
fixpoint at which all derivable state has propagated.

Guarantees (tested as invariants):

- **quiescence**: a spec that passes static cycle analysis reaches
  fixpoint; re-running ``exchange`` on unchanged sources performs zero
  writes (idempotence);
- **not-ready tolerance**: assignments whose sources are missing are
  skipped and picked up on a later event (e.g. ``trackingID`` waits for
  the Shipping reconciler to produce ``id``);
- **no-None writes**: an expression evaluating to None is treated as
  not-ready rather than written (a None write would delete the field
  under merge-patch semantics).

Two read modes: ``refresh_reads=True`` re-GETs every involved object per
exchange (the paper's data movement; what Table 2 measures); False serves
reads from the watch-fed informer cache (an optimization knob).

Push-down: :meth:`DXGExecutor.as_udf` packages the same evaluation as a
server-side function for UDF-capable backends; the Cast integrator then
issues one ``fcall`` per exchange instead of N reads + M writes.
"""

import copy
from dataclasses import dataclass, field

from repro.errors import (
    AlreadyExistsError,
    ConfigurationError,
    DXGError,
    ExpressionError,
    NotFoundError,
)
from repro.core.dxg.functions import standard_functions
from repro.core.dxg.planner import plan as build_plan
from repro.obs.context import bind_generator, current_context
from repro.store.cow import is_frozen
from repro.util.paths import get_path, set_path


@dataclass
class ExecutorOptions:
    """Tunables for the ablation benchmarks."""

    consolidate: bool = True  # one patch per target object per pass
    refresh_reads: bool = True  # GET sources per exchange vs informer cache
    trust_cache_for_missing: bool = False  # skip GETs of never-seen objects
    transactional: bool = False  # commit each pass as ONE atomic txn
    max_passes: int = 8

    def __post_init__(self):
        if self.max_passes < 1:
            raise ConfigurationError("max_passes must be >= 1")


@dataclass
class ExchangeStats:
    """Counters for one ``exchange`` invocation (and cumulative totals)."""

    passes: int = 0
    reads: int = 0
    writes: int = 0
    creates: int = 0
    fields_written: int = 0
    skipped: int = 0

    def merge(self, other):
        self.passes += other.passes
        self.reads += other.reads
        self.writes += other.writes
        self.creates += other.creates
        self.fields_written += other.fields_written
        self.skipped += other.skipped


_MISSING = object()

#: Cache slot for global (singleton) aliases: one shared object, not
#: per correlation id.
GLOBAL_CID = "__global__"


class DXGExecutor:
    """Evaluates one DXG spec against bound store handles."""

    def __init__(self, env, spec, handles, functions=None, options=None,
                 creatable_targets=None, tracer=None):
        self.env = env
        self.spec = spec
        self.handles = dict(handles)
        missing = set(spec.inputs) - set(self.handles)
        if missing:
            raise ConfigurationError(
                f"no store handle bound for alias(es) {sorted(missing)}"
            )
        self.functions = functions if functions is not None else standard_functions()
        self.options = options or ExecutorOptions()
        self.plan = build_plan(spec, creatable_targets=creatable_targets)
        self.tracer = tracer
        self.cache = {}  # (alias, kind, cid) -> data dict
        self.totals = ExchangeStats()
        # Everything the DXG reads or writes, per (alias, kind).
        self._involved = self._involved_objects()

    def _involved_objects(self):
        involved = set()
        for a in self.spec.assignments:
            involved.add((a.target_alias, a.target_kind))
            for ref in a.sources:
                involved.add((ref.alias, ref.kind))
        return sorted(involved)

    # -- cache (informer) -----------------------------------------------------

    @staticmethod
    def object_key(kind, cid):
        return f"{kind}/{cid}" if kind else cid

    def is_global(self, alias):
        return alias in self.spec.globals_

    def _slot(self, alias, kind, cid):
        """Cache key: global aliases share one slot across all cids."""
        return (alias, kind, GLOBAL_CID if self.is_global(alias) else cid)

    def _read_key(self, alias, kind, cid):
        if self.is_global(alias):
            return self.spec.globals_[alias]
        return self.object_key(kind, cid)

    @staticmethod
    def split_key(key):
        """Inverse of :meth:`object_key`: -> (kind, cid)."""
        if "/" in key:
            kind, cid = key.split("/", 1)
            return kind, cid
        return "", key

    def update_cache(self, alias, kind, cid, data):
        slot = self._slot(alias, kind, cid)
        if data is None:
            self.cache.pop(slot, None)
        elif is_frozen(data):
            # Zero-copy plane: watch events hand us immutable views, so
            # the cache can alias them -- nothing downstream mutates it
            # (computation works on a thawed copy of the target only).
            self.cache[slot] = data
        else:
            self.cache[slot] = copy.deepcopy(data)

    # -- evaluation core (pure; shared by remote and push-down paths) ----------

    def _context_for(self, objects):
        """Build the expression context from ``{(alias, kind): data|None}``.

        Per alias: the default-kind object's fields appear at top level,
        named kinds appear under their kind name.  A named kind must not
        collide with a default-kind field name.
        """
        context = {}
        for (alias, kind), data in objects.items():
            slot = context.setdefault(alias, {})
            if data is None:
                continue
            if kind:
                slot[kind] = data
            else:
                for key, value in data.items():
                    if key in slot and isinstance(slot[key], dict):
                        continue  # a named kind already claimed this name
                    slot[key] = value
        return context

    def _compute_step(self, step, context, target_data, objects, cid=None):
        """Evaluate one step's assignments; returns (values, skipped).

        ``target_data`` is the target object's current data ({} when the
        object does not exist yet).  Values computed earlier in the same
        step are visible to later ``this.`` reads (intra-step chaining).
        The correlation id is exposed to expressions as ``cid``.
        """
        values = {}
        skipped = 0
        working = copy.deepcopy(target_data)
        table = self.functions.table()
        for assignment in step.assignments:
            # Skip if any wholly-missing source object is referenced.
            if any(
                objects.get((ref.alias, ref.kind), _MISSING) in (None, _MISSING)
                for ref in assignment.sources
            ):
                skipped += 1
                continue
            scope = dict(context)
            scope["this"] = working
            if cid is not None:
                scope["cid"] = cid
            try:
                value = assignment.expression.evaluate(scope, table)
            except ExpressionError:
                skipped += 1
                continue
            if value is None:
                skipped += 1
                continue
            values[assignment.field] = value
            set_path(working, assignment.field, value)
        return values, skipped

    @staticmethod
    def _changed_fields(current, values):
        return {
            path: value
            for path, value in values.items()
            if get_path(current, path, default=_MISSING) != value
        }

    @staticmethod
    def _nested(values):
        out = {}
        for path, value in values.items():
            set_path(out, path, value)
        return out

    # -- the exchange (remote path) ----------------------------------------------

    def exchange(self, cid, ctx=None):
        """Run the data exchange for one correlation id (simnet process).

        With ``ctx``, the whole fixpoint runs with that causal context
        ambient, so every read and write the exchange performs chains
        onto the integrator's exchange span.
        """
        return self.env.process(self._exchange(cid, ctx=ctx))

    def _exchange(self, cid, ctx=None):
        def bound(gen):
            # The fixpoint's reads/writes happen in sub-processes; each
            # needs the causal context re-armed around its resumptions.
            return bind_generator(gen, ctx) if ctx is not None else gen

        stats = ExchangeStats()
        for _pass in range(self.options.max_passes):
            stats.passes += 1
            objects = yield self.env.process(bound(self._gather(cid, stats)))
            wrote = yield self.env.process(
                bound(self._run_steps(cid, objects, stats))
            )
            if not wrote:
                break
        else:
            raise DXGError(
                f"exchange for {cid!r} did not quiesce in "
                f"{self.options.max_passes} passes"
            )
        self.totals.merge(stats)
        if self.tracer is not None:
            self.tracer.record(
                "integrator", "exchange", cid=cid,
                writes=stats.writes, passes=stats.passes,
            )
        return stats

    def _gather(self, cid, stats):
        objects = {}
        for alias, kind in self._involved:
            slot = self._slot(alias, kind, cid)
            if self.options.refresh_reads:
                if (
                    self.options.trust_cache_for_missing
                    and slot not in self.cache
                ):
                    # Informer-style: the watch stream has never shown
                    # this object; do not pay a round trip to learn 404.
                    objects[(alias, kind)] = None
                    continue
                handle = self.handles[alias]
                started = self.env.now
                try:
                    view = yield handle.get(self._read_key(alias, kind, cid))
                    stats.reads += 1
                    objects[(alias, kind)] = view["data"]
                    self.cache[slot] = (
                        view["data"] if is_frozen(view["data"])
                        else copy.deepcopy(view["data"])
                    )
                except NotFoundError:
                    stats.reads += 1
                    objects[(alias, kind)] = None
                if self.tracer is not None:
                    self.tracer.record(
                        "exchange", "read.done", alias=alias, cid=cid,
                        duration=self.env.now - started,
                    )
            else:
                objects[(alias, kind)] = self.cache.get(slot)
        return objects

    def _run_steps(self, cid, objects, stats):
        if self.options.transactional:
            work = self._run_steps_txn(cid, objects, stats)
            ctx = current_context()  # armed by _exchange's bound() wrapper
            if ctx is not None:
                work = bind_generator(work, ctx)
            wrote = yield self.env.process(work)
            return wrote
        wrote = False
        for step in self.plan.steps:
            current = objects.get((step.alias, step.kind))
            exists = current is not None
            context = self._context_for(objects)
            values, skipped = self._compute_step(
                step, context, current if exists else {}, objects, cid=cid
            )
            stats.skipped += skipped
            changed = self._changed_fields(current or {}, values)
            if not changed:
                continue
            handle = self.handles[step.alias]
            key = self.object_key(step.kind, cid)
            if not exists:
                if not step.creatable:
                    continue  # the owning service has not created it yet
                try:
                    view = yield handle.create(key, self._nested(changed))
                except AlreadyExistsError:
                    view = yield handle.patch(key, self._nested(changed))
                stats.creates += 1
                stats.writes += 1
                stats.fields_written += len(changed)
            elif self.options.consolidate:
                view = yield handle.patch(key, self._nested(changed))
                stats.writes += 1
                stats.fields_written += len(changed)
            else:
                view = None
                for path, value in changed.items():
                    view = yield handle.patch(key, self._nested({path: value}))
                    stats.writes += 1
                    stats.fields_written += 1
            objects[(step.alias, step.kind)] = view["data"]
            self.update_cache(step.alias, step.kind, cid, view["data"])
            wrote = True
        return wrote

    def _run_steps_txn(self, cid, objects, stats):
        """Atomic variant: one pass's writes commit as ONE transaction.

        Composition-level atomicity (paper §5's "run-time primitives such
        as transactions"): observers never see a shipment without its
        matching charge.  Requires every handle to live on the same Data
        Exchange (they do: a Cast is bound to one DE).
        """
        import copy as _copy

        first_handle = next(iter(self.handles.values()))
        txn = first_handle.de.transaction(
            first_handle.principal, location=first_handle.client.location
        )
        planned = []  # (step, changed, exists)
        working = {k: _copy.deepcopy(v) for k, v in objects.items()}
        for step in self.plan.steps:
            current = working.get((step.alias, step.kind))
            exists = current is not None
            context = self._context_for(working)
            values, skipped = self._compute_step(
                step, context, current if exists else {}, working, cid=cid
            )
            stats.skipped += skipped
            changed = self._changed_fields(current or {}, values)
            if not changed:
                continue
            if not exists and not step.creatable:
                continue
            handle = self.handles[step.alias]
            key = self.object_key(step.kind, cid)
            nested = self._nested(changed)
            if not exists:
                txn.create(handle.store_name, key, nested)
                stats.creates += 1
            else:
                txn.patch(handle.store_name, key, nested)
            stats.fields_written += len(changed)
            # Make this step's results visible to later steps in the pass.
            base = _copy.deepcopy(current) if exists else {}
            for path, value in changed.items():
                set_path(base, path, value)
            working[(step.alias, step.kind)] = base
            planned.append((step, key))
        if not planned:
            return False
        views = yield txn.commit()
        stats.writes += 1  # one atomic commit
        for (step, _key), view in zip(planned, views):
            data = view["data"] if view else None
            objects[(step.alias, step.kind)] = data
            self.update_cache(step.alias, step.kind, cid, data)
        return True

    # -- push-down path --------------------------------------------------------------

    def as_udf(self, key_prefixes):
        """Package this DXG as a server-side function.

        ``key_prefixes`` maps alias -> the store's key prefix on the
        shared backend.  The returned ``fn(ctx, cid)`` runs the same
        fixpoint evaluation using direct (local) store access; the Cast
        integrator registers it and issues one ``fcall`` per exchange.
        """
        prefixes = dict(key_prefixes)
        missing = set(self.spec.inputs) - set(prefixes)
        if missing:
            raise ConfigurationError(
                f"no key prefix for alias(es) {sorted(missing)}"
            )

        def dxg_udf(ctx, cid):
            stats = {"passes": 0, "writes": 0, "reads": 0}
            for _pass in range(self.options.max_passes):
                stats["passes"] += 1
                objects = {}
                for alias, kind in self._involved:
                    key = prefixes[alias] + self._read_key(alias, kind, cid)
                    try:
                        objects[(alias, kind)] = ctx.get(key)["data"]
                    except NotFoundError:
                        objects[(alias, kind)] = None
                    stats["reads"] += 1
                wrote = False
                for step in self.plan.steps:
                    current = objects.get((step.alias, step.kind))
                    exists = current is not None
                    context = self._context_for(objects)
                    values, _skipped = self._compute_step(
                        step, context, current if exists else {}, objects, cid=cid
                    )
                    changed = self._changed_fields(current or {}, values)
                    if not changed:
                        continue
                    key = prefixes[step.alias] + self.object_key(step.kind, cid)
                    if not exists:
                        if not step.creatable:
                            continue
                        view = ctx.create(key, self._nested(changed))
                    else:
                        view = ctx.patch(key, self._nested(changed))
                    objects[(step.alias, step.kind)] = view["data"]
                    stats["writes"] += 1
                    wrote = True
                if not wrote:
                    break
            return stats

        return dxg_udf

    @property
    def udf_cost(self):
        """Simulated CPU time of one pushed-down exchange evaluation."""
        from repro.config import UDF_COST_PER_ASSIGNMENT

        return UDF_COST_PER_ASSIGNMENT * max(1, len(self.spec.assignments))
