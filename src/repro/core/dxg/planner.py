"""Execution planning for DXG evaluation.

The planner turns a spec + dependency graph into an ordered list of
*write steps*, one per target object ``(alias, kind)``, such that steps
appear in dependency order wherever the group-level graph is acyclic
(groups that depend on each other cyclically -- e.g. Checkout and
Shipping mutually exchanging fields -- stay in one strongly connected
component and rely on the executor's fixpoint loop).

The **consolidation** optimization (paper §3.3: "integrators can
consolidate the state processing logic by combining multiple state
processing operations into fewer and more efficient ones") falls out of
this structure: a consolidated executor issues ONE patch per step per
pass, instead of one write per assignment.
"""

from dataclasses import dataclass, field

from repro.core.dxg.graph import DependencyGraph


@dataclass
class WriteStep:
    """All assignments that land in one target object."""

    alias: str
    kind: str
    assignments: list = field(default_factory=list)
    creatable: bool = False

    @property
    def target(self):
        return (self.alias, self.kind)

    def describe(self):
        kind = f".{self.kind}" if self.kind else ""
        mode = "create/patch" if self.creatable else "patch-only"
        return f"{self.alias}{kind} [{mode}] <- {len(self.assignments)} field(s)"


@dataclass
class ExecutionPlan:
    """Ordered write steps plus planning metadata."""

    steps: list = field(default_factory=list)
    group_cycles: list = field(default_factory=list)  # SCCs with >1 group

    @property
    def write_ops_consolidated(self):
        """Write operations per full pass with consolidation on."""
        return len(self.steps)

    @property
    def write_ops_unconsolidated(self):
        """Write operations per full pass with consolidation off."""
        return sum(len(s.assignments) for s in self.steps)

    def step_for(self, alias, kind):
        for step in self.steps:
            if step.target == (alias, kind):
                return step
        return None

    def describe(self):
        lines = [f"plan: {len(self.steps)} step(s)"]
        lines += [f"  {i}. {s.describe()}" for i, s in enumerate(self.steps)]
        if self.group_cycles:
            lines.append(f"  (fixpoint groups: {self.group_cycles})")
        return "\n".join(lines)


def plan(spec, creatable_targets=None):
    """Build the :class:`ExecutionPlan` for ``spec``.

    ``creatable_targets``: explicit set of target spellings (``"S"`` /
    ``"C.order"``) the integrator may create objects for.  When None, a
    target is creatable iff none of its assignments read ``this.`` --
    filling fields of an object that must already exist implies the
    object is owned by its service, not by the integrator.
    """
    graph = DependencyGraph.from_spec(spec)
    groups = {}
    for assignment in spec.assignments:
        key = (assignment.target_alias, assignment.target_kind)
        groups.setdefault(key, []).append(assignment)

    # Group-level dependency edges.
    group_edges = {key: set() for key in groups}
    for assignment in spec.assignments:
        target_group = (assignment.target_alias, assignment.target_kind)
        for ref in assignment.sources:
            source_group = (ref.alias, ref.kind)
            if source_group in groups and source_group != target_group:
                group_edges[target_group].add(source_group)

    order, cycles = _condensation_order(set(groups), group_edges)

    # Order assignments inside each group by the field-level topology.
    try:
        field_order = {node: i for i, node in enumerate(graph.topological_order())}
    except ValueError:
        field_order = {}  # cyclic at field level is rejected by analysis

    steps = []
    for key in order:
        alias, kind = key
        assignments = sorted(
            groups[key], key=lambda a: field_order.get(a.target_node, 0)
        )
        steps.append(
            WriteStep(
                alias=alias,
                kind=kind,
                assignments=assignments,
                creatable=_is_creatable(key, assignments, creatable_targets),
            )
        )
    return ExecutionPlan(steps=steps, group_cycles=cycles)


def _is_creatable(key, assignments, creatable_targets):
    if creatable_targets is not None:
        alias, kind = key
        spelling = f"{alias}.{kind}" if kind else alias
        return spelling in set(creatable_targets)
    return not any(a.uses_this for a in assignments)


def _condensation_order(nodes, edges):
    """Topological order of SCCs (Tarjan), dependencies first.

    Returns ``(ordered_nodes, multi_node_sccs)``.  Nodes inside one SCC
    keep a deterministic (sorted) relative order.
    """
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []

    def strongconnect(node):
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for dep in sorted(edges.get(node, ())):
            if dep not in index:
                strongconnect(dep)
                lowlink[node] = min(lowlink[node], lowlink[dep])
            elif dep in on_stack:
                lowlink[node] = min(lowlink[node], index[dep])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            sccs.append(sorted(component))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)

    # Tarjan emits SCCs in reverse topological order of the condensation
    # when edges point at dependencies; since our edges point FROM a group
    # TO the groups it depends on, emission order is dependencies-first.
    ordered = [node for scc in sccs for node in scc]
    cycles = [tuple(scc) for scc in sccs if len(scc) > 1]
    return ordered, cycles
