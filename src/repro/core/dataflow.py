"""Fluent builder for Sync dataflow pipelines.

"the Sync integrator offers dataflow operators like filter, rename, sort,
and aggregation functions" (paper §3.2).  A :class:`Pipeline` builds the
operator-spec list executed by the Log store's query engine
(the shared core, :mod:`repro.query`)::

    ops = (Pipeline()
           .filter("triggered == True")
           .rename("triggered", "motion")
           .cut("motion", "_ts")
           .build())
"""

from repro.query.core import compile_ops


class Pipeline:
    """Accumulates operator specs; immutable build output."""

    def __init__(self, ops=None):
        self._ops = list(ops or [])

    def _with(self, spec):
        return Pipeline(self._ops + [spec])

    def filter(self, expr):
        """Keep records where ``expr`` evaluates truthy."""
        return self._with({"op": "filter", "expr": expr})

    def rename(self, src, dst):
        """Rename field ``src`` to ``dst``."""
        return self._with({"op": "rename", "from": src, "to": dst})

    def cut(self, *fields):
        """Keep only the named fields."""
        return self._with({"op": "cut", "fields": list(fields)})

    def drop(self, *fields):
        """Remove the named fields."""
        return self._with({"op": "drop", "fields": list(fields)})

    def derive(self, field, expr):
        """Add/replace ``field`` computed from ``expr``."""
        return self._with({"op": "derive", "field": field, "expr": expr})

    def sort(self, by, reverse=False):
        return self._with({"op": "sort", "by": by, "reverse": reverse})

    def head(self, count):
        return self._with({"op": "head", "count": count})

    def tail(self, count):
        return self._with({"op": "tail", "count": count})

    def distinct(self, field):
        return self._with({"op": "distinct", "field": field})

    def agg(self, by=None, **aggs):
        """Aggregate: ``agg(by=["room"], total="sum(kwh)")``."""
        spec = {"op": "agg", "aggs": dict(aggs)}
        if by:
            spec["by"] = list(by)
        return self._with(spec)

    def build(self):
        """The operator-spec list (validated by compiling once)."""
        compile_ops(self._ops)
        return list(self._ops)

    def __len__(self):
        return len(self._ops)

    def __repr__(self):
        return f"<Pipeline {self._ops!r}>"
