"""Reconcilers: a knactor's control loop over its own data store.

"The reconciler is a code module that interacts with the knactor's data
store(s) using the state access methods provided by the DE.  It responds
to state updates from the data store and initiates corresponding actions."
(paper §3.2)

The loop is **level-triggered** with a per-key work queue, like Kubernetes
controllers: watch events mark a key dirty; a single worker drains the
queue, re-reading current state and calling ``reconcile``.  Conflicting
writes (optimistic-concurrency failures) requeue the key with backoff.

Crucially -- and this is the Knactor pattern -- a reconciler only ever
touches *its own* store handles.  It has no client stubs, no topics, no
knowledge of other services.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError, ConflictError, NotFoundError


class ReconcilerContext:
    """What a reconciler may touch: its knactor's own store handles."""

    def __init__(self, env, knactor_name, handles, tracer=None):
        self.env = env
        self.knactor_name = knactor_name
        self.stores = dict(handles)  # local_name -> handle
        self.tracer = tracer

    @property
    def store(self):
        """The default Object store handle."""
        if "default" in self.stores:
            return self.stores["default"]
        if len(self.stores) == 1:
            return next(iter(self.stores.values()))
        raise ConfigurationError(
            f"{self.knactor_name}: ambiguous default store "
            f"(have {sorted(self.stores)})"
        )

    def log(self, local_name="log"):
        """A named Log store handle."""
        return self.stores[local_name]

    def trace(self, name, **attrs):
        if self.tracer is not None:
            self.tracer.record("reconciler", name, knactor=self.knactor_name, **attrs)


class Reconciler:
    """Base class: subclass and override :meth:`reconcile`.

    Class attributes subclasses may tune:

    - ``service_time``: simulated local processing time per reconcile call
      (seconds of virtual time),
    - ``max_retries`` / ``backoff``: conflict-retry policy,
    - ``log_subscriptions``: local names of Log stores whose appended
      batches should be delivered to :meth:`on_log_batch`.
    """

    service_time = 0.0
    max_retries = 5
    backoff = 0.005
    log_subscriptions = ()

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self.ctx = None
        self._queue = OrderedDict()  # key -> latest event type (dedup, FIFO)
        self._log_cursors = {}  # local_name -> next unseen _seq
        self._wakeup = None
        self._running = False
        self.reconcile_count = 0
        self.error_count = 0

    # -- subclass surface -----------------------------------------------------

    def setup(self, ctx):
        """One-time initialization (optional).  May be a generator."""

    def reconcile(self, ctx, key, obj):
        """Handle one (possibly coalesced) change to ``key``.

        ``obj`` is the object's current data, or None if it was deleted.
        May be a generator performing store operations via ``yield``.
        """

    def on_log_batch(self, ctx, local_name, records):
        """Handle a batch appended to a subscribed Log store (optional)."""

    def requeue(self, key):
        """Re-enqueue a key for another reconcile pass.

        For reconcilers that defer work (e.g. a downstream dependency was
        unavailable): watch events only fire on state *changes*, so a
        reconcile that bails out must requeue explicitly to be retried.
        """
        self._queue[key] = "REQUEUED"
        self._kick()

    # -- wiring (called by the Knactor/runtime) ----------------------------------

    def attach(self, ctx):
        self.ctx = ctx

    def start(self):
        if self.ctx is None:
            raise ConfigurationError(f"reconciler {self.name!r} is not attached")
        if self._running:
            return
        self._running = True
        env = self.ctx.env
        # Watch the default store (if the knactor has an Object store).
        self._watch_default()
        for local_name in self.log_subscriptions:
            self._log_cursors.setdefault(local_name, 0)
            self._watch_log(local_name)
        env.process(self._run_setup(env))
        self._worker = env.process(self._work_loop(env))

    def _watch_log(self, local_name):
        handle = self.ctx.stores[local_name]
        handle.watch(
            self._make_log_handler(local_name),
            on_close=lambda: self._on_log_watch_lost(local_name),
        )

    def _on_log_watch_lost(self, local_name):
        """Log failover: re-subscribe and replay from the seq cursor."""
        if not self._running:
            return
        self.ctx.trace("log-watch-lost", store=local_name)
        self._watch_log(local_name)
        self.ctx.env.process(self._log_catch_up(self.ctx.env, local_name))

    def _log_catch_up(self, env, local_name):
        handle = self.ctx.stores[local_name]
        records = yield handle.query(since_seq=self._log_cursors[local_name])
        if not records:
            return
        self._advance_log_cursor(local_name, records)
        result = self.on_log_batch(self.ctx, local_name, records)
        if hasattr(result, "send"):
            yield env.process(result)

    def _advance_log_cursor(self, local_name, records):
        top = max((r["_seq"] + 1 for r in records if "_seq" in r), default=0)
        if top > self._log_cursors.get(local_name, 0):
            self._log_cursors[local_name] = top

    def _watch_default(self):
        default = self.ctx.stores.get("default")
        if default is not None:
            default.watch(self._on_event, on_close=self._on_watch_lost)

    def _on_watch_lost(self):
        """Store failover: re-watch and resync (informer re-list)."""
        if not self._running:
            return
        self.ctx.trace("watch-lost", store=self.name)
        self._watch_default()
        self.ctx.env.process(self._resync(self.ctx.env))

    def _resync(self, env):
        default = self.ctx.stores.get("default")
        if default is None:
            return
        views = yield default.list()
        for view in views:
            self._queue.setdefault(view["key"], "RESYNC")
        self._kick()

    def stop(self):
        self._running = False
        self._kick()

    def _run_setup(self, env):
        result = self.setup(self.ctx)
        if hasattr(result, "send"):
            yield env.process(result)
        else:
            yield env.timeout(0)

    # -- event intake ---------------------------------------------------------------

    def _on_event(self, event):
        self.ctx.trace(
            "observed", store=self.name, key=event.key, type=event.type,
        )
        self._queue[event.key] = event.type
        self._queue.move_to_end(event.key)
        self._kick()

    def _make_log_handler(self, local_name):
        def handler(event):
            records = event.object["records"]
            self.ctx.trace("log-batch", store=local_name, count=len(records))
            self._advance_log_cursor(local_name, records)
            result = self.on_log_batch(self.ctx, local_name, records)
            if hasattr(result, "send"):
                self.ctx.env.process(result)

        return handler

    def _kick(self):
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # -- the work loop ----------------------------------------------------------------

    def _work_loop(self, env):
        while self._running:
            if not self._queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            key, _event_type = self._queue.popitem(last=False)
            yield env.process(self._reconcile_once(env, key))

    def _reconcile_once(self, env, key):
        started = env.now
        for attempt in range(self.max_retries + 1):
            try:
                obj = None
                default = self.ctx.stores.get("default")
                if default is not None:
                    try:
                        view = yield default.get(key)
                        obj = view["data"]
                    except NotFoundError:
                        obj = None
                if self.service_time > 0:
                    yield env.timeout(self.service_time)
                result = self.reconcile(self.ctx, key, obj)
                if hasattr(result, "send"):
                    yield env.process(result)
                self.reconcile_count += 1
                self.ctx.trace(
                    "reconciled", key=key, duration=env.now - started,
                    attempts=attempt + 1,
                )
                return
            except ConflictError:
                self.error_count += 1
                yield env.timeout(self.backoff * (2**attempt))
        # Retries exhausted: requeue at the back and move on.
        self._queue.setdefault(key, "RETRY")
