"""Reconcilers: a knactor's control loop over its own data store.

"The reconciler is a code module that interacts with the knactor's data
store(s) using the state access methods provided by the DE.  It responds
to state updates from the data store and initiates corresponding actions."
(paper §3.2)

The loop is **level-triggered** with a per-key work queue, like Kubernetes
controllers: watch events mark a key dirty; a single worker drains the
queue, re-reading current state and calling ``reconcile``.  Conflicting
writes (optimistic-concurrency failures) retry with seeded-jitter
exponential backoff; transient store unavailability is ridden out the
same way.  A key whose reconcile keeps failing for non-transient reasons
is *dead-lettered* after a bounded number of requeues
(:mod:`repro.faults.dlq`) so one poison object never stalls the rest of
the keyspace.  Defaults for the retry/requeue knobs live in
:mod:`repro.config`.

Crucially -- and this is the Knactor pattern -- a reconciler only ever
touches *its own* store handles.  It has no client stubs, no topics, no
knowledge of other services.
"""

import random
import zlib
from collections import OrderedDict

from repro import config
from repro.errors import (
    ConfigurationError,
    ConflictError,
    NotFoundError,
    OverloadedError,
    ReproError,
    UnavailableError,
)
from repro.faults.dlq import DeadLetterQueue
from repro.flow.policy import BLOCK, SHED_OLDEST, check_overflow
from repro.obs.context import span_process


class ReconcilerContext:
    """What a reconciler may touch: its knactor's own store handles."""

    def __init__(self, env, knactor_name, handles, tracer=None):
        self.env = env
        self.knactor_name = knactor_name
        self.stores = dict(handles)  # local_name -> handle
        self.tracer = tracer

    @property
    def store(self):
        """The default Object store handle."""
        if "default" in self.stores:
            return self.stores["default"]
        if len(self.stores) == 1:
            return next(iter(self.stores.values()))
        raise ConfigurationError(
            f"{self.knactor_name}: ambiguous default store "
            f"(have {sorted(self.stores)})"
        )

    def log(self, local_name="log"):
        """A named Log store handle."""
        return self.stores[local_name]

    def trace(self, name, **attrs):
        if self.tracer is not None:
            self.tracer.record("reconciler", name, knactor=self.knactor_name, **attrs)


class Reconciler:
    """Base class: subclass and override :meth:`reconcile`.

    Class attributes subclasses may tune (defaults from :mod:`repro.config`;
    constructor keyword arguments override either):

    - ``service_time``: simulated local processing time per reconcile call
      (seconds of virtual time),
    - ``max_retries`` / ``backoff`` / ``backoff_jitter``: transient-retry
      policy (conflicts and unavailability) within one reconcile pass,
    - ``max_requeues``: failed passes a key gets before dead-lettering,
    - ``max_queue`` / ``queue_overflow``: bound on the dirty-key work
      queue (``None`` = unbounded).  When a new key arrives at a full
      queue, the overflow policy decides which key is shed; shed keys
      land in the dead-letter queue so resyncs/operators can replay
      them -- level triggering makes a shed safe, never silent.
    - ``log_subscriptions``: local names of Log stores whose appended
      batches should be delivered to :meth:`on_log_batch`.
    """

    service_time = 0.0
    max_retries = config.RECONCILER_MAX_RETRIES
    backoff = config.RECONCILER_BACKOFF
    backoff_jitter = config.RECONCILER_BACKOFF_JITTER
    max_requeues = config.RECONCILER_MAX_REQUEUES
    max_queue = None
    queue_overflow = SHED_OLDEST
    log_subscriptions = ()

    def __init__(self, name=None, *, max_retries=None, backoff=None,
                 backoff_jitter=None, max_requeues=None, dead_letters=None,
                 max_queue=None, queue_overflow=None):
        self.name = name or type(self).__name__
        if max_retries is not None:
            self.max_retries = int(max_retries)
        if backoff is not None:
            self.backoff = float(backoff)
        if backoff_jitter is not None:
            self.backoff_jitter = float(backoff_jitter)
        if max_requeues is not None:
            self.max_requeues = int(max_requeues)
        if max_queue is not None:
            self.max_queue = int(max_queue)
        if queue_overflow is not None:
            self.queue_overflow = queue_overflow
        check_overflow(self.queue_overflow)
        self.dead_letters = (
            dead_letters if dead_letters is not None
            else DeadLetterQueue(name=self.name)
        )
        self.ctx = None
        self._queue = OrderedDict()  # key -> latest event type (dedup, FIFO)
        self._pending_ctx = {}  # key -> causal ctx of the latest commit
        self._log_cursors = {}  # local_name -> next unseen _seq
        self._wakeup = None
        self._running = False
        self._watch_handles = []
        self._failures = {}  # key -> consecutive failed passes
        # Seeded per-name: deterministic, yet different reconcilers get
        # decorrelated backoff (no synchronized retry storms).
        self._rng = random.Random(zlib.crc32(self.name.encode()))
        self.reconcile_count = 0
        self.error_count = 0
        self.unavailable_count = 0
        self.kill_count = 0
        self.shed_count = 0
        self.queue_peak = 0

    # -- subclass surface -----------------------------------------------------

    def setup(self, ctx):
        """One-time initialization (optional).  May be a generator."""

    def reconcile(self, ctx, key, obj):
        """Handle one (possibly coalesced) change to ``key``.

        ``obj`` is the object's current data, or None if it was deleted.
        May be a generator performing store operations via ``yield``.
        """

    def on_log_batch(self, ctx, local_name, records):
        """Handle a batch appended to a subscribed Log store (optional)."""

    def requeue(self, key):
        """Re-enqueue a key for another reconcile pass.

        For reconcilers that defer work (e.g. a downstream dependency was
        unavailable): watch events only fire on state *changes*, so a
        reconcile that bails out must requeue explicitly to be retried.
        """
        self._mark_dirty(key, "REQUEUED")
        self._kick()

    # -- wiring (called by the Knactor/runtime) ----------------------------------

    def attach(self, ctx):
        self.ctx = ctx

    def start(self):
        if self.ctx is None:
            raise ConfigurationError(f"reconciler {self.name!r} is not attached")
        if self._running:
            return
        self._running = True
        env = self.ctx.env
        # Watch the default store (if the knactor has an Object store).
        self._watch_default()
        for local_name in self.log_subscriptions:
            self._log_cursors.setdefault(local_name, 0)
            self._watch_log(local_name)
        env.process(self._run_setup(env))
        self._worker = env.process(self._work_loop(env))

    def _watch_log(self, local_name):
        handle = self.ctx.stores[local_name]
        self._watch_handles.append(handle.watch(
            self._make_log_handler(local_name),
            on_close=lambda: self._on_log_watch_lost(local_name),
        ))

    def _on_log_watch_lost(self, local_name):
        """Log failover: re-subscribe and replay from the seq cursor."""
        if not self._running:
            return
        self.ctx.trace("log-watch-lost", store=local_name)
        self._watch_log(local_name)
        self.ctx.env.process(self._log_catch_up(self.ctx.env, local_name))

    def _log_catch_up(self, env, local_name):
        handle = self.ctx.stores[local_name]
        records = None
        for attempt in range(100):
            if not self._running:
                return
            try:
                records = yield handle.query(
                    since_seq=self._log_cursors[local_name]
                )
                break
            except UnavailableError:
                self.unavailable_count += 1
                yield env.timeout(self._backoff_delay(attempt))
        if not records:
            return
        self._advance_log_cursor(local_name, records)
        result = self.on_log_batch(self.ctx, local_name, records)
        if hasattr(result, "send"):
            yield env.process(result)

    def _advance_log_cursor(self, local_name, records):
        top = max((r["_seq"] + 1 for r in records if "_seq" in r), default=0)
        if top > self._log_cursors.get(local_name, 0):
            self._log_cursors[local_name] = top

    def _watch_default(self):
        default = self.ctx.stores.get("default")
        if default is not None:
            self._watch_handles.append(
                default.watch(self._on_event, on_close=self._on_watch_lost,
                              batch_handler=self._on_events)
            )

    def _on_watch_lost(self):
        """Store failover: re-watch and resync (informer re-list)."""
        if not self._running:
            return
        self.ctx.trace("watch-lost", store=self.name)
        self._watch_default()
        self.ctx.env.process(self._resync(self.ctx.env))

    def _resync(self, env):
        """Re-list the default store, riding out transient unavailability.

        The re-list itself goes through the (possibly still faulty)
        network, so it retries with capped backoff until the store
        answers or the reconciler stops.
        """
        default = self.ctx.stores.get("default")
        if default is None:
            return
        views = None
        for attempt in range(100):
            if not self._running:
                return
            try:
                views = yield default.list()
                break
            except (UnavailableError, ConflictError):
                self.unavailable_count += 1
                yield env.timeout(self._backoff_delay(attempt))
        if views is None:
            return
        for view in views:
            self._mark_dirty(view["key"], "RESYNC", overwrite=False)
        self._kick()

    def stop(self):
        self._running = False
        self._kick()

    # -- process faults (see repro.faults) ----------------------------------

    def kill(self):
        """Simulate a process crash: connections die, queue state is lost.

        Unlike :meth:`stop`, a kill is expected to be followed by
        :meth:`restart` (e.g. by a supervisor), which resyncs from the
        store -- the level-triggered design makes the lost queue safe.
        """
        if not self._running:
            return
        self._running = False
        self.kill_count += 1
        for watch in self._watch_handles:
            watch.cancel()
        self._watch_handles = []
        self._queue.clear()
        self._failures.clear()
        self._kick()
        if self.ctx is not None:
            self.ctx.trace("killed")

    def restart(self):
        """Restart after :meth:`kill`: re-watch, resync, catch up logs."""
        if self._running:
            return
        if self.ctx is None:
            raise ConfigurationError(
                f"reconciler {self.name!r} is not attached"
            )
        self._running = True
        env = self.ctx.env
        self._watch_default()
        for local_name in self.log_subscriptions:
            self._log_cursors.setdefault(local_name, 0)
            self._watch_log(local_name)
        self._worker = env.process(self._work_loop(env))
        env.process(self._resync(env))
        for local_name in self.log_subscriptions:
            env.process(self._log_catch_up(env, local_name))
        self.ctx.trace("restarted")

    def health(self):
        """Readiness summary surfaced through telemetry."""
        if not self._running:
            return "stopped"
        if len(self.dead_letters) > 0:
            return "degraded"
        return "ready"

    def _run_setup(self, env):
        result = self.setup(self.ctx)
        if hasattr(result, "send"):
            yield env.process(result)
        else:
            yield env.timeout(0)

    # -- event intake ---------------------------------------------------------------

    def _on_event(self, event):
        self._on_events([event])

    def _on_events(self, events):
        """Intake one watch delivery (a single event or a coalesced batch).

        Level-triggered consumption makes batches natural: each event
        marks its key dirty (latest type wins, FIFO order preserved) and
        the worker wakes ONCE for the whole delivery.
        """
        for event in events:
            self.ctx.trace(
                "observed", store=self.name, key=event.key, type=event.type,
            )
            if not self._mark_dirty(event.key, event.type):
                continue
            # Coalescing keeps the LATEST commit's causal context: the
            # reconcile pass acts on the state that commit produced.
            self._pending_ctx[event.key] = getattr(event, "ctx", None)
        self._kick()

    def _mark_dirty(self, key, event_type, overwrite=True):
        """Mark ``key`` dirty under the bounded-queue policy.

        Re-marking an already-dirty key never grows the queue (the dict
        dedups), so the bound only bites on *new* keys.  Returns False
        when the incoming key was shed.
        """
        if key in self._queue:
            if overwrite:
                self._queue[key] = event_type
                self._queue.move_to_end(key)
            return True
        if (self.max_queue is not None
                and len(self._queue) >= self.max_queue
                and self.queue_overflow != BLOCK):
            if self.queue_overflow == SHED_OLDEST:
                old_key, old_type = self._queue.popitem(last=False)
                self._pending_ctx.pop(old_key, None)
                self._shed_key(old_key, old_type)
            else:  # shed_newest / reject: the incoming key is the casualty
                self._shed_key(key, event_type)
                return False
        self._queue[key] = event_type
        self.queue_peak = max(self.queue_peak, len(self._queue))
        return True

    def _shed_key(self, key, event_type):
        """Route one shed dirty-key to the DLQ (replayable, not silent)."""
        self.shed_count += 1
        now = self.ctx.env.now if self.ctx is not None else 0.0
        self.dead_letters.push(
            key,
            OverloadedError(
                f"work queue full ({self.max_queue}); {event_type} shed"
            ),
            attempts=0, time=now, source=self.name,
        )
        if self.ctx is not None:
            self.ctx.trace("shed", key=key, type=event_type)

    def _make_log_handler(self, local_name):
        def handler(event):
            records = event.object["records"]
            self.ctx.trace("log-batch", store=local_name, count=len(records))
            self._advance_log_cursor(local_name, records)
            result = self.on_log_batch(self.ctx, local_name, records)
            if hasattr(result, "send"):
                self.ctx.env.process(result)

        return handler

    def _kick(self):
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # -- the work loop ----------------------------------------------------------------

    def _work_loop(self, env):
        while self._running:
            if not self._queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            key, _event_type = self._queue.popitem(last=False)
            parent = self._pending_ctx.pop(key, None)
            work = self._reconcile_once(env, key)
            if parent is not None and parent.sink is not None:
                # Re-attach: the reconcile span parents off the commit
                # that dirtied the key, and its context is ambient for
                # every store request the pass makes downstream.
                octx = parent.sink.start_span(
                    "reconcile", service=self.name, parent=parent, key=key,
                )
                work = span_process(work, octx)
            yield env.process(work)

    def _backoff_delay(self, attempt):
        """Capped exponential backoff with seeded jitter.

        Jitter matters under contention: several reconcilers conflicting
        on one object with identical fixed backoff retry in lockstep and
        collide again (a synchronized retry storm).
        """
        base = min(1.0, self.backoff * (2 ** min(attempt, 8)))
        if self.backoff_jitter <= 0:
            return base
        spread = min(self.backoff_jitter, 1.0)
        return base * self._rng.uniform(1.0 - spread, 1.0 + spread)

    def _reconcile_once(self, env, key):
        started = env.now
        transient = None
        for attempt in range(self.max_retries + 1):
            try:
                obj = None
                default = self.ctx.stores.get("default")
                if default is not None:
                    try:
                        view = yield default.get(key)
                        obj = view["data"]
                    except NotFoundError:
                        obj = None
                if self.service_time > 0:
                    yield env.timeout(self.service_time)
                result = self.reconcile(self.ctx, key, obj)
                if hasattr(result, "send"):
                    yield env.process(result)
                self.reconcile_count += 1
                self._failures.pop(key, None)
                self.ctx.trace(
                    "reconciled", key=key, duration=env.now - started,
                    attempts=attempt + 1,
                )
                return
            except ConflictError:
                self.error_count += 1
                transient = "conflict"
                yield env.timeout(self._backoff_delay(attempt))
            except UnavailableError:
                self.unavailable_count += 1
                transient = "unavailable"
                yield env.timeout(self._backoff_delay(attempt))
            except ReproError as exc:
                # Non-transient failure: this key is poison for the
                # current reconcile logic.  Park or requeue, never crash
                # the work loop.
                self.error_count += 1
                self._record_failure(env, key, exc)
                return
        # Transient retries exhausted.  Unavailability is the store's
        # fault, not the key's: requeue without counting it against the
        # key (a long outage must not dead-letter the whole keyspace).
        if transient == "unavailable":
            self._mark_dirty(key, "RETRY", overwrite=False)
        else:
            self._record_failure(
                env, key,
                ConflictError(f"{key}: conflict retries exhausted"),
            )

    def _record_failure(self, env, key, exc):
        """Bounded requeue; after ``max_requeues`` failed passes, DLQ."""
        count = self._failures.get(key, 0) + 1
        if count > self.max_requeues:
            self._failures.pop(key, None)
            self.dead_letters.push(
                key, exc, attempts=count, time=env.now, source=self.name
            )
            self.ctx.trace("dead-letter", key=key, error=str(exc))
        else:
            self._failures[key] = count
            self._mark_dirty(key, "RETRY", overwrite=False)
