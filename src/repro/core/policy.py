"""Data-centric policies (paper §2 Problem 3, §3.3).

Two policy families fall out of making data exchanges explicit:

1. **Composition policies** -- expressed *in the DXG itself* as ordinary
   assignments ("conditional composition": ``method = "air" if
   C.order.cost > 1000 else "ground"``).  These need no machinery beyond
   ``Cast.set_assignment`` at run time; this module provides a small
   catalog of reusable expression builders.

2. **Access policies** -- run-time conditions on state access (the
   paper's "H should not access the L during user-defined sleep hours"),
   installed on a DE's access controller.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError


def conditional(field_expr_true, field_expr_false, condition):
    """Expression text for ``A if cond else B`` composition policies."""
    return f"{field_expr_true} if {condition} else {field_expr_false}"


def threshold_route(value_path, threshold, above, below):
    """The paper's shipment policy shape: route by a numeric threshold."""
    return f"{above!r} if {value_path} > {threshold} else {below!r}"


@dataclass(frozen=True)
class TimeWindowCondition:
    """Deny a principal's access to a store during a daily time window.

    Times are hours in ``[0, 24)`` on the virtual clock's day (the clock
    counts seconds; ``seconds_per_hour`` adapts the scale -- simulations
    often compress time).  The window may wrap midnight.
    """

    principal: str
    store: str
    start_hour: float
    end_hour: float
    seconds_per_hour: float = 3600.0
    verbs: frozenset = None  # None = all verbs

    def __post_init__(self):
        if not (0 <= self.start_hour < 24 and 0 <= self.end_hour < 24):
            raise ConfigurationError("hours must be in [0, 24)")
        if self.seconds_per_hour <= 0:
            raise ConfigurationError("seconds_per_hour must be positive")

    def _in_window(self, now):
        hour = (now / self.seconds_per_hour) % 24.0
        if self.start_hour <= self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour

    def __call__(self, principal, store, verb, now):
        """AccessController condition: False denies the access."""
        if principal != self.principal or store != self.store:
            return True
        if self.verbs is not None and verb not in self.verbs:
            return True
        return not self._in_window(now)


def deny_during(de, principal, store, start_hour, end_hour,
                seconds_per_hour=3600.0, verbs=None):
    """Install a sleep-hours-style policy on a Data Exchange.

    Returns the condition object (keep it to describe/remove the policy).
    """
    condition = TimeWindowCondition(
        principal=principal,
        store=store,
        start_hour=start_hour,
        end_hour=end_hour,
        seconds_per_hour=seconds_per_hour,
        verbs=frozenset(verbs) if verbs is not None else None,
    )
    de.acl.add_condition(condition)
    return condition
