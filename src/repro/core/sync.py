"""Sync: the built-in integrator for Log exchanges.

A Sync is configured with one or more :class:`Flow` entries; each flow
watches a source Log store and, on every appended batch, runs a dataflow
pipeline over the new records and loads the result into a target Log
store.  The pipeline can execute at the source (analytics push-down,
the Log DE's native strength) or locally in the integrator -- an
ablation knob.

Example (the paper's smart home, Fig. 4): the House retrieves motion
readings from Motion, and Sync renames ``triggered`` to ``motion`` before
loading into the House's store::

    Sync("home-sync", flows=[
        Flow(source="knactor-motion-log", target="knactor-house-log",
             pipeline=Pipeline().filter("triggered == True")
                                 .rename("triggered", "motion")
                                 .cut("motion")),
    ])
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.integrator import Integrator
from repro.obs.context import bind_generator, current_context, span_process
from repro.query.core import compile_ops


@dataclass
class Flow:
    """One source -> pipeline -> target flow."""

    source: str  # hosted Log store name
    target: str  # hosted Log store name
    pipeline: object = None  # Pipeline or list of op specs
    de: str = "log"
    at_source: bool = True  # run the pipeline in the source store (push-down)

    def ops(self):
        if self.pipeline is None:
            return []
        if hasattr(self.pipeline, "build"):
            return self.pipeline.build()
        return list(self.pipeline)


@dataclass
class _BoundFlow:
    flow: Flow
    source_handle: object
    target_handle: object
    ops: list = field(default_factory=list)
    next_seq: int = 0
    records_moved: int = 0
    batches: int = 0
    watch: object = None


class Sync(Integrator):
    """Dataflow integrator over Log Data Exchanges."""

    #: Simulated integrator CPU per locally-executed pipeline stage per record.
    local_stage_cost = 2e-6

    def __init__(self, name, flows=(), location=None):
        super().__init__(name)
        self._initial_flows = list(flows)
        self.location = location or name
        self._bound = []

    # -- configuration --------------------------------------------------------

    def _on_bind(self):
        self._apply_configuration(self._initial_flows)

    def _apply_configuration(self, flows):
        was_started = self.started
        for bound in self._bound:
            if bound.watch is not None:
                bound.watch.cancel()
        self._bound = []
        for flow in flows:
            if flow.source == flow.target:
                raise ConfigurationError(
                    f"flow source and target are the same store {flow.source!r}"
                )
            de = self.runtime.exchange(flow.de)
            ops = flow.ops()
            compile_ops(ops)  # validate early
            bound = _BoundFlow(
                flow=flow,
                source_handle=de.handle(
                    flow.source, principal=self.name, location=self.location
                ),
                target_handle=de.handle(
                    flow.target, principal=self.name, location=self.location
                ),
                ops=ops,
            )
            self._bound.append(bound)
        if was_started:
            self._wire_watches()
        return f"{len(self._bound)} flow(s)"

    # -- lifecycle ----------------------------------------------------------------

    def _on_start(self):
        self._wire_watches()

    def _on_stop(self):
        for bound in self._bound:
            if bound.watch is not None:
                bound.watch.cancel()
                bound.watch = None

    def _wire_watches(self):
        for bound in self._bound:
            self._wire_one(bound)

    def _wire_one(self, bound):
        if bound.watch is not None:
            bound.watch.cancel()
        bound.watch = bound.source_handle.watch(
            self._make_handler(bound),
            on_close=lambda b=bound: self._on_watch_lost(b),
        )

    def _on_watch_lost(self, bound):
        """Log-store failover: re-subscribe and catch up from the cursor.

        Records loaded while the subscription was down are recovered by
        querying everything at or beyond ``next_seq``.
        """
        if not self.started:
            return
        env = self.runtime.env
        self.runtime.tracer.record(
            "sync", "watch-lost", integrator=self.name, source=bound.flow.source,
        )
        self._wire_one(bound)
        env.process(self._catch_up(env, bound))

    def _catch_up(self, env, bound):
        stats = yield bound.source_handle.stats()
        since, until = bound.next_seq, stats["next_seq"]
        if until <= since:
            return
        bound.next_seq = until
        bound.batches += 1
        records = yield bound.source_handle.query(
            ops=bound.ops, since_seq=since, until_seq=until
        )
        yield env.process(self._deliver(env, bound, records))

    def _make_handler(self, bound):
        def handler(event):
            env = self.runtime.env
            self.runtime.tracer.record(
                "sync", "batch", integrator=self.name,
                source=bound.flow.source,
                count=len(event.object["records"]),
            )
            work = self._move(env, bound, event.object["records"])
            parent = getattr(event, "ctx", None)
            if parent is not None and parent.sink is not None:
                # The load that appended this batch is the causal parent
                # of the flow run that moves it downstream.
                octx = parent.sink.start_span(
                    "sync-flow", service=self.name, parent=parent,
                    source=bound.flow.source, target=bound.flow.target,
                )
                work = span_process(work, octx)
            env.process(work)

        return handler

    def _move(self, env, bound, batch_records):
        bound.batches += 1
        # Claim the sequence range synchronously: concurrent batches must
        # not double-process overlapping records.
        since = bound.next_seq
        until = max(
            (r["_seq"] + 1 for r in batch_records if "_seq" in r),
            default=since,
        )
        bound.next_seq = max(bound.next_seq, until)
        if bound.flow.at_source:
            # Analytics push-down: the pipeline runs in the source store.
            records = yield bound.source_handle.query(
                ops=bound.ops, since_seq=since, until_seq=until
            )
        else:
            # Local execution: transform the delivered batch in-process.
            pipeline = compile_ops(bound.ops)
            cost = self.local_stage_cost * max(1, len(bound.ops)) * len(batch_records)
            if cost > 0:
                yield env.timeout(cost)
            records = pipeline([dict(r) for r in batch_records])
        deliver = self._deliver(env, bound, records)
        ctx = current_context()  # armed by the sync-flow span wrapper
        if ctx is not None:
            deliver = bind_generator(deliver, ctx)
        yield env.process(deliver)

    def _deliver(self, env, bound, records):
        clean = [
            {k: v for k, v in record.items() if not k.startswith("_")}
            for record in records
        ]
        clean = [r for r in clean if r]
        if clean:
            yield bound.target_handle.load(clean)
            bound.records_moved += len(clean)
            self.runtime.tracer.record(
                "sync", "loaded", integrator=self.name,
                target=bound.flow.target, count=len(clean),
            )
        else:
            yield env.timeout(0)

    def status(self):
        base = super().status()
        base["flows"] = [
            {
                "source": b.flow.source,
                "target": b.flow.target,
                "batches": b.batches,
                "records_moved": b.records_moved,
                "at_source": b.flow.at_source,
            }
            for b in self._bound
        ]
        return base
