"""Rollup: a built-in integrator bridging Log and Object exchanges.

The paper's two built-in integrators each specialize in one DE type
("built-in integrators specialized for processing states over a type of
DE and data exchange patterns"): Cast syncs Object stores, Sync moves
Log records.  Rollup covers the third recurring pattern: **aggregate a
Log store into fields of an Object store** -- sensor readings into a
gauge, request logs into a rate, energy records into a running total.

Each :class:`RollupRule` runs a ZQL aggregation over the source pool
whenever a batch lands (optionally restricted to a trailing window) and
patches the result into the target object's fields.
"""

from dataclasses import dataclass, field

from repro.core.integrator import Integrator
from repro.errors import AlreadyExistsError, ConfigurationError
from repro.query.core import compile_ops


@dataclass
class RollupRule:
    """One log -> object aggregation.

    - ``source``: hosted Log store name; ``target``: hosted Object store
      name; ``target_key``: the object to patch (created if absent).
    - ``aggs``: output field -> aggregation spelling (``"sum(kwh)"``).
    - ``where``: optional filter expression over records.
    - ``window``: optional trailing window in seconds of ``_ts`` (None =
      the whole pool).
    """

    source: str
    target: str
    target_key: str
    aggs: dict
    where: str = None
    window: float = None
    log_de: str = "log"
    object_de: str = "object"

    def ops(self, now):
        ops = []
        if self.window is not None:
            ops.append(
                {"op": "filter", "expr": f"_ts >= {now - self.window!r}"}
            )
        if self.where:
            ops.append({"op": "filter", "expr": self.where})
        ops.append({"op": "agg", "aggs": dict(self.aggs)})
        return ops


@dataclass
class _BoundRule:
    rule: RollupRule
    source_handle: object
    target_handle: object
    watch: object = None
    updates: int = 0


class Rollup(Integrator):
    """Log-to-Object aggregation integrator."""

    def __init__(self, name, rules=(), location=None):
        super().__init__(name)
        self._initial_rules = list(rules)
        self.location = location or name
        self._bound = []

    def _on_bind(self):
        self._apply_configuration(self._initial_rules)

    def _apply_configuration(self, rules):
        was_started = self.started
        for bound in self._bound:
            if bound.watch is not None:
                bound.watch.cancel()
        self._bound = []
        for rule in rules:
            if not rule.aggs:
                raise ConfigurationError(
                    f"rollup {rule.source} -> {rule.target} has no aggregations"
                )
            if rule.window is not None and rule.window <= 0:
                raise ConfigurationError("window must be positive")
            compile_ops(rule.ops(now=0.0))  # validate early
            log_de = self.runtime.exchange(rule.log_de)
            object_de = self.runtime.exchange(rule.object_de)
            self._bound.append(
                _BoundRule(
                    rule=rule,
                    source_handle=log_de.handle(
                        rule.source, principal=self.name, location=self.location
                    ),
                    target_handle=object_de.handle(
                        rule.target, principal=self.name, location=self.location
                    ),
                )
            )
        if was_started:
            self._wire()
        return f"{len(self._bound)} rule(s)"

    def _on_start(self):
        self._wire()

    def _on_stop(self):
        for bound in self._bound:
            if bound.watch is not None:
                bound.watch.cancel()
                bound.watch = None

    def _wire(self):
        for bound in self._bound:
            if bound.watch is not None:
                bound.watch.cancel()
            bound.watch = bound.source_handle.watch(self._make_handler(bound))

    def _make_handler(self, bound):
        def handler(_event):
            env = self.runtime.env
            env.process(self._roll(env, bound))

        return handler

    def _roll(self, env, bound):
        rule = bound.rule
        [row] = yield bound.source_handle.query(ops=rule.ops(env.now))
        patch = {out: row.get(out) for out in rule.aggs}
        patch = {k: v for k, v in patch.items() if v is not None}
        if not patch:
            return
        try:
            yield bound.target_handle.patch(rule.target_key, patch)
        except Exception as exc:
            from repro.errors import NotFoundError

            if not isinstance(exc, NotFoundError):
                raise
            try:
                yield bound.target_handle.create(rule.target_key, patch)
            except AlreadyExistsError:
                yield bound.target_handle.patch(rule.target_key, patch)
        bound.updates += 1
        self.runtime.tracer.record(
            "rollup", "updated", integrator=self.name,
            target=rule.target, key=rule.target_key, fields=tuple(patch),
        )

    def status(self):
        base = super().status()
        base["rules"] = [
            {
                "source": b.rule.source,
                "target": f"{b.rule.target}/{b.rule.target_key}",
                "updates": b.updates,
            }
            for b in self._bound
        ]
        return base
