"""The Knactor framework core (the paper's primary contribution).

- :class:`Knactor` -- the service abstraction: a reconciler plus one or
  more data stores hosted on Data Exchanges,
- :class:`Reconciler` -- level-triggered control loop over a knactor's own
  data store(s) (and only its own: composition lives elsewhere),
- :class:`Integrator` / :class:`Cast` / :class:`Sync` -- the composition
  modules that process and sync states *between* stores,
- :class:`KnactorRuntime` -- hosts knactors and integrators on a shared
  simulation environment and wires them to the DEs,
- :mod:`repro.core.dxg` -- the Cast integrator's declarative language,
- :mod:`repro.core.dataflow` -- fluent builder for Sync pipelines,
- :mod:`repro.core.policy` -- data-centric policy helpers,
- :mod:`repro.core.optimizer` -- the §3.3 optimization toggles.
"""

from repro.core.adapter import RpcAdapterReconciler
from repro.core.catalog import Catalog, CompatibilityReport, IntegratorPackage
from repro.core.integrator import Integrator
from repro.core.knactor import Knactor, StoreBinding
from repro.core.reconciler import Reconciler, ReconcilerContext
from repro.core.runtime import KnactorRuntime, create_environment
from repro.core.cast import Cast
from repro.core.rollup import Rollup, RollupRule
from repro.core.sync import Flow, Sync
from repro.core.dataflow import Pipeline
from repro.core.policy import TimeWindowCondition, deny_during
from repro.core.optimizer import OptimizationProfile

__all__ = [
    "Cast",
    "Catalog",
    "CompatibilityReport",
    "Flow",
    "IntegratorPackage",
    "Integrator",
    "Knactor",
    "KnactorRuntime",
    "create_environment",
    "OptimizationProfile",
    "Pipeline",
    "Reconciler",
    "ReconcilerContext",
    "Rollup",
    "RollupRule",
    "RpcAdapterReconciler",
    "StoreBinding",
    "Sync",
    "TimeWindowCondition",
    "deny_during",
]
