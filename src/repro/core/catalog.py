"""A marketplace catalog for reusable integrators (paper §5).

"a marketplace for knactors and integrators could emerge, akin to current
API marketplaces.  In such a marketplace, knactors and integrators,
developed by various individuals or organizations, could be shared and
reused."

What makes this *possible* in the Knactor model is that an integrator's
requirements are pure data: the schema names (and fields) its DXG reads
and writes.  An :class:`IntegratorPackage` publishes a DXG plus the
schema requirements; a :class:`Catalog` answers "which published
integrators can run against THIS Data Exchange?" by checking hosted
schemas — no code inspection, no service coordination.  ``install``
creates the grants and the Cast in one step.
"""

from dataclasses import dataclass, field

from repro.core.cast import Cast
from repro.core.dxg import analyze, parse_dxg, standard_functions
from repro.errors import ConfigurationError, NotFoundError
from repro.schema import SchemaName


@dataclass(frozen=True)
class Requirement:
    """One store an integrator package needs: alias -> schema identity."""

    alias: str
    schema_name: str  # e.g. "OnlineRetail/v1/Shipping/Shipment"

    def matches(self, schema):
        """Same app/service/resource; the version must be compatible.

        Version compatibility is prefix-equality here (v1 == v1); richer
        semver ranges would slot in at this point.
        """
        wanted = SchemaName.parse(self.schema_name)
        have = schema.name
        return (
            wanted.app == have.app
            and wanted.service == have.service
            and wanted.resource == have.resource
            and wanted.version == have.version
        )


@dataclass
class CompatibilityReport:
    """Why a package does or does not fit a Data Exchange."""

    package: str
    compatible: bool
    store_map: dict = field(default_factory=dict)  # alias -> hosted store
    problems: list = field(default_factory=list)

    def describe(self):
        status = "compatible" if self.compatible else "NOT compatible"
        lines = [f"{self.package}: {status}"]
        for alias, store in sorted(self.store_map.items()):
            lines.append(f"  {alias} -> {store}")
        lines.extend(f"  problem: {p}" for p in self.problems)
        return "\n".join(lines)


@dataclass(frozen=True)
class IntegratorPackage:
    """A published, reusable Cast configuration."""

    name: str
    version: str
    description: str
    dxg: str
    author: str = ""

    def spec(self):
        return parse_dxg(self.dxg)

    def requirements(self):
        """Schema requirements derived from the DXG's Input section."""
        spec = self.spec()
        out = []
        for alias, ref in sorted(spec.inputs.items()):
            # Input refs name App/version/Service/store; the schema
            # identity drops the store component and re-adds the resource
            # from whatever is hosted -- so requirements match on
            # app/version/service.
            out.append(Requirement(alias=alias, schema_name=ref))
        return out


class Catalog:
    """The marketplace: publish, search, check, install."""

    def __init__(self):
        self._packages = {}

    def publish(self, package):
        key = (package.name, package.version)
        if key in self._packages:
            raise ConfigurationError(
                f"{package.name}@{package.version} is already published"
            )
        # Validate the DXG parses and is internally sound at publish time.
        report = analyze(package.spec(), functions=standard_functions())
        report.raise_if_invalid()
        self._packages[key] = package
        return package

    def get(self, name, version=None):
        if version is not None:
            try:
                return self._packages[(name, version)]
            except KeyError:
                raise NotFoundError(f"no package {name}@{version}") from None
        versions = sorted(v for (n, v) in self._packages if n == name)
        if not versions:
            raise NotFoundError(f"no package named {name!r}")
        return self._packages[(name, versions[-1])]

    def packages(self):
        return [self._packages[key] for key in sorted(self._packages)]

    # -- compatibility -----------------------------------------------------------

    def check(self, package, de):
        """Can ``package`` run against the stores hosted on ``de``?"""
        report = CompatibilityReport(
            package=f"{package.name}@{package.version}", compatible=True
        )
        spec = package.spec()
        for requirement in package.requirements():
            hosted = self._find_store(de, requirement)
            if hosted is None:
                report.compatible = False
                report.problems.append(
                    f"no hosted store with schema "
                    f"{self._identity(requirement.schema_name)}"
                )
                continue
            report.store_map[requirement.alias] = hosted.name
        if report.compatible:
            schemas = {
                alias: de.schema_for(store)
                for alias, store in report.store_map.items()
            }
            analysis = analyze(
                spec, functions=standard_functions(), schemas=schemas
            )
            if not analysis.ok:
                report.compatible = False
                report.problems.extend(analysis.errors)
        return report

    def compatible_packages(self, de):
        """Every published package that can run against this DE."""
        return [
            (package, report)
            for package in self.packages()
            for report in [self.check(package, de)]
            if report.compatible
        ]

    # -- installation -------------------------------------------------------------

    def install(self, name, runtime, de_name="object", version=None,
                integrator_name=None):
        """Grant + create + register a Cast for a published package."""
        package = self.get(name, version)
        de = runtime.exchange(de_name)
        report = self.check(package, de)
        if not report.compatible:
            raise ConfigurationError(
                f"cannot install {report.package}: "
                + "; ".join(report.problems)
            )
        integrator_name = integrator_name or f"{package.name}-{package.version}"
        for store in report.store_map.values():
            de.grant(integrator_name, store, role="integrator")
        cast = Cast(
            integrator_name, package.dxg, de=de_name,
            store_map=report.store_map,
        )
        runtime.add_integrator(cast)
        return cast

    # -- internals --------------------------------------------------------------------

    @staticmethod
    def _identity(schema_ref):
        name = SchemaName.parse(schema_ref)
        return f"{name.app}/{name.version}/{name.service}"

    def _find_store(self, de, requirement):
        wanted = SchemaName.parse(requirement.schema_name)
        for store_name in de.stores():
            hosted = de.store(store_name)
            have = hosted.schema.name
            if (
                have.app == wanted.app
                and have.service == wanted.service
                and have.version == wanted.version
            ):
                return hosted
        return None
