"""Porting legacy RPC services into the Knactor pattern (paper §5).

"We expect the use of Knactor with existing systems can be facilitated
through the use of proxies or porting mechanisms."

:class:`RpcAdapterReconciler` is that proxy: it gives an *unmodified*
legacy RPC service a data store.  The adapter watches the store; when an
object has all the fields the legacy API needs (and no result yet), it
builds the request from the store state, calls the legacy service, and
writes the response fields back.  From the rest of the application's
perspective the legacy service is now a knactor -- integrators compose
it through state like everything else.

Example: wrapping the legacy ShippingService (gRPC) so the retail Cast
can use it unchanged::

    adapter = RpcAdapterReconciler(
        channel=channel_to_legacy_shipping,
        service="ShippingService",
        method="ShipOrder",
        request_map={"items": "items", "address": "addr", "method": "method"},
        response_map={"id": "tracking_id", "quote.price": "shipping_cost"},
        guard_fields=("addr",),
        done_field="id",
    )
"""

from repro.core.reconciler import Reconciler
from repro.errors import ConfigurationError, RPCStatusError
from repro.util.paths import get_path, set_path


class RpcAdapterReconciler(Reconciler):
    """Bridges one store object kind to one legacy RPC method."""

    #: Retry delay after a failed legacy call (transient errors).
    retry_delay = 0.25
    #: Give up after this many failed calls per object.
    max_call_attempts = 3

    def __init__(
        self,
        channel,
        service,
        method,
        request_map,
        response_map,
        guard_fields=(),
        done_field=None,
        name=None,
    ):
        super().__init__(name or f"rpc-adapter-{service}.{method}")
        if not request_map or not response_map:
            raise ConfigurationError("request_map and response_map are required")
        if done_field is None:
            raise ConfigurationError(
                "done_field is required (marks objects already processed)"
            )
        self.channel = channel
        self.service = service
        self.method = method
        self.request_map = dict(request_map)  # rpc field -> store path
        self.response_map = dict(response_map)  # store path -> rpc field
        self.guard_fields = tuple(guard_fields) or tuple(self.request_map.values())
        self.done_field = done_field
        self.calls_made = 0
        self.failures = []
        self._attempts = {}

    def _ready(self, obj):
        if obj is None:
            return False
        if get_path(obj, self.done_field, default=None) is not None:
            return False  # already processed
        return all(
            get_path(obj, path, default=None) is not None
            for path in self.guard_fields
        )

    def _build_request(self, obj):
        request = {}
        for rpc_field, store_path in self.request_map.items():
            value = get_path(obj, store_path, default=None)
            if value is not None:
                request[rpc_field] = value
        return request

    def reconcile(self, ctx, key, obj):
        if not self._ready(obj):
            return
        attempts = self._attempts.get(key, 0)
        if attempts >= self.max_call_attempts:
            return  # poisoned object; leave it for operators
        self._attempts[key] = attempts + 1
        try:
            response = yield self.channel.call(
                self.service, self.method, self._build_request(obj)
            )
        except RPCStatusError as exc:
            self.failures.append((ctx.env.now, key, exc.code))
            ctx.trace("adapter-call-failed", key=key, code=exc.code)
            yield ctx.env.timeout(self.retry_delay)
            self.requeue(key)
            return
        self.calls_made += 1
        patch = {}
        for store_path, rpc_field in self.response_map.items():
            if rpc_field in response:
                set_path(patch, store_path, response[rpc_field])
        if patch:
            yield ctx.store.patch(key, patch)
        ctx.trace("adapter-call-ok", key=key)
