"""Integrator base class: lifecycle and run-time reconfiguration.

"Integrators, such as Cast and Sync, can be dynamically reconfigured at
run-time to add new composition logic or modify existing configurations.
This avoids service-level code changes, rebuilding, and redeployment for
each composition update." (paper §3.3)

The base class tracks a *generation* counter bumped on every successful
reconfiguration, and a reconfiguration history -- the observable artifact
the composition-cost benchmark counts (a Knactor composition change is one
``reconfigure()`` against a running integrator, zero service rebuilds).
"""

from repro.errors import ConfigurationError


class Integrator:
    """Base class for composition modules."""

    def __init__(self, name):
        if not name:
            raise ConfigurationError("integrator name must be non-empty")
        self.name = name
        self.runtime = None
        self.started = False
        self.generation = 0
        self.reconfigurations = []  # (time, description)

    # -- lifecycle -----------------------------------------------------------

    def bind(self, runtime):
        """Attach to a runtime (resolve stores, run static analysis)."""
        self.runtime = runtime
        self._on_bind()
        return self

    def start(self):
        if self.runtime is None:
            raise ConfigurationError(f"integrator {self.name!r} is not bound")
        if self.started:
            return
        self.started = True
        self._on_start()

    def stop(self):
        if not self.started:
            return
        self.started = False
        self._on_stop()

    # -- reconfiguration ---------------------------------------------------------

    def reconfigure(self, *args, **kwargs):
        """Swap in new composition logic without touching any service.

        Subclasses implement ``_apply_configuration``; on success the
        generation is bumped and the change recorded.  Works both before
        and after ``start()`` -- that is the point.
        """
        description = self._apply_configuration(*args, **kwargs)
        self.generation += 1
        when = self.runtime.env.now if self.runtime is not None else 0.0
        self.reconfigurations.append((when, description or "reconfigured"))
        return self.generation

    # -- subclass hooks -------------------------------------------------------------

    def _on_bind(self):
        pass

    def _on_start(self):
        pass

    def _on_stop(self):
        pass

    def _apply_configuration(self, *args, **kwargs):
        raise NotImplementedError

    def status(self):
        return {
            "name": self.name,
            "started": self.started,
            "generation": self.generation,
            "reconfigurations": len(self.reconfigurations),
        }

    def __repr__(self):
        state = "started" if self.started else "stopped"
        return f"<{type(self).__name__} {self.name} {state} gen={self.generation}>"
