"""Admission control for the data-exchange front door.

A :class:`AdmissionController` sits in front of a store server's worker
pool (:meth:`repro.store.base.StoreServer.handle`) and decides, per
request, whether the principal may enter the queue *right now*.  Two
mechanisms compose:

- **token bucket per priority class** -- each class accrues tokens at
  ``rate * share * scale`` per second of virtual time, up to ``burst``;
  a request spends one token or is rejected with a retryable
  :class:`~repro.errors.OverloadedError`;
- **queue-depth AIMD** -- ``scale`` is the class's congestion window:
  while the server's worker queue sits above ``queue_high`` the scale is
  cut multiplicatively (once per ``decrease_interval``), and while the
  queue is healthy it recovers additively.  Classes differ in their
  ``floor``: integrator traffic keeps at least half its rate through an
  overload, bulk readers are cut to near zero -- integrators outrank
  bulk readers exactly when it matters.

Everything is a pure function of virtual time and call order, so
admission decisions are bit-reproducible across seeded runs.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The built-in priority classes.  ``share`` scales the class's token
#: rate at steady state; ``floor`` is the AIMD scale it can never be cut
#: below (the overload ranking: integrator >> view >> normal >> bulk).
INTEGRATOR = "integrator"
VIEW = "view"
NORMAL = "normal"
BULK = "bulk"


@dataclass(frozen=True)
class PriorityClass:
    """Rate share + congestion floor for one class of principals."""

    name: str
    share: float = 1.0
    floor: float = 0.1


DEFAULT_CLASSES = (
    PriorityClass(INTEGRATOR, share=1.0, floor=0.5),
    # Composed-view service principals: federated scatter reads and
    # materialized-view maintenance.  Above NORMAL (a congested store
    # that starves view maintenance makes every later read pay a
    # federated fan-out, amplifying the overload), below INTEGRATOR
    # (control loops keep the system converging).
    PriorityClass(VIEW, share=1.0, floor=0.3),
    PriorityClass(NORMAL, share=1.0, floor=0.1),
    PriorityClass(BULK, share=0.5, floor=0.02),
)


class _ClassState:
    """Mutable per-class limiter state (tokens + AIMD scale)."""

    __slots__ = ("spec", "tokens", "last_refill", "scale", "last_decrease",
                 "admitted", "rejected")

    def __init__(self, spec, burst, now):
        self.spec = spec
        self.tokens = float(burst)
        self.last_refill = now
        self.scale = 1.0
        self.last_decrease = -float("inf")
        self.admitted = 0
        self.rejected = 0


class AdmissionController:
    """Token-bucket + queue-depth AIMD limiter over one store server.

    Parameters
    ----------
    rate:
        Baseline admitted requests/second (virtual time) per class at
        full scale, before ``share`` and AIMD scaling.
    burst:
        Token-bucket depth: how far a quiet class may burst.
    queue_high:
        Worker-queue depth above which the AIMD cuts class scales.
    beta / alpha:
        Multiplicative-decrease factor and additive-increase rate
        (scale units per second) of the congestion window.
    decrease_interval:
        Minimum virtual time between two multiplicative cuts, so one
        congested instant does not zero the window.
    classes:
        Iterable of :class:`PriorityClass`; defaults to
        ``integrator``/``normal``/``bulk``.
    principals:
        Mapping of principal name -> class name; unlisted principals get
        ``default_class``.
    """

    def __init__(self, env, rate=2000.0, burst=64, queue_high=16,
                 beta=0.5, alpha=0.2, decrease_interval=0.05,
                 classes=DEFAULT_CLASSES, principals=None,
                 default_class=NORMAL):
        if rate <= 0 or burst <= 0:
            raise ConfigurationError(
                f"admission rate/burst must be positive, got {rate}/{burst}"
            )
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self.queue_high = int(queue_high)
        self.beta = float(beta)
        self.alpha = float(alpha)
        self.decrease_interval = float(decrease_interval)
        self._classes = {}
        for spec in classes:
            self._classes[spec.name] = _ClassState(spec, burst, env.now)
        if default_class not in self._classes:
            raise ConfigurationError(
                f"default class {default_class!r} is not a configured class"
            )
        self.default_class = default_class
        self.principals = dict(principals or {})
        for cls in self.principals.values():
            if cls not in self._classes:
                raise ConfigurationError(
                    f"principal mapped to unknown class {cls!r}"
                )
        self.admitted = 0
        self.rejected = 0

    # -- principal -> class -------------------------------------------------

    def class_of(self, principal):
        return self.principals.get(principal, self.default_class)

    def assign(self, principal, class_name):
        """Bind ``principal`` to a priority class (idempotent)."""
        if class_name not in self._classes:
            raise ConfigurationError(f"unknown priority class {class_name!r}")
        self.principals[principal] = class_name

    # -- the decision -------------------------------------------------------

    def admit(self, principal, queue_depth):
        """May ``principal`` enter a queue currently ``queue_depth`` deep?

        Spends one token on admit; counts the rejection otherwise.
        ``principal=None`` (an unattributed internal caller) is treated
        as the default class.
        """
        now = self.env.now
        state = self._classes[self.class_of(principal)]
        self._adjust(state, queue_depth, now)
        self._refill(state, now)
        if state.tokens >= 1.0:
            state.tokens -= 1.0
            state.admitted += 1
            self.admitted += 1
            return True
        state.rejected += 1
        self.rejected += 1
        return False

    def _refill(self, state, now):
        dt = now - state.last_refill
        if dt > 0:
            effective = self.rate * state.spec.share * state.scale
            state.tokens = min(self.burst, state.tokens + dt * effective)
        state.last_refill = now

    def _adjust(self, state, queue_depth, now):
        """AIMD on the observed queue depth (congestion signal)."""
        if queue_depth >= self.queue_high:
            if now - state.last_decrease >= self.decrease_interval:
                state.scale = max(state.spec.floor, state.scale * self.beta)
                state.last_decrease = now
        else:
            dt = now - state.last_refill
            if dt > 0:
                state.scale = min(1.0, state.scale + self.alpha * dt)

    # -- observability ------------------------------------------------------

    def stats(self):
        """Plain-data counters (scraped by the obs plane)."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "classes": {
                name: {
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "scale": round(state.scale, 6),
                }
                for name, state in sorted(self._classes.items())
            },
        }

    def __repr__(self):
        return (f"<AdmissionController rate={self.rate} burst={self.burst} "
                f"queue_high={self.queue_high}>")
