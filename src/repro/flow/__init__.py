"""``repro.flow`` -- the unified backpressure and admission-control plane.

Three mechanisms, one vocabulary (see ``docs/api.md``):

- **credit-based watch flow control**: every watch carries a credit
  window; a server pauses fan-out when a consumer's credits run out,
  coalesces the paused events, and forces a per-watcher resync instead
  of buffering without bound (:mod:`repro.store.base`);
- **bounded queues with typed overflow policies**
  (:mod:`repro.flow.policy`): ``block | shed_oldest | shed_newest |
  reject``, adopted by :class:`repro.simnet.queue.Store`, the pub/sub
  broker, reconciler work queues, and RPC accept queues, with sheds
  counted and routed to the existing dead-letter queues;
- **admission control** (:mod:`repro.flow.admission`): a token-bucket +
  queue-depth AIMD limiter per principal with priority classes at the
  store-server front door, surfacing retryable
  :class:`~repro.errors.OverloadedError` that
  :class:`repro.faults.RetryPolicy` already understands.

:class:`FlowConfig` bundles the knobs an application turns on at build
time (``RetailKnactorApp.build(flow=True)``).
"""

from dataclasses import dataclass, field

from repro.flow.admission import (
    BULK,
    DEFAULT_CLASSES,
    INTEGRATOR,
    NORMAL,
    VIEW,
    AdmissionController,
    PriorityClass,
)
from repro.flow.policy import (
    BLOCK,
    OVERFLOW_POLICIES,
    REJECT,
    SHED_NEWEST,
    SHED_OLDEST,
    check_overflow,
)


@dataclass
class FlowConfig:
    """Application-level bundle of backpressure knobs.

    The defaults are sized for the retail app under ~10x nominal load:
    generous enough that nominal traffic never notices flow control,
    tight enough that overload degrades into sheds and admission
    rejections instead of unbounded queues.
    """

    #: Default credit window for every watch minted through an exchange
    #: handle (``None`` disables credit flow control).
    watch_credits: int = 64
    #: Paused-buffer policy once a watcher exhausts its credits and its
    #: coalesced buffer fills: ``reject`` breaks the stream into a
    #: per-watcher resync; the shed policies drop buffered events.
    watch_overflow: str = REJECT
    #: Reconciler dirty-key queue bound (sheds route to the DLQ).
    reconciler_queue: int = 512
    reconciler_overflow: str = SHED_OLDEST
    #: Admission-control front door (see AdmissionController).
    admission_rate: float = 4000.0
    admission_burst: int = 256
    admission_queue_high: int = 24
    #: principal -> priority-class overrides.
    principals: dict = field(default_factory=dict)

    def build_admission(self, env):
        return AdmissionController(
            env,
            rate=self.admission_rate,
            burst=self.admission_burst,
            queue_high=self.admission_queue_high,
            principals=self.principals,
        )


__all__ = [
    "AdmissionController",
    "PriorityClass",
    "FlowConfig",
    "DEFAULT_CLASSES",
    "INTEGRATOR",
    "VIEW",
    "NORMAL",
    "BULK",
    "BLOCK",
    "SHED_OLDEST",
    "SHED_NEWEST",
    "REJECT",
    "OVERFLOW_POLICIES",
    "check_overflow",
]
