"""Typed overflow policies for every bounded queue in the system.

One vocabulary, adopted by :class:`repro.simnet.queue.Store`, the
pub/sub :class:`~repro.pubsub.broker.Broker`, reconciler work queues,
RPC accept queues, and paused watch buffers:

- ``BLOCK`` -- producers wait (or, where the producer cannot wait --
  watch fan-out, event intake -- the buffer is unbounded, the
  pre-backpressure behaviour);
- ``SHED_OLDEST`` -- evict the oldest queued item to admit the new one
  (newest data wins; right for state-carrying streams where a later
  item supersedes an earlier one);
- ``SHED_NEWEST`` -- drop the incoming item (the queue's contents are
  already-accepted work; right for at-most-once delivery planes);
- ``REJECT`` -- refuse the item with a retryable
  :class:`~repro.errors.OverloadedError` so the *producer* backs off
  (the admission-control response).

Every shed is observable: queues count sheds, route them to an optional
``on_shed`` callback (reconcilers route to their dead-letter queue), and
the obs plane scrapes the counters.
"""

from repro.errors import ConfigurationError

BLOCK = "block"
SHED_OLDEST = "shed_oldest"
SHED_NEWEST = "shed_newest"
REJECT = "reject"

#: Every policy a bounded queue may be configured with.
OVERFLOW_POLICIES = (BLOCK, SHED_OLDEST, SHED_NEWEST, REJECT)


def check_overflow(policy, allowed=OVERFLOW_POLICIES):
    """Validate (and return) an overflow policy name."""
    if policy not in allowed:
        raise ConfigurationError(
            f"unknown overflow policy {policy!r}; expected one of "
            + ", ".join(allowed)
        )
    return policy
