"""The federation engine: one view handle, two execution strategies.

A :class:`RegisteredView` binds a declarative
:class:`~repro.federation.views.ComposedView` to live source handles
(minted for the view's service principal, so every row crossing the
view boundary is masked exactly as that principal may see it) and
answers queries through whichever strategy the planner picks:

- **federated**: scatter-gather across the sources *now* -- parallel
  LISTs / point GETs on Object stores, a pushed-down pipeline on Log
  pools -- then one local join.  Staleness 0 by construction; cost is
  the full cross-store fan-out on every read.
- **materialized**: serve the incrementally maintained local copy
  (:class:`~repro.federation.materialize.MaterializedView`).  Cost is a
  local join; staleness is whatever the watch pipeline currently lags.

**Planner rule** (per query, in order): no materialized copy or
``consistency="strong"`` (which a ``freshness`` bound of 0 implies) ->
federated; ``consistency="any"`` -> materialized; otherwise serve
materialized iff its staleness estimate is within the query's freshness
bound (defaulting to the view's declared bound), else fall back to
federated.  Under the default automatic policy a materialized answer is
therefore *never* served beyond its bound -- the
``view_freshness_violations_total`` counter only moves when a caller
forces ``strategy="materialized"`` explicitly.

Every query emits ``view_plan`` / ``view_fetch`` trace spans and the
per-view ``view_queries_total`` / ``view_staleness_seconds`` metrics
(maintenance emits ``view_apply`` points as writes land).
"""

from dataclasses import dataclass

from repro.errors import NotFoundError
from repro.query.core import compile_ops
from repro.query.spec import Query, QueryResult
from repro.federation.views import compose


@dataclass(frozen=True)
class Plan:
    """The planner's verdict for one query."""

    strategy: str  # "federated" | "materialized"
    bound: float  # resolved freshness bound (seconds)
    staleness: float  # materialized staleness estimate at plan time
    reason: str


class RegisteredView:
    """A composed view wired to its sources on a home exchange."""

    #: Simulated CPU per source row fed through the local join -- the
    #: same order of magnitude as the Sync integrator's local stage
    #: cost, so a materialized serve is cheap but never free.
    local_join_cost = 2e-6

    def __init__(self, env, view, home, handles, kinds, *, registry=None,
                 tracer=None, materialized=None):
        self.env = env
        self.view = view
        self.home = home  # the DataExchange the view is registered on
        self.handles = handles  # alias -> source StoreHandle
        self.kinds = kinds  # alias -> "object" | "log"
        self.registry = registry
        self.tracer = tracer
        self.materialized = materialized

    @property
    def name(self):
        return self.view.name

    def staleness(self, now=None):
        if self.materialized is None:
            return float("inf")
        return self.materialized.staleness(now)

    # -- planning ----------------------------------------------------------

    def plan(self, query):
        bound = (query.freshness if query.freshness is not None
                 else self.view.freshness)
        level = query.consistency or ("strong" if bound <= 0 else "bounded")
        staleness = self.staleness()
        if self.materialized is None:
            return Plan("federated", bound, staleness,
                        "no materialized copy maintained")
        if level == "strong":
            return Plan("federated", bound, staleness,
                        "strong consistency demanded")
        if level == "any":
            return Plan("materialized", bound, staleness,
                        "any-staleness read")
        if staleness <= bound:
            return Plan("materialized", bound, staleness,
                        f"staleness {staleness:.4f}s within bound {bound}s")
        return Plan("federated", bound, staleness,
                    f"staleness {staleness:.4f}s exceeds bound {bound}s")

    # -- execution ---------------------------------------------------------

    def execute(self, query, strategy=None):
        """Generator body answering ``query`` (wrap in ``env.process``)."""
        root_ctx = plan_ctx = None
        if self.tracer is not None:
            root_ctx = self.tracer.new_trace(
                "view_query", service=f"view:{self.name}", view=self.name,
            )
            plan_ctx = self.tracer.start_span(
                "view_plan", service=f"view:{self.name}", parent=root_ctx,
            )
        plan = self.plan(query)
        chosen = strategy if strategy is not None else plan.strategy
        if plan_ctx is not None:
            self.tracer.end_span(
                plan_ctx, strategy=chosen, reason=plan.reason,
                bound=plan.bound,
            )
        fetch_ctx = None
        if self.tracer is not None:
            fetch_ctx = self.tracer.start_span(
                "view_fetch", service=f"view:{self.name}", parent=root_ctx,
                strategy=chosen,
            )
        if chosen == "materialized":
            if self.materialized is None:
                raise NotFoundError(
                    f"view {self.name!r} maintains no materialized copy"
                )
            staleness = plan.staleness
            if staleness > plan.bound:
                # Only reachable when the caller forced the strategy:
                # the automatic planner never serves beyond the bound.
                self._count("view_freshness_violations_total")
            tables = self.materialized.tables()
        else:
            staleness = 0.0
            tables = yield self.env.process(self._scatter(query.keys))
        cost = self.local_join_cost * sum(len(t) for t in tables.values())
        if cost > 0:
            yield self.env.timeout(cost)
        rows = compose(self.view, tables, self.kinds, keys=query.keys)
        records = query.pipeline()(rows)
        if fetch_ctx is not None:
            self.tracer.end_span(fetch_ctx, records=len(records))
        self._count("view_queries_total", strategy=chosen)
        if self.registry is not None and staleness != float("inf"):
            self.registry.histogram(
                "view_staleness_seconds", view=self.name,
            ).observe(staleness)
        if root_ctx is not None:
            self.tracer.end_span(root_ctx, strategy=chosen)
        return QueryResult(
            records=records,
            strategy=chosen,
            staleness=staleness,
            sources={
                alias: {"kind": self.kinds[alias], "rows": len(tables[alias])}
                for alias in tables
            },
        )

    def _scatter(self, keys):
        """Parallel federated fetch of every source; alias -> rows."""
        procs = {
            src.alias: self.env.process(self._fetch_source(src, keys))
            for src in self.view.sources
        }
        results = yield self.env.all_of(list(procs.values()))
        return {alias: results[proc] for alias, proc in procs.items()}

    def _fetch_source(self, src, keys):
        handle = self.handles[src.alias]
        if self.kinds[src.alias] == "log":
            # Analytics push-down: the per-source pipeline runs in the
            # Log store, only the survivors cross the network.
            answer = yield handle.query(
                ops=list(src.ops), include_watermark=True,
            )
            return list(answer["records"])
        if keys is not None and src.on == "_key" and src.match == "_key":
            # Point-read path: this source is keyed identically to the
            # requested root keys, so N parallel GETs beat a full LIST.
            # Per-source ops here see only the fetched subset; keyed
            # queries compose with record-local ops (filter / cut /
            # derive), not whole-table ones (agg / head).
            wanted = list(dict.fromkeys(keys))
            rows = []
            if wanted:
                gets = [self.env.process(self._point_get(handle, k))
                        for k in wanted]
                results = yield self.env.all_of(gets)
                rows = [results[p] for p in gets if results[p] is not None]
        else:
            views = yield handle.list()
            rows = [{**v["data"], "_key": v["key"]} for v in views]
        rows.sort(key=lambda r: r["_key"])  # match materialized ordering
        return compile_ops(src.ops)(rows)

    def _point_get(self, handle, key):
        try:
            view = yield handle.get(key)
        except NotFoundError:
            return None
        return {**view["data"], "_key": view["key"]}

    def _count(self, name, **labels):
        if self.registry is not None:
            self.registry.counter(name, view=self.name, **labels).inc()

    def status(self):
        out = {
            "view": self.name,
            "sources": {
                alias: {"kind": kind, "store": self.view.source(alias).store}
                for alias, kind in self.kinds.items()
            },
            "freshness": self.view.freshness,
            "materialized": self.materialized is not None,
        }
        if self.materialized is not None:
            out["staleness"] = self.materialized.staleness()
            out["maintenance"] = self.materialized.status()
        return out


class ViewHandle:
    """A principal's query handle to one registered composed view.

    The view-side analogue of a :class:`~repro.exchange.base.StoreHandle`:
    every ``query`` passes RBAC (the ``query`` verb on the view name,
    granted via ``de.grant(principal, view_name, role="viewer")``)
    before the planner runs.
    """

    def __init__(self, registered, principal):
        self.registered = registered
        self.principal = principal

    @property
    def env(self):
        return self.registered.env

    @property
    def name(self):
        return self.registered.name

    @property
    def view(self):
        return self.registered.view

    def query(self, *, ops=(), freshness=None, consistency=None, keys=None,
              strategy=None):
        """Answer a declarative read; returns a process event.

        Keyword-only, mirroring :class:`repro.query.Query`:
        ``ops`` (post-compose pipeline), ``freshness`` (staleness bound
        in seconds; ``None`` defers to the view's default),
        ``consistency`` (``strong`` / ``bounded`` / ``any``), ``keys``
        (root-key restriction).  ``strategy`` overrides the planner
        (``"federated"`` / ``"materialized"``) -- forcing a stale
        materialized read is counted as a freshness violation.
        """
        self.registered.home.acl.check(
            self.principal, self.name, "query", now=self.env.now,
        )
        spec = Query(
            target=self.name, ops=ops, freshness=freshness,
            consistency=consistency, principal=self.principal, keys=keys,
        )
        return self.env.process(self.registered.execute(spec, strategy=strategy))

    def plan(self, *, ops=(), freshness=None, consistency=None, keys=None):
        """The planner's verdict without executing (no RBAC side effects)."""
        spec = Query(
            target=self.name, ops=ops, freshness=freshness,
            consistency=consistency, principal=self.principal, keys=keys,
        )
        return self.registered.plan(spec)

    def staleness(self):
        return self.registered.staleness()
