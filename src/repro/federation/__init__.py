"""``repro.federation`` -- cross-store query federation (paper §4).

Composed read views over stores hosted on one or more Data Exchanges:
declare *what* to join (:class:`ComposedView` / :class:`ViewSource`),
register it on an exchange (``de.register_view``), and read through one
handle (``de.view(...)`` / ``de.query(...)``) -- the planner picks
between scatter-gather federated reads and an incrementally maintained
materialized copy per query, driven by the caller's freshness bound.

See ``docs/federation.md`` for the view-spec grammar, the planner
rules, and the staleness semantics.
"""

from repro.federation.engine import Plan, RegisteredView, ViewHandle
from repro.federation.materialize import MaterializedView
from repro.federation.views import ComposedView, ViewSource, compose

__all__ = [
    "ComposedView",
    "MaterializedView",
    "Plan",
    "RegisteredView",
    "ViewHandle",
    "ViewSource",
    "compose",
]
