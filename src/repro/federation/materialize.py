"""Incrementally maintained materialized state for composed views.

One :class:`MaterializedView` keeps a local, continuously-updated copy
of every source of a :class:`~repro.federation.views.ComposedView`, fed
from the sources' watch streams through the view's service principal --
so each row arrives already masked exactly as a federated read through
the same principal would see it.

Maintenance reuses the delta-watch resilience machinery end to end:

- **Object sources** apply ADDED/MODIFIED/DELETED events guarded by
  revision (stale deliveries racing a rebuild are dropped); a broken
  stream (``on_close``) triggers re-watch plus a one-LIST rebuild.
- **Log sources** keep the raw stamped records and a ``next_seq``
  cursor.  A batch whose ``first_seq`` jumps past the cursor is a
  detected gap (a dropped watch message): the view re-queries
  ``since_seq=cursor`` with the :mod:`~repro.store.loglake` watermark
  hook and resumes from the exact sequence point, buffering deliveries
  that race the catch-up.

**Staleness estimate.**  Each applied event contributes an apply-lag
sample (``now - committed_at``, the same quantity the obs plane's
``watch_lag_seconds`` tracks).  :meth:`staleness` reports the worst
recent sample across sources but never less than a configurable
pipeline ``floor`` -- a materialized copy is never *perfectly* fresh,
even when every observed sample is zero -- and ``inf`` while any
source is resyncing, which is what forces the planner back to
federated reads until the view has provably caught up.
"""

from collections import deque

from repro.query.core import compile_ops


class _SourceState:
    __slots__ = (
        "source", "kind", "handle", "table", "revisions", "rows", "cursor",
        "resyncing", "pending", "lag", "watch", "applied", "resyncs",
    )

    def __init__(self, source, kind, handle):
        self.source = source
        self.kind = kind  # "object" | "log"
        self.handle = handle
        self.table = {}  # object: key -> {**data, "_key": key}
        self.revisions = {}  # object: key -> last applied revision
        self.rows = []  # log: raw stamped records
        self.cursor = 0  # log: next _seq this copy expects
        self.resyncing = True  # until the initial seed lands
        self.pending = []  # log: deliveries racing a catch-up
        self.lag = deque()  # (observed_at, apply_lag_seconds)
        self.watch = None
        self.applied = 0
        self.resyncs = 0


class MaterializedView:
    """The maintained local answer substrate for one composed view."""

    def __init__(self, env, view, handles, kinds, *, registry=None,
                 lag_window=1.0, floor=0.002):
        self.env = env
        self.view = view
        self.registry = registry
        #: Sliding window (seconds) of apply-lag samples considered live.
        self.lag_window = lag_window
        #: Staleness reported when the window is quiet: the typical
        #: watch-pipeline latency an in-flight event would arrive with.
        self.floor = floor
        self._sources = {
            src.alias: _SourceState(src, kinds[src.alias], handles[src.alias])
            for src in view.sources
        }
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Wire watches and seed every source; returns the seed process."""
        if self._started:
            raise RuntimeError(f"view {self.view.name!r} already maintained")
        self._started = True
        for state in self._sources.values():
            self._wire(state)
        return self.env.process(self._seed_all())

    def stop(self):
        for state in self._sources.values():
            if state.watch is not None:
                state.watch.cancel()
                state.watch = None
        self._started = False

    def _wire(self, state):
        if state.watch is not None:
            state.watch.cancel()
        if state.kind == "object":
            state.watch = state.handle.watch(
                lambda event, s=state: self._apply_object(s, event),
                on_close=lambda s=state: self._on_watch_lost(s),
            )
        else:
            state.watch = state.handle.watch(
                lambda event, s=state: self._on_log_batch(s, event),
                on_close=lambda s=state: self._on_watch_lost(s),
            )

    def _seed_all(self):
        for state in self._sources.values():
            yield self.env.process(self._resync(state, initial=True))

    # -- object maintenance ------------------------------------------------

    def _apply_object(self, state, event):
        if state.resyncing:
            # A rebuild (one LIST) is in flight and will overwrite the
            # table wholesale; buffer and drain behind the revision guard.
            state.pending.append(event)
            return
        last = state.revisions.get(event.key)
        if last is not None and event.revision < last:
            return  # stale delivery racing a rebuild
        state.revisions[event.key] = event.revision
        if event.type == "DELETED":
            state.table.pop(event.key, None)
        else:
            state.table[event.key] = {**event.object, "_key": event.key}
        self._applied(state, event.committed_at, event.ctx, 1)

    # -- log maintenance ---------------------------------------------------

    def _on_log_batch(self, state, event):
        if state.resyncing:
            state.pending.append(event)
            return
        payload = event.object
        if payload["first_seq"] > state.cursor:
            # Gap: a watch message was dropped between cursor and this
            # batch.  Re-query from the cursor; the catch-up's watermark
            # covers this batch too, so it is not applied directly.
            self._trigger_resync(state)
            state.pending.append(event)
            return
        self._apply_log_records(state, payload["records"], event)

    def _apply_log_records(self, state, records, event):
        fresh = [r for r in records if r["_seq"] >= state.cursor]
        if not fresh:
            return
        state.rows.extend(fresh)
        state.cursor = fresh[-1]["_seq"] + 1
        self._applied(state, event.committed_at, event.ctx, len(fresh))

    # -- resync ------------------------------------------------------------

    def _on_watch_lost(self, state):
        if not self._started:
            return
        self._wire(state)
        self._trigger_resync(state)

    def _trigger_resync(self, state):
        if state.resyncing:
            return
        self.env.process(self._resync(state))

    def _resync(self, state, initial=False):
        state.resyncing = True
        if not initial:
            state.resyncs += 1
            self._count("view_resyncs_total", source=state.source.alias)
        if state.kind == "object":
            views = yield state.handle.list()
            table, revisions = {}, dict(state.revisions)
            for view in views:
                key, revision = view["key"], view["revision"]
                if revisions.get(key, -1) > revision:
                    continue  # a watch event already moved past the LIST
                table[key] = {**view["data"], "_key": key}
                revisions[key] = revision
            state.table, state.revisions = table, revisions
        else:
            answer = yield state.handle.query(
                ops=(), since_seq=state.cursor, include_watermark=True,
            )
            synthetic_now = self.env.now
            fresh = [r for r in answer["records"] if r["_seq"] >= state.cursor]
            state.rows.extend(fresh)
            state.cursor = max(state.cursor, answer["watermark"])
            if fresh:
                state.applied += len(fresh)
                state.lag.append((synthetic_now, self.floor))
        state.resyncing = False
        # Drain deliveries that raced the catch-up (already-covered seqs
        # fall out of the cursor guard).
        pending, state.pending = state.pending, []
        for event in pending:
            if state.kind == "log":
                self._apply_log_records(state, event.object["records"], event)
            else:
                self._apply_object(state, event)

    # -- bookkeeping -------------------------------------------------------

    def _applied(self, state, committed_at, ctx, count):
        state.applied += count
        now = self.env.now
        if committed_at is not None:
            state.lag.append((now, now - committed_at))
            while state.lag and state.lag[0][0] < now - self.lag_window:
                state.lag.popleft()
        self._count("view_apply_events_total", source=state.source.alias,
                    amount=count)
        if self.registry is not None and committed_at is not None:
            self.registry.histogram(
                "view_apply_lag_seconds", view=self.view.name,
                source=state.source.alias,
            ).observe(now - committed_at)
        if ctx is not None and ctx.sink is not None:
            ctx.sink.point(
                "view_apply", service=f"view:{self.view.name}", parent=ctx,
                view=self.view.name, source=state.source.alias,
            )

    def _count(self, name, source, amount=1):
        if self.registry is not None:
            self.registry.counter(
                name, view=self.view.name, source=source
            ).inc(amount)

    # -- read side ---------------------------------------------------------

    def staleness(self, now=None):
        """Worst-case seconds this view's answer may lag the sources."""
        now = self.env.now if now is None else now
        worst = self.floor
        for state in self._sources.values():
            if state.resyncing:
                return float("inf")
            horizon = now - self.lag_window
            recent = [lag for at, lag in state.lag if at >= horizon]
            worst = max(worst, max(recent, default=0.0))
        return worst

    def tables(self):
        """alias -> joined-ready rows (per-source ops applied locally)."""
        out = {}
        for alias, state in self._sources.items():
            if state.kind == "object":
                # Deterministic _key order: both strategies must feed the
                # join identically-ordered rows or answer identity breaks
                # on order-sensitive ops (sort ties, head/tail).
                rows = sorted(
                    (dict(r) for r in state.table.values()),
                    key=lambda r: r["_key"],
                )
            else:
                rows = list(state.rows)
            out[alias] = compile_ops(state.source.ops)(rows)
        return out

    def status(self):
        return {
            alias: {
                "kind": state.kind,
                "applied": state.applied,
                "resyncs": state.resyncs,
                "resyncing": state.resyncing,
                "rows": (len(state.table) if state.kind == "object"
                         else len(state.rows)),
            }
            for alias, state in self._sources.items()
        }
