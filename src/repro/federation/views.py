"""Declarative composed-view specs for cross-store query federation.

A :class:`ComposedView` names a read-side join over stores hosted on one
or more Data Exchanges: a **root** source (the page's driving table) plus
any number of joined sources, each matched on a field of the root record.
The spec is pure data -- which stores, which join keys, which per-source
pipelines (shared-core operator specs, :mod:`repro.query.core`), and the
default freshness bound -- so the same view can be answered by either
execution strategy (scatter-gather federated reads, or an incrementally
maintained materialized table) without the caller changing a line.

Row shapes the join operates on:

- Object-store sources contribute one row per object,
  ``{**data, "_key": key}`` (the masked data the source principal may
  see, flattened with the store-relative key);
- Log-store sources contribute their stamped records (``_seq`` /
  ``_ts`` included) and join as **lists** (all matching records), which
  is what an order's event history or charge attempts look like.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.query.core import compile_ops


@dataclass(frozen=True)
class ViewSource:
    """One named source of a composed view.

    - ``alias``: the view-local name; joined rows land on the composed
      record under ``into`` (default: the alias).
    - ``store``: the hosted store (Object) or pool-backed store (Log)
      name on ``exchange`` (``None`` = the exchange the view is
      registered on).
    - ``on``: the field of the *root* record whose value is matched
      (default ``_key``: compose stores keyed identically, the retail
      pattern where checkout/shipping/payment all key by order id).
    - ``match``: the field of *this* source's rows compared against
      (default ``_key`` for Object sources; Log sources usually match a
      payload field like ``order``).
    - ``ops``: a per-source pipeline applied before the join -- pushed
      down to the Log store on federated reads, evaluated locally over
      Object rows and materialized tables.
    - ``required``: inner-join semantics (drop root records without a
      match) instead of the default left join.
    """

    alias: str
    store: str
    exchange: str = None
    on: str = "_key"
    match: str = "_key"
    into: str = None
    ops: tuple = ()
    required: bool = False

    def __post_init__(self):
        if not self.alias or not isinstance(self.alias, str):
            raise ConfigurationError(f"source alias must be a name, got "
                                     f"{self.alias!r}")
        if not self.store:
            raise ConfigurationError(f"source {self.alias!r} names no store")
        object.__setattr__(self, "ops", tuple(self.ops or ()))
        compile_ops(self.ops)  # validate eagerly

    @property
    def field(self):
        """The composed-record field this source's rows land on."""
        return self.into or self.alias


@dataclass(frozen=True)
class ComposedView:
    """A named, declarative cross-store read view.

    ``sources[0]`` is the root; every other source joins onto it.
    ``ops`` is the post-join pipeline over composed records (same
    operator catalog as everywhere else).  ``freshness`` is the default
    staleness bound in seconds a query without an explicit bound
    tolerates -- the planner serves the materialized table only while
    its staleness estimate stays within the bound.
    """

    name: str
    sources: tuple
    ops: tuple = ()
    freshness: float = 0.25
    description: str = ""

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"view name must be a string, got "
                                     f"{self.name!r}")
        sources = tuple(self.sources or ())
        if not sources:
            raise ConfigurationError(f"view {self.name!r} has no sources")
        aliases = [s.alias for s in sources]
        if len(set(aliases)) != len(aliases):
            raise ConfigurationError(
                f"view {self.name!r} has duplicate source aliases {aliases!r}"
            )
        object.__setattr__(self, "sources", sources)
        object.__setattr__(self, "ops", tuple(self.ops or ()))
        compile_ops(self.ops)  # validate eagerly
        if self.freshness is None or self.freshness < 0:
            raise ConfigurationError(
                f"view {self.name!r} freshness bound must be >= 0 seconds"
            )

    @property
    def root(self):
        return self.sources[0]

    def source(self, alias):
        for src in self.sources:
            if src.alias == alias:
                return src
        raise ConfigurationError(f"view {self.name!r} has no source {alias!r}")


def compose(view, tables, kinds, keys=None):
    """Join per-source row sets into composed records.

    ``tables`` maps alias -> list of rows *after* per-source ops;
    ``kinds`` maps alias -> ``"object"`` | ``"log"`` (Log sources join
    as lists of matches, Object sources as a single record or None).
    ``keys`` restricts the root to exactly those ``_key`` values, in the
    given order (the point-read access path).

    Both strategies funnel through this one function, which is what
    makes the federated-vs-materialized answer-identity property
    testable: given identical inputs there is exactly one join.
    """
    root = view.root
    rows = tables.get(root.alias, [])
    if keys is not None:
        by_key = {r.get("_key"): r for r in rows}
        rows = [by_key[k] for k in keys if k in by_key]
    composed = [dict(r) for r in rows]
    for src in view.sources[1:]:
        records = tables.get(src.alias, [])
        as_list = kinds.get(src.alias) == "log"
        index = {}
        if as_list:
            for record in records:
                index.setdefault(record.get(src.match), []).append(record)
        else:
            for record in records:
                index[record.get(src.match)] = record
        empty = [] if as_list else None
        for row in composed:
            row[src.field] = index.get(row.get(src.on), empty)
        if src.required:
            composed = [r for r in composed if r[src.field] not in (None, [])]
    return compile_ops(view.ops)(composed)
