"""Path-template routing (``/orders/{id}/shipments``)."""

import re

from repro.errors import ConfigurationError

_SEGMENT_RE = re.compile(r"^\{(\w+)\}$")


class Route:
    """One (method, path template) -> handler binding."""

    METHODS = frozenset({"GET", "POST", "PUT", "PATCH", "DELETE"})

    def __init__(self, method, template, handler):
        method = method.upper()
        if method not in self.METHODS:
            raise ConfigurationError(f"unsupported method {method!r}")
        if not template.startswith("/"):
            raise ConfigurationError(f"path template {template!r} must start with /")
        self.method = method
        self.template = template
        self.handler = handler
        self._segments = [s for s in template.split("/") if s != ""]

    def match(self, method, path):
        """Returns the extracted path params dict, or None."""
        if method.upper() != self.method:
            return None
        parts = [s for s in path.split("/") if s != ""]
        if len(parts) != len(self._segments):
            return None
        params = {}
        for segment, part in zip(self._segments, parts):
            param = _SEGMENT_RE.match(segment)
            if param:
                params[param.group(1)] = part
            elif segment != part:
                return None
        return params

    def __repr__(self):
        return f"<Route {self.method} {self.template}>"


class Router:
    """Ordered route table with first-match dispatch."""

    def __init__(self):
        self._routes = []

    def add(self, method, template, handler):
        self._routes.append(Route(method, template, handler))
        return self

    def get(self, template, handler):
        return self.add("GET", template, handler)

    def post(self, template, handler):
        return self.add("POST", template, handler)

    def put(self, template, handler):
        return self.add("PUT", template, handler)

    def patch(self, template, handler):
        return self.add("PATCH", template, handler)

    def delete(self, template, handler):
        return self.add("DELETE", template, handler)

    def resolve(self, method, path):
        """Returns ``(handler, params)`` or ``(None, None)``."""
        for route in self._routes:
            params = route.match(method, path)
            if params is not None:
                return route.handler, params
        return None, None

    def routes(self):
        return list(self._routes)

    def __len__(self):
        return len(self._routes)
