"""REST server and client over the simulated network.

Handlers receive a :class:`Request` and return a :class:`Response` (or a
plain dict, treated as a 200 body; or a generator doing either).  Raised
:class:`~repro.errors.ReproError` subclasses map to 500 unless the
handler raises :func:`http_error` explicitly.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.rest.router import Router
from repro.store.base import estimate_size


class HTTPError(ReproError):
    """Raise inside a handler to produce a specific status code."""

    def __init__(self, status, message=""):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True)
class Request:
    """One HTTP-ish request."""

    method: str
    path: str
    params: dict = field(default_factory=dict)  # extracted path params
    query: dict = field(default_factory=dict)
    body: dict = None


@dataclass(frozen=True)
class Response:
    """One HTTP-ish response."""

    status: int = 200
    body: dict = None

    @property
    def ok(self):
        return 200 <= self.status < 300


class RestServer:
    """Hosts a router at one network location."""

    dispatch_overhead = 0.0004
    per_byte = 1e-9

    def __init__(self, env, network, location):
        self.env = env
        self.network = network
        self.location = location
        self.router = Router()
        self.requests_served = 0

    def route(self, method, template, handler):
        self.router.add(method, template, handler)
        return self

    def serve(self, host="127.0.0.1", port=0):
        """Bind a real TCP socket fronting this server (realtime only).

        Returns a started :class:`repro.rest.http.HttpListener`; drive
        the kernel (``env.run(...)``) to serve traffic, and read
        ``listener.port`` when binding an ephemeral port.  Raises
        :class:`~repro.errors.ConfigurationError` on the sim backend,
        which has no wall clock to serve on.
        """
        from repro.rest.http import HttpListener

        return HttpListener(self.env, self, host=host, port=port).start()

    def dispatch(self, request):
        """Server-side execution; process event with the Response."""
        return self.env.process(self._dispatch(request))

    def _dispatch(self, request):
        delay = self.dispatch_overhead + self.per_byte * estimate_size(
            request.body or {}
        )
        yield self.env.timeout(delay)
        handler, params = self.router.resolve(request.method, request.path)
        if handler is None:
            return Response(404, {"error": f"no route for {request.method} {request.path}"})
        bound = Request(
            method=request.method, path=request.path, params=params,
            query=request.query, body=request.body,
        )
        try:
            result = handler(bound)
            if hasattr(result, "send"):
                result = yield self.env.process(result)
        except HTTPError as exc:
            return Response(exc.status, {"error": exc.message})
        except ReproError as exc:
            return Response(500, {"error": str(exc)})
        self.requests_served += 1
        if isinstance(result, Response):
            return result
        return Response(200, result if result is not None else {})


class RestClient:
    """A caller's connection to one REST server."""

    def __init__(self, env, server, client_location):
        self.env = env
        self.server = server
        self.client_location = client_location
        self.requests_made = 0

    def request(self, method, path, body=None, query=None, raise_for_status=True):
        """Round-trip one request; process event with the Response.

        With ``raise_for_status`` (default), non-2xx responses raise
        :class:`HTTPError` -- composition code must handle it, which is
        part of the coupling cost the paper counts.
        """
        return self.env.process(
            self._request(method, path, body, query or {}, raise_for_status)
        )

    def _request(self, method, path, body, query, raise_for_status):
        self.requests_made += 1
        net = self.server.network
        yield net.transfer(self.client_location, self.server.location)
        response = yield self.server.dispatch(
            Request(method=method, path=path, body=body, query=query)
        )
        yield net.transfer(self.server.location, self.client_location)
        if raise_for_status and not response.ok:
            message = (response.body or {}).get("error", "")
            raise HTTPError(response.status, message)
        return response

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, body=None, **kwargs):
        return self.request("POST", path, body=body, **kwargs)

    def put(self, path, body=None, **kwargs):
        return self.request("PUT", path, body=body, **kwargs)

    def patch(self, path, body=None, **kwargs):
        return self.request("PATCH", path, body=body, **kwargs)

    def delete(self, path, **kwargs):
        return self.request("DELETE", path, **kwargs)
