"""A real TCP front door for :class:`repro.rest.RestServer`.

:class:`HttpListener` binds a listening socket on the realtime
environment's asyncio loop and speaks just enough HTTP/1.1 for JSON
APIs: request line + headers, ``Content-Length`` bodies, keep-alive.
Each request is bridged into the kernel -- ``server.dispatch()``
schedules the handler as a normal kernel process, and the connection
coroutine awaits it through :meth:`RealtimeEnvironment.future_of` --
so socket traffic and store/watch/integrator work interleave on the
same schedule.

The listener runs only while the kernel runs: start it, then drive the
environment (``env.run()`` idles on an empty queue while a listener is
registered, waiting for sockets to inject work).
"""

import asyncio
import json
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ConfigurationError
from repro.rest.server import Request

#: Hard cap on header block + body we are willing to buffer.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
}


class HttpListener:
    """A live ``host:port`` serving one :class:`RestServer`.

    Create via :meth:`repro.rest.RestServer.serve`.  ``port=0`` binds an
    ephemeral port; read :attr:`port` after :meth:`start`.
    """

    def __init__(self, env, server, host="127.0.0.1", port=0):
        loop = getattr(env, "loop", None)
        if getattr(env, "backend", "sim") != "realtime" or loop is None:
            raise ConfigurationError(
                "a real TCP listener needs the realtime backend "
                "(RealtimeEnvironment); the sim exchanges requests "
                "through RestClient instead"
            )
        self.env = env
        self.server = server
        self.host = host
        self._requested_port = port
        self._tcp = None
        self.connections_accepted = 0

    @property
    def port(self):
        """The bound port (valid once started)."""
        if self._tcp is None:
            return self._requested_port
        return self._tcp.sockets[0].getsockname()[1]

    @property
    def address(self):
        return f"http://{self.host}:{self.port}"

    def start(self):
        """Bind the socket (callable from sync code, before ``env.run``)."""
        if self._tcp is not None:
            return self
        self._tcp = self.env.loop.run_until_complete(
            asyncio.start_server(
                self._serve_connection, self.host, self._requested_port
            )
        )
        # While we are listening, an empty kernel queue means "idle",
        # not "finished".
        self.env.register_external_source(self)
        return self

    def stop(self):
        """Close the socket and let ``env.run()`` terminate when drained."""
        if self._tcp is None:
            return
        tcp, self._tcp = self._tcp, None
        tcp.close()
        if not self.env.loop.is_closed() and not self.env.loop.is_running():
            self.env.loop.run_until_complete(tcp.wait_closed())
        self.env.unregister_external_source(self)

    # -- connection handling ----------------------------------------------

    async def _serve_connection(self, reader, writer):
        self.connections_accepted += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, int):  # parse-level error status
                    await self._write_response(
                        writer, request, {"error": _REASONS[request]},
                        keep_alive=False,
                    )
                    break
                bound, keep_alive = request
                response = await self.env.future_of(
                    self.server.dispatch(bound)
                )
                await self._write_response(
                    writer, response.status, response.body, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Cancelled = the environment is tearing down with this
                # connection still open; swallow so the loop's protocol
                # callback does not log a spurious traceback.
                pass

    async def _read_request(self, reader):
        """One request off the wire -> (Request, keep_alive) | status | None."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            return 400
        except asyncio.LimitOverrunError:
            return 413
        if len(head) > MAX_HEADER_BYTES:
            return 413
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return 400
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400
        if length > MAX_BODY_BYTES:
            return 413
        body = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                return 400
        parts = urlsplit(target)
        keep_alive = headers.get("connection", "").lower() != "close"
        return Request(
            method=method.upper(),
            path=parts.path,
            query=dict(parse_qsl(parts.query)),
            body=body,
        ), keep_alive

    async def _write_response(self, writer, status, body, keep_alive):
        payload = json.dumps(body if body is not None else {}).encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {connection}\r\n\r\n".encode("latin-1")
            + payload
        )
        await writer.drain()

    def __repr__(self):
        state = "listening" if self._tcp is not None else "stopped"
        return f"<HttpListener {self.address} {state}>"
