"""The REST baseline: an HTTP/JSON-style resource API built from scratch.

The paper's abstract names three API-centric composition mechanisms --
"RPC, REST, and Pub/Sub".  This package completes the trio: path-routed
resources with the standard verb semantics, status codes, and a client.
Like the other baselines it exists to make the coupling measurable: a
composing service must hard-code the other service's URL structure and
representation.

Under the realtime backend a :class:`RestServer` can additionally bind a
real TCP socket (:meth:`RestServer.serve` -> :class:`HttpListener`),
turning a Data Exchange into a live network service.
"""

from repro.rest.http import HttpListener
from repro.rest.router import Route, Router
from repro.rest.server import (
    HTTPError,
    Request,
    Response,
    RestClient,
    RestServer,
)

__all__ = [
    "HTTPError",
    "HttpListener",
    "Request",
    "Response",
    "RestClient",
    "RestServer",
    "Route",
    "Router",
]
