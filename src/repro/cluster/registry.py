"""Image build + push cost model.

A composition change in the API-centric approach forces an image rebuild
and registry push before redeployment.  The model:

- build time = base + per-SLOC compile cost (bigger services build
  slower),
- push time = image size / uplink bandwidth,
- layer caching: pushing a tag whose name was pushed before only uploads
  the changed layers (a fraction of the image).
"""

from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass
class BuildResult:
    image: object
    build_seconds: float
    push_seconds: float

    @property
    def total_seconds(self):
        return self.build_seconds + self.push_seconds


class ImageRegistry:
    """Builds and stores image tags; costs virtual time."""

    build_base_seconds = 25.0
    build_per_sloc = 0.02
    uplink_mb_per_second = 40.0
    cached_layer_fraction = 0.15  # changed layers vs full image

    def __init__(self, env):
        self.env = env
        self._pushed = {}  # image name -> set of tags
        self.builds = []

    def build_and_push(self, image, service_sloc=1000):
        """Build + push; returns a process event with the BuildResult."""
        if service_sloc < 0:
            raise ClusterError("service_sloc must be non-negative")
        return self.env.process(self._build_and_push(image, service_sloc))

    def _build_and_push(self, image, service_sloc):
        build_seconds = self.build_base_seconds + self.build_per_sloc * service_sloc
        yield self.env.timeout(build_seconds)
        cached = image.name in self._pushed
        upload_mb = image.size_mb * (self.cached_layer_fraction if cached else 1.0)
        push_seconds = upload_mb / self.uplink_mb_per_second
        yield self.env.timeout(push_seconds)
        self._pushed.setdefault(image.name, set()).add(image.tag)
        result = BuildResult(image, build_seconds, push_seconds)
        self.builds.append(result)
        return result

    def has(self, image):
        return image.tag in self._pushed.get(image.name, set())
