"""A miniature Kubernetes-like deployment model.

Table 1's API-centric rows carry ``b`` (rebuild service) and ``d``
(redeploy service) operations; §2 notes that schema adaptation requires
"recompiling C, updating and uploading its container images, and
redeploying C using a rolling update in Kubernetes".  This package makes
those operations concrete and timeable:

- :mod:`objects`   -- images, deployments, pods, nodes,
- :mod:`registry`  -- build + push cost model for container images,
- :mod:`scheduler` -- pod placement over nodes with capacity,
- :mod:`rollout`   -- rolling updates with availability accounting.
"""

from repro.cluster.objects import Deployment, Image, Node, Pod, PodPhase
from repro.cluster.registry import BuildResult, ImageRegistry
from repro.cluster.scheduler import Cluster
from repro.cluster.rollout import RolloutResult, rolling_update
from repro.cluster.autoscaler import HorizontalAutoscaler, ScalingEvent
from repro.cluster.shardfleet import ShardFleet

__all__ = [
    "BuildResult",
    "Cluster",
    "HorizontalAutoscaler",
    "ScalingEvent",
    "ShardFleet",
    "Deployment",
    "Image",
    "ImageRegistry",
    "Node",
    "Pod",
    "PodPhase",
    "RolloutResult",
    "rolling_update",
]
