"""Rolling updates with availability accounting.

"This further leads to rebuilding and redeploying services, which also
requires careful planning in the production environment to avoid
application downtime" (paper §2).  :func:`rolling_update` replaces a
deployment's pods with a new image, ``max_unavailable`` at a time, and
records whether the service ever lost all ready replicas.
"""

from dataclasses import dataclass, field

from repro.errors import ClusterError


@dataclass
class RolloutResult:
    """Outcome of one rolling update."""

    deployment: str
    new_image: str
    started_at: float
    finished_at: float
    pods_replaced: int
    had_downtime: bool
    timeline: list = field(default_factory=list)  # (time, event) pairs

    @property
    def duration(self):
        return self.finished_at - self.started_at


def rolling_update(cluster, deployment_name, new_image, max_unavailable=1):
    """Perform a rolling update; returns a process event (RolloutResult).

    Surge strategy: start a new pod first, then stop an old one, keeping
    at least ``replicas - max_unavailable`` ready pods at all times.
    """
    if max_unavailable < 1:
        raise ClusterError("max_unavailable must be >= 1")
    return cluster.env.process(
        _rolling_update(cluster, deployment_name, new_image, max_unavailable)
    )


def _rolling_update(cluster, deployment_name, new_image, max_unavailable):
    env = cluster.env
    deployment = cluster.deployment(deployment_name)
    old_pods = [p for p in deployment.pods if p.image.ref != new_image.ref]
    started_at = env.now
    timeline = [(env.now, f"rollout to {new_image.ref} started")]
    had_downtime = not deployment.available
    replaced = 0

    # Replace in waves of max_unavailable using surge (up then down).
    pending = list(old_pods)
    while pending:
        wave = pending[: max_unavailable]
        pending = pending[max_unavailable :]
        new_pod_events = [
            cluster.start_pod(deployment, new_image) for _ in wave
        ]
        for event in new_pod_events:
            pod = yield event
            timeline.append((env.now, f"started {pod.name}"))
        if not deployment.available:
            had_downtime = True
        for old_pod in wave:
            yield cluster.stop_pod(old_pod)
            timeline.append((env.now, f"stopped {old_pod.name}"))
            if not deployment.available:
                had_downtime = True
        replaced += len(wave)

    deployment.image = new_image
    deployment.generation += 1
    timeline.append((env.now, "rollout complete"))
    return RolloutResult(
        deployment=deployment_name,
        new_image=new_image.ref,
        started_at=started_at,
        finished_at=env.now,
        pods_replaced=replaced,
        had_downtime=had_downtime,
        timeline=timeline,
    )
