"""Horizontal autoscaling for deployments (paper §5).

"Deployment issues such as load balancing, autoscaling, and observability
[...] are also worth exploring."  A :class:`HorizontalAutoscaler>`
periodically samples a load metric for one deployment (a callable --
e.g. requests in flight, reconciler queue depth) and scales the replica
count toward ``target_load_per_replica``, bounded by min/max, with a
cooldown to avoid flapping.
"""

from dataclasses import dataclass, field
import math

from repro.errors import ClusterError


@dataclass
class ScalingEvent:
    time: float
    deployment: str
    from_replicas: int
    to_replicas: int
    load: float


@dataclass
class HorizontalAutoscaler:
    """Scales one deployment to keep load-per-replica near the target."""

    cluster: object
    deployment_name: str
    metric: object  # callable() -> current total load
    target_load_per_replica: float
    min_replicas: int = 1
    max_replicas: int = 10
    interval: float = 5.0
    cooldown: float = 10.0
    events: list = field(default_factory=list)
    _running: bool = field(default=False, repr=False)
    _last_scaled: float = field(default=-math.inf, repr=False)

    def __post_init__(self):
        if self.target_load_per_replica <= 0:
            raise ClusterError("target_load_per_replica must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ClusterError("need 1 <= min_replicas <= max_replicas")
        if self.interval <= 0 or self.cooldown < 0:
            raise ClusterError("invalid interval/cooldown")

    def desired_replicas(self, load, current):
        """The standard HPA formula: ceil(load / target), clamped."""
        if load <= 0:
            raw = self.min_replicas
        else:
            raw = math.ceil(load / self.target_load_per_replica)
        return max(self.min_replicas, min(self.max_replicas, raw))

    def start(self):
        if self._running:
            return None
        self._running = True
        return self.cluster.env.process(self._run(self.cluster.env))

    def stop(self):
        self._running = False

    def _run(self, env):
        while self._running:
            yield env.timeout(self.interval)
            if not self._running:
                return
            yield env.process(self.reconcile_once(env))

    def reconcile_once(self, env):
        """One scaling decision (exposed for tests/benches)."""
        deployment = self.cluster.deployment(self.deployment_name)
        current = len(deployment.ready_pods)
        load = float(self.metric())
        desired = self.desired_replicas(load, current)
        if desired == current:
            return
        if env.now - self._last_scaled < self.cooldown:
            return
        self._last_scaled = env.now
        self.events.append(
            ScalingEvent(env.now, self.deployment_name, current, desired, load)
        )
        if desired > current:
            for _ in range(desired - current):
                yield self.cluster.start_pod(deployment, deployment.image)
        else:
            victims = deployment.ready_pods[desired:]
            for pod in victims:
                yield self.cluster.stop_pod(pod)
        deployment.replicas = desired
