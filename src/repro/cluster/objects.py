"""Cluster API objects: images, pods, deployments, nodes."""

import itertools
from dataclasses import dataclass, field

from repro.errors import ClusterError


@dataclass(frozen=True)
class Image:
    """A container image reference."""

    name: str
    tag: str
    size_mb: float = 200.0

    @property
    def ref(self):
        return f"{self.name}:{self.tag}"


class PodPhase:
    PENDING = "Pending"
    RUNNING = "Running"
    TERMINATING = "Terminating"
    TERMINATED = "Terminated"


_pod_ids = itertools.count(1)


@dataclass
class Pod:
    """One replica of a deployment."""

    deployment: str
    image: Image
    node: str = None
    phase: str = PodPhase.PENDING
    name: str = field(default="")
    started_at: float = None

    def __post_init__(self):
        if not self.name:
            self.name = f"{self.deployment}-{next(_pod_ids):04d}"

    @property
    def ready(self):
        return self.phase == PodPhase.RUNNING


@dataclass
class Deployment:
    """Desired state: image + replica count; owns its pods."""

    name: str
    image: Image
    replicas: int = 2
    pods: list = field(default_factory=list)
    generation: int = 1

    def __post_init__(self):
        if self.replicas < 1:
            raise ClusterError(f"deployment {self.name}: replicas must be >= 1")

    @property
    def ready_pods(self):
        return [p for p in self.pods if p.ready]

    @property
    def available(self):
        """True when at least one replica serves traffic."""
        return bool(self.ready_pods)

    def pods_running_image(self, image):
        return [p for p in self.pods if p.ready and p.image.ref == image.ref]


@dataclass
class Node:
    """A worker node with a pod capacity."""

    name: str
    capacity: int = 16
    pods: list = field(default_factory=list)

    @property
    def free(self):
        return self.capacity - len(self.pods)
