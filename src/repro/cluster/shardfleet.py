"""Elastic shard fleets: the cluster plane drives the data plane.

The paper's data-centric composition keeps compute and state decoupled;
this module closes the loop for the *state* side.  A :class:`ShardFleet`
runs a :class:`~repro.store.sharded.ShardedStore`'s shards as pods of a
cluster :class:`~repro.cluster.objects.Deployment`, lets a
:class:`~repro.cluster.HorizontalAutoscaler` scale the pod count from
live load signals (worker-queue depth plus the flow plane's AIMD
congestion penalty -- the same signals the obs plane scrapes), and
follows the ready-pod count with online ring resharding
(:meth:`ShardedStore.reshard`): the autoscaler decides *how many*, the
reshard engine moves the key ranges, and watch streams never notice.

Scaling bounds come from the store's
:class:`~repro.store.ring.Topology` (``min_shards``/``max_shards`` and
the :class:`~repro.store.ring.AutoscalePolicy`), so the spec object that
shapes the ring also shapes the fleet.
"""

from repro.cluster.autoscaler import HorizontalAutoscaler
from repro.cluster.objects import Image
from repro.cluster.rollout import rolling_update
from repro.errors import ConfigurationError
from repro.store.ring import AutoscalePolicy


class ShardFleet:
    """Runs one sharded store's shards as an autoscaled deployment."""

    def __init__(self, cluster, store, image=None, metric=None):
        if store.topology is None or store.shard_factory is None:
            raise ConfigurationError(
                f"store {getattr(store, 'name', store)!r} needs a Topology "
                "and a shard_factory to run as a fleet (elastic growth "
                "must be able to mint shard servers)"
            )
        self.cluster = cluster
        self.store = store
        self.env = store.env
        self.topology = store.topology
        self.policy = self.topology.autoscale or AutoscalePolicy()
        self.deployment_name = f"{store.name}-shards"
        self.image = image or Image(store.name, "shard-v1", size_mb=64.0)
        cluster.create_deployment(
            self.deployment_name, self.image, replicas=store.shard_count
        )
        self.autoscaler = HorizontalAutoscaler(
            cluster=cluster,
            deployment_name=self.deployment_name,
            metric=metric or self.load,
            target_load_per_replica=self.policy.target_queue_depth,
            min_replicas=self.topology.min_shards,
            max_replicas=self.topology.effective_max_shards,
            interval=self.policy.interval,
            cooldown=self.policy.cooldown,
        )
        self.reshards_driven = 0
        self._running = False

    # -- load signal ---------------------------------------------------------

    def load(self):
        """Fleet-wide load: queued ops + AIMD congestion penalty.

        Each shard contributes its worker-queue depth; a shard whose
        admission controller has squeezed a priority class to scale
        ``s`` contributes a further ``(1 - s) * target`` -- a fully
        throttled class weighs like one shard's worth of target load,
        so sustained AIMD pressure forces a scale-up even when sheds
        keep the visible queues short.
        """
        total = 0.0
        for shard in self.store.shards:
            total += shard._worker_pool.queued
            admission = getattr(shard, "admission", None)
            if admission is not None:
                for entry in admission.stats()["classes"].values():
                    total += ((1.0 - entry["scale"])
                              * self.policy.target_queue_depth)
        return total

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Start the autoscaler and the pod-count -> ring sync process."""
        if self._running:
            return None
        self._running = True
        self.autoscaler.start()
        return self.env.process(self._sync())

    def stop(self):
        self._running = False
        self.autoscaler.stop()

    def _sync(self):
        """Follow the deployment's ready-pod count with the ring.

        The autoscaler moves pods; this process reshards the store to
        match once the pods are actually ready (scale-up waits for image
        pull + startup, mirroring how real state stores only take
        ownership after their replica is serving).  One transition at a
        time: a reshard in flight is left to finish before the next
        decision is acted on.
        """
        while self._running:
            yield self.env.timeout(self.policy.interval)
            if not self._running:
                return
            deployment = self.cluster.deployment(self.deployment_name)
            ready = len(deployment.ready_pods)
            lo, hi = self.topology.min_shards, self.topology.effective_max_shards
            desired = max(lo, min(hi, ready))
            if desired == self.store.shard_count or ready < 1:
                continue
            if self.store.resharder.active:
                continue
            self.reshards_driven += 1
            yield self.store.reshard(desired)

    # -- rollouts ------------------------------------------------------------

    def rollout(self, image, max_unavailable=1):
        """Rolling-update the shard pods to a new image.

        Pure cluster-plane motion: the ring (and so key ownership) is
        untouched; the deployment surges one pod at a time like any
        other rolling update.  Returns the rollout's process event.
        """
        self.image = image
        return rolling_update(self.cluster, self.deployment_name, image,
                              max_unavailable=max_unavailable)

    def stats(self):
        deployment = self.cluster.deployment(self.deployment_name)
        return {
            "ready_pods": len(deployment.ready_pods),
            "shards": self.store.shard_count,
            "reshards_driven": self.reshards_driven,
            "scaling_events": len(self.autoscaler.events),
            "load": self.load(),
        }
