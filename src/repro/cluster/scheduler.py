"""Pod scheduling and the cluster facade."""

from repro.cluster.objects import Deployment, Node, Pod, PodPhase
from repro.errors import ClusterError


class Cluster:
    """Nodes + deployments + a least-loaded scheduler.

    Timing model: container image pull (size / node bandwidth, skipped
    when cached on the node) plus application startup time.
    """

    pull_mb_per_second = 80.0
    pod_startup_seconds = 2.0
    pod_stop_seconds = 1.0

    def __init__(self, env, nodes=None):
        self.env = env
        self.nodes = list(nodes) if nodes else [Node("node-1"), Node("node-2")]
        self.deployments = {}
        self._node_image_cache = {n.name: set() for n in self.nodes}

    # -- deployments ------------------------------------------------------------

    def create_deployment(self, name, image, replicas=2):
        if name in self.deployments:
            raise ClusterError(f"deployment {name!r} already exists")
        deployment = Deployment(name, image, replicas)
        self.deployments[name] = deployment
        return self.env.process(self._scale_up(deployment, replicas, image))

    def deployment(self, name):
        try:
            return self.deployments[name]
        except KeyError:
            raise ClusterError(f"no deployment named {name!r}") from None

    # -- pod lifecycle -------------------------------------------------------------

    def start_pod(self, deployment, image):
        """Schedule + start one pod; returns a process event with the Pod."""
        return self.env.process(self._start_pod(deployment, image))

    def _start_pod(self, deployment, image):
        node = self._pick_node()
        pod = Pod(deployment=deployment.name, image=image, node=node.name)
        node.pods.append(pod)
        deployment.pods.append(pod)
        if image.ref not in self._node_image_cache[node.name]:
            yield self.env.timeout(image.size_mb / self.pull_mb_per_second)
            self._node_image_cache[node.name].add(image.ref)
        yield self.env.timeout(self.pod_startup_seconds)
        pod.phase = PodPhase.RUNNING
        pod.started_at = self.env.now
        return pod

    def stop_pod(self, pod):
        """Gracefully terminate one pod; returns a process event."""
        return self.env.process(self._stop_pod(pod))

    def _stop_pod(self, pod):
        pod.phase = PodPhase.TERMINATING
        yield self.env.timeout(self.pod_stop_seconds)
        pod.phase = PodPhase.TERMINATED
        for node in self.nodes:
            if pod in node.pods:
                node.pods.remove(pod)
        deployment = self.deployments.get(pod.deployment)
        if deployment and pod in deployment.pods:
            deployment.pods.remove(pod)

    def _scale_up(self, deployment, count, image):
        pods = []
        for _ in range(count):
            pod = yield self.start_pod(deployment, image)
            pods.append(pod)
        return pods

    def _pick_node(self):
        candidates = [n for n in self.nodes if n.free > 0]
        if not candidates:
            raise ClusterError("no schedulable node (all at capacity)")
        return min(candidates, key=lambda n: len(n.pods))
