"""Exception hierarchy shared across the Knactor reproduction.

Subsystems define their own narrow exceptions, all rooted at
:class:`ReproError` so callers can catch framework errors without also
swallowing programming errors (``TypeError`` and friends).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or reconfigured with invalid settings."""


class SchemaError(ReproError):
    """Schema definition, registration, or validation failure."""


class StoreError(ReproError):
    """Base class for data-store failures."""


class NotFoundError(StoreError):
    """The requested key/object/pool does not exist."""


class QueryError(StoreError):
    """A declarative query is malformed or failed mid-pipeline.

    Raised by the shared query core (:mod:`repro.query`) for bad
    operator specs, unknown operators/aggregations, a ``sort`` over a
    field no record carries, and un-orderable mixed-type sorts -- always
    naming the offending operator spec in the message.  Subclasses
    :class:`StoreError` so pre-extraction handlers (the engine used to
    live in ``repro.store.zql``) keep catching it.
    """


class ConflictError(StoreError):
    """Optimistic-concurrency conflict: the object changed under the writer."""


class AlreadyExistsError(StoreError):
    """Create was attempted for a key that already exists."""


class CrossShardTxnError(StoreError):
    """A transaction's keys span multiple shards and no cross-shard mode
    was selected.

    Single-shard transactions stay the default because they are atomic
    for free (one server, one commit order).  A batch whose keys hash to
    several shards must opt into the cross-shard transactional plane:
    ``txn(ops, mode="2pc")`` (atomic, blocks on in-doubt participants) or
    ``txn(ops, mode="saga")`` (available, compensates on failure) -- see
    ``docs/transactions.md``.

    ``shard_map`` carries the offending ``key -> owner shard`` mapping
    (shard *locations*, not positional indices, so the report stays
    meaningful across live resharding) and ``ring_version`` records the
    ring version the ownership was computed at.
    """

    def __init__(self, message, shard_map=None, ring_version=None):
        super().__init__(message)
        self.shard_map = dict(shard_map or {})
        self.ring_version = ring_version


class ShardMovedError(StoreError):
    """The addressed key range is sealed or no longer owned by this shard.

    Raised by the write fence during a live reshard cutover: once a
    moved range is sealed on its old owner, writes there are rejected
    until the ring flips and the client re-routes.  Deliberately NOT
    retryable at the per-shard retry layer -- retrying against the same
    (old) owner can never succeed; the sharded client catches this and
    re-resolves ownership against the live ring instead.
    """

    retryable = False

    def __init__(self, message, key=None, ring_version=None, owner=None):
        super().__init__(message)
        self.key = key
        self.ring_version = ring_version
        self.owner = owner


class UnavailableError(StoreError):
    """The component is temporarily down/unreachable; safe to retry.

    Raised for crashed or failing-over stores, partitioned links, and
    aborted in-flight operations.  ``retryable`` marks it for the
    resilience layer (:mod:`repro.faults.retry`).
    """

    retryable = True


class CircuitOpenError(UnavailableError):
    """A circuit breaker rejected the call without issuing it."""


class OverloadedError(UnavailableError):
    """Admission control (or a bounded queue) shed the request.

    The component is up but refusing work to stay inside its queue
    bounds -- graceful degradation instead of unbounded buffering.
    Retryable (inherited): clients behind a
    :class:`repro.faults.RetryPolicy` back off and re-offer the work,
    which is exactly the AIMD response the limiter wants to induce.
    """


class DeadlineExceededError(ReproError):
    """A client-side timeout elapsed before the operation completed.

    Retryable: the attempt may have been lost to a fault.  Note the
    abandoned attempt can still complete server-side (at-least-once
    semantics); idempotent operations are safe to retry.
    """

    retryable = True


class AccessDeniedError(ReproError):
    """An access-control policy rejected the operation."""


class DXGError(ReproError):
    """Base class for data-exchange-graph failures."""


class DXGParseError(DXGError):
    """The DXG specification could not be parsed."""


class DXGAnalysisError(DXGError):
    """Static analysis rejected the DXG (e.g. a dependency cycle)."""


class ExpressionError(DXGError):
    """A DXG expression is invalid or failed to evaluate."""


class RPCError(ReproError):
    """Base class for RPC-baseline failures."""


class IDLError(RPCError):
    """The interface-definition file could not be parsed."""


class RPCStatusError(RPCError):
    """An RPC completed with a non-OK status code."""

    def __init__(self, code, message=""):
        super().__init__(f"rpc failed with status {code}: {message}")
        self.code = code
        self.message = message


class ClusterError(ReproError):
    """Deployment/rollout failure in the miniature cluster model."""
