"""Command-line interface for operating knactors (the paper's CLI)."""
