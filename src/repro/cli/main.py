"""The ``knactor`` command-line tool.

Subcommands:

- ``knactor demo retail|smarthome``   -- run an example app end-to-end,
- ``knactor describe retail|smarthome`` -- print the runtime topology
  (knactors, stores, schemas, grants),
- ``knactor table1``                  -- regenerate Table 1,
- ``knactor table2 [--orders N]``     -- regenerate Table 2,
- ``knactor analyze FILE``            -- statically analyze a DXG file,
- ``knactor bench shard-scaling|zero-copy|...|federation`` -- run a benchmark,
- ``knactor serve retail --realtime [--port N]`` -- serve the retail app
  over a real TCP socket on the wall-clock backend,
- ``knactor trace export FILE``       -- Chrome trace-event JSON of a run,
- ``knactor trace request KEY``       -- one order's causal DAG + critical path,
- ``knactor top``                     -- text dashboard of every metric,
- ``knactor version``.
"""

import argparse
import sys

from repro._version import __version__


def cmd_version(_args):
    print(f"knactor {__version__}")
    return 0


def cmd_demo(args):
    if args.app == "retail":
        if args.chaos:
            # Chaos always runs on the apiserver backend: its WAL makes
            # crash recovery lossless, which is the property the run
            # asserts.  MemKV loses state on crash by design.
            from repro.faults.chaos import describe_report, run_retail_chaos

            report = run_retail_chaos(
                seed=args.chaos_seed, orders=args.orders
            )
            print(describe_report(report))
            return 0 if report["converged"] else 1
        from repro.apps.retail.knactor_app import RetailKnactorApp
        from repro.apps.retail.workload import OrderWorkload
        from repro.core.optimizer import PROFILES

        app = RetailKnactorApp.build(profile=PROFILES[args.profile])
        workload = OrderWorkload(seed=7)
        for _ in range(args.orders):
            key, data = workload.next_order()
            data["email"] = "shopper@example.com"
            app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=60.0)
        for key in app.orders_placed:
            order = app.env.run(until=app.order(key))["data"]
            print(
                f"{key}: status={order['status']} "
                f"tracking={order.get('trackingID')} "
                f"shippingCost={order.get('shippingCost')}"
            )
        if args.telemetry:
            import json

            from repro.metrics.telemetry import runtime_snapshot
            from repro.obs.slo import TraceLatencySLO

            print("\ntelemetry snapshot:")
            print(json.dumps(runtime_snapshot(app.runtime), indent=2))
            spec = TraceLatencySLO(
                "exchange-latency", integrator="retail-cast",
                target_seconds=0.1,
            )
            print(spec.evaluate_trace(app.tracer).describe())
    else:
        from repro.apps.smarthome import SmartHomeKnactorApp

        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        print(f"lamp changes: {len(app.lamp_device.changes)}")
        print(f"house kWh   : {app.house.kwh_total:.6f}")
        [report] = app.env.run(until=app.energy_report())
        print(f"analytics   : {report}")
    return 0


def cmd_describe(args):
    if args.app == "retail":
        from repro.apps.retail.knactor_app import RetailKnactorApp
        from repro.core.optimizer import K_REDIS

        app = RetailKnactorApp.build(profile=K_REDIS)
        print(app.runtime.describe())
    else:
        from repro.apps.smarthome import SmartHomeKnactorApp

        app = SmartHomeKnactorApp.build()
        print(app.runtime.describe())
    return 0


def cmd_table1(_args):
    from repro.apps.retail.tasks import all_tasks
    from repro.metrics.report import Table

    table = Table(
        ["Task", "API ops", "KN ops", "API files", "KN files",
         "API SLOC", "KN SLOC"],
        title="Table 1: composition cost",
    )
    for comparison in all_tasks():
        table.add_row(*comparison.row())
    print(table.render())
    return 0


def cmd_table2(args):
    from repro.apps.retail.measure import run_knactor_setup, run_rpc_setup
    from repro.metrics.report import Table

    stages = ("C-I", "I", "I-S", "S", "Prop.", "Total")
    table = Table(["Setup"] + list(stages),
                  title=f"Table 2: latency breakdown (ms, {args.orders} requests)")
    breakdowns = {"RPC": run_rpc_setup(orders=args.orders)}
    for setup in ("K-apiserver", "K-redis", "K-redis-udf"):
        breakdowns[setup] = run_knactor_setup(setup, orders=args.orders)
    for name, bd in breakdowns.items():
        row = bd.row()
        table.add_row(
            name,
            *[None if row[s] is None else round(row[s], 2) for s in stages],
        )
    print(table.render())
    return 0


def cmd_analyze(args):
    from repro.core.dxg import analyze, parse_dxg, standard_functions
    from repro.core.dxg.planner import plan

    try:
        with open(args.file) as f:
            text = f.read()
        spec = parse_dxg(text)
    except Exception as exc:  # surfaced to the user, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = analyze(spec, functions=standard_functions())
    print(f"inputs     : {', '.join(sorted(spec.aliases))}")
    print(f"assignments: {len(spec.assignments)}")
    for assignment in spec.assignments:
        print(f"  {assignment.describe()}")
    print(f"analysis   : {report.summary()}")
    print(plan(spec).describe())
    return 0 if report.ok else 1


def _run_traced_retail(profile, orders):
    """One seeded retail run with the observability plane attached."""
    from repro.apps.retail.knactor_app import RetailKnactorApp
    from repro.apps.retail.workload import OrderWorkload
    from repro.core.optimizer import PROFILES

    app = RetailKnactorApp.build(profile=PROFILES[profile], obs=True)
    workload = OrderWorkload(seed=7)
    for _ in range(orders):
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    return app


def cmd_trace_export(args):
    import json

    app = _run_traced_retail(args.profile, args.orders)
    # Causal spans (per-request DAG) and the latency tracer's flat
    # events land in one file; distinct pid tracks keep them apart.
    entries = app.runtime.obs.causal.to_chrome_trace()
    entries += app.tracer.to_chrome_trace()
    with open(args.output, "w") as f:
        json.dump({"traceEvents": entries}, f)
    print(f"wrote {len(entries)} trace events to {args.output}")
    print("open chrome://tracing (or https://ui.perfetto.dev) to view")
    return 0


def cmd_trace_request(args):
    app = _run_traced_retail(args.profile, args.orders)
    causal = app.runtime.obs.causal
    key = args.key
    trace_id = causal.find_trace(order=key)
    if trace_id is None and not key.startswith("order/"):
        trace_id = causal.find_trace(order=f"order/{key}")
    if trace_id is None:
        placed = ", ".join(app.orders_placed) or "none"
        print(f"error: no trace for order {key!r} (placed: {placed})",
              file=sys.stderr)
        return 1
    print(causal.request_report(trace_id))
    return 0


def cmd_top(args):
    if getattr(args, "slo", False):
        return _cmd_top_slo(args)
    if getattr(args, "elastic", False):
        return _cmd_top_elastic(args)
    app = _run_traced_retail(args.profile, args.orders)
    print(app.runtime.obs.dashboard())
    return 0


def _cmd_top_slo(args):
    """`knactor top --slo`: burn rates and error budget under load.

    Drives the sensor-fleet scenario through a seeded flash crowd with
    admission control armed -- the shed traffic burns the availability
    budget -- while a :class:`~repro.obs.slo.BurnRateTracker` samples
    good/total counts on the schedule clock.  Prints the SLO report,
    the per-window burn rates, and the error budget remaining for each
    objective.
    """
    from repro.flow import FlowConfig
    from repro.load import (
        FlashCrowd,
        LoadGenerator,
        SensorFleetLoadScenario,
        TrafficClass,
        ZipfKeys,
    )
    from repro.obs.slo import BurnRateTracker, evaluate

    devices = 5_000
    scenario = SensorFleetLoadScenario(
        devices=devices,
        flow=FlowConfig(admission_rate=60, admission_burst=20,
                        admission_queue_high=4),
    )
    classes = [
        TrafficClass(
            name="devices",
            arrivals=FlashCrowd(base_rate=25.0, spike_rate=300.0,
                                spike_at=1.0, spike_duration=0.8),
            keys=ZipfKeys(devices, key_format="device-{:06d}"),
            principal="device-fleet",
        ),
    ]
    specs = scenario.slos()
    tracker = BurnRateTracker(
        scenario.env, scenario.registry, specs, interval=0.25,
    )
    tracker.start()
    duration = 3.0

    # Stop sampling just past the load window: burn-rate windows then
    # reflect the loaded period, and the tracker's periodic tick stops
    # keeping the quiesce loop alive for its full budget.
    def _stop_tracker():
        yield scenario.env.timeout(duration + 0.5)
        tracker.sample()
        tracker.stop()

    scenario.env.process(_stop_tracker())
    result = LoadGenerator(scenario, classes, duration=duration, seed=7).run()
    report = evaluate(specs, scenario.registry, tracker=tracker,
                      scenario=scenario.name, env=scenario.env)

    summary = result.summary()
    print(f"load: {summary['offered']} offered, "
          f"{summary['completed']} ok, {summary['rejected']} rejected, "
          f"{summary['failed']} failed "
          f"(p50 {summary['p50_s'] * 1000:.2f} ms, "
          f"p99 {summary['p99_s'] * 1000:.2f} ms)")
    print(report.describe())
    print("burn rates (budget consumption vs sustainable, per window):")
    for spec in specs:
        budget = tracker.error_budget_remaining(spec)
        budget_txt = (f"{budget * 100:.1f}% budget left"
                      if budget is not None else "no data")
        print(f"  {spec.name}: {budget_txt}")
        for entry in tracker.burn_rates(spec):
            fmt = lambda burn: f"{burn:.2f}x" if burn is not None else "-"
            state = "ALERT" if entry["alert"] else "ok"
            print(f"    {entry['long_seconds']:g}s/"
                  f"{entry['short_seconds']:g}s window: "
                  f"long {fmt(entry['long_burn'])} "
                  f"short {fmt(entry['short_burn'])} "
                  f"(page at {entry['factor']:g}x) [{state}]")
    firing = tracker.alerts()
    print(f"alerts firing: {len(firing)}"
          + (" -- " + ", ".join(sorted({name for name, _ in firing}))
             if firing else ""))
    return 0


def _cmd_top_elastic(args):
    """`knactor top --elastic`: the dashboard of a live-reshard run.

    Runs the retail app on a sharded Object backend inside a cluster
    :class:`~repro.cluster.ShardFleet` whose autoscaler drives shard
    count from queue-depth load, then prints the metric dashboard --
    ring version, shard count, migration volume, and every scaling
    event next to the usual series.
    """
    from repro.apps.retail.knactor_app import RetailKnactorApp
    from repro.apps.retail.workload import OrderWorkload
    from repro.cluster import Cluster, ShardFleet
    from repro.core.optimizer import PROFILES
    from repro.store import AutoscalePolicy, Topology

    topology = Topology(
        shards=2, min_shards=1, max_shards=4,
        autoscale=AutoscalePolicy(target_queue_depth=2.0, interval=0.5,
                                  cooldown=1.0),
    )
    app = RetailKnactorApp.build(profile=PROFILES[args.profile], obs=True,
                                 topology=topology)
    backend = app.runtime.exchanges["object"].backend
    cluster = Cluster(app.env)
    fleet = ShardFleet(cluster, backend)
    app.runtime.obs.watch_autoscalers([fleet.autoscaler])
    fleet.start()
    workload = OrderWorkload(seed=7)
    for _ in range(args.orders):
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    fleet.stop()
    print(app.runtime.obs.dashboard())
    stats = fleet.stats()
    print(f"fleet: shards={stats['shards']} "
          f"ready_pods={stats['ready_pods']} "
          f"scaling_events={stats['scaling_events']} "
          f"reshards_driven={stats['reshards_driven']}")
    return 0


#: bench subcommand name -> module under benchmarks/.
BENCHMARKS = {
    "shard-scaling": "bench_shard_scaling",
    "zero-copy": "bench_zero_copy_delta",
    "obs-overhead": "bench_obs_overhead",
    "overload": "bench_overload",
    "txn-chaos": "bench_txn_chaos",
    "reshard": "bench_reshard",
    "realtime": "bench_realtime",
    "fleet": "bench_fleet",
    "federation": "bench_federation",
}


def cmd_serve(args):
    if args.app != "retail":
        print(f"error: no server for app {args.app!r}", file=sys.stderr)
        return 1
    if not args.realtime:
        print(
            "error: serving a real socket needs the wall-clock backend; "
            "pass --realtime",
            file=sys.stderr,
        )
        return 1
    from repro.apps.retail.rest_gateway import serve_retail
    from repro.core.optimizer import PROFILES

    app, _gateway, listener = serve_retail(
        host=args.host, port=args.port,
        profile=PROFILES[args.profile], shards=args.shards,
    )
    print(f"retail gateway listening on {listener.address} "
          f"(backend=realtime, shards={args.shards})")
    print("  POST /orders, GET /orders/{key}, GET /healthz, GET /metrics")
    print("Ctrl-C to stop.")
    try:
        app.env.run()
    except KeyboardInterrupt:
        pass
    finally:
        listener.stop()
        print(f"served {listener.connections_accepted} connection(s), "
              f"{len(app.orders_placed)} order(s) placed")
    return 0


def cmd_bench(args):
    name = BENCHMARKS.get(args.bench)
    if name is None:
        print(f"error: unknown benchmark {args.bench!r}", file=sys.stderr)
        return 1
    module = _load_benchmark(name)
    if module is None:
        print(
            f"error: benchmarks/{name}.py not found "
            "(run from a repository checkout)",
            file=sys.stderr,
        )
        return 1
    argv = ["--smoke"] if args.smoke else []
    if args.out:
        argv += ["--out", args.out]
    return module.main(argv)


def _load_benchmark(name):
    """Load a benchmark module from the repository's ``benchmarks/`` dir.

    Benchmarks live outside the installed package (they are artifacts of
    the checkout, like the CI workflow), so resolve them relative to the
    working directory first, then relative to the source tree.
    """
    import importlib.util
    from pathlib import Path

    candidates = [
        Path.cwd() / "benchmarks" / f"{name}.py",
        Path(__file__).resolve().parents[3] / "benchmarks" / f"{name}.py",
    ]
    for path in candidates:
        if path.is_file():
            spec = importlib.util.spec_from_file_location(name, path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return None


def build_parser():
    parser = argparse.ArgumentParser(
        prog="knactor", description="Knactor framework CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("version").set_defaults(fn=cmd_version)

    demo = sub.add_parser("demo", help="run an example app")
    demo.add_argument("app", choices=["retail", "smarthome"])
    demo.add_argument("--profile", default="K-redis",
                      choices=["K-apiserver", "K-redis", "K-redis-udf"])
    demo.add_argument("--orders", type=int, default=3)
    demo.add_argument("--telemetry", action="store_true",
                      help="print a runtime snapshot and SLO report (retail)")
    demo.add_argument("--chaos", action="store_true",
                      help="run the retail app under a seeded fault schedule "
                           "(store crash, partition, drop window) and report "
                           "convergence")
    demo.add_argument("--chaos-seed", type=int, default=0,
                      help="seed for the fault schedule and workload "
                           "(default 0)")
    demo.set_defaults(fn=cmd_demo)

    describe = sub.add_parser("describe", help="print runtime topology")
    describe.add_argument("app", choices=["retail", "smarthome"])
    describe.set_defaults(fn=cmd_describe)

    sub.add_parser("table1", help="regenerate Table 1").set_defaults(fn=cmd_table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--orders", type=int, default=10)
    table2.set_defaults(fn=cmd_table2)

    analyze = sub.add_parser("analyze", help="statically analyze a DXG file")
    analyze.add_argument("file")
    analyze.set_defaults(fn=cmd_analyze)

    bench = sub.add_parser("bench", help="run a performance benchmark")
    bench.add_argument("bench", choices=sorted(BENCHMARKS))
    bench.add_argument("--smoke", action="store_true",
                       help="small sweep (what CI runs)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: repo root)")
    bench.set_defaults(fn=cmd_bench)

    serve = sub.add_parser(
        "serve", help="serve an app over a real TCP socket (realtime)"
    )
    serve.add_argument("app", choices=["retail"])
    serve.add_argument("--realtime", action="store_true",
                       help="run on the wall-clock asyncio backend "
                            "(required: sockets have no meaning in the sim)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--profile", default="K-redis",
                       choices=["K-apiserver", "K-redis", "K-redis-udf"])
    serve.add_argument("--shards", type=int, default=1,
                       help="Object-backend shard count")
    serve.set_defaults(fn=cmd_serve)

    trace = sub.add_parser(
        "trace", help="causal tracing over a seeded retail run"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    export = trace_sub.add_parser(
        "export", help="export causal + latency spans as Chrome trace JSON"
    )
    export.add_argument("output", help="path for the trace JSON file")
    export.add_argument("--orders", type=int, default=2)
    export.add_argument("--profile", default="K-redis",
                        choices=["K-apiserver", "K-redis", "K-redis-udf"])
    export.set_defaults(fn=cmd_trace_export)

    request = trace_sub.add_parser(
        "request", help="print one order's causal DAG and critical path"
    )
    request.add_argument("key", help="order key (e.g. order/o00001 or o00001)")
    request.add_argument("--orders", type=int, default=2)
    request.add_argument("--profile", default="K-redis",
                         choices=["K-apiserver", "K-redis", "K-redis-udf"])
    request.set_defaults(fn=cmd_trace_request)

    top = sub.add_parser(
        "top", help="text dashboard of every metric after a retail run"
    )
    top.add_argument("--orders", type=int, default=3)
    top.add_argument("--profile", default="K-redis",
                     choices=["K-apiserver", "K-redis", "K-redis-udf"])
    top.add_argument("--elastic", action="store_true",
                     help="run on an autoscaled shard fleet (live "
                          "resharding) and show ring/reshard metrics")
    top.add_argument("--slo", action="store_true",
                     help="drive the sensor fleet through a flash crowd "
                          "and show live burn rates plus error-budget "
                          "remaining per objective")
    top.set_defaults(fn=cmd_top)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
