"""Online shard split/merge for :class:`~repro.store.sharded.ShardedStore`.

The migration protocol, per ring-membership change (one member at a
time; a multi-step reshard is a sequence of these):

1. **Install** (grow only): the new shard server joins the fault and
   routing surfaces -- live merged watches grow a branch for it -- but
   the ring still routes nothing to it.
2. **Catch-up watch**: for every moved range, a migration watch on the
   source shard starts buffering its commits (the same delta-watch
   plane apps use, so the copy rides the existing gap-detect/resync
   machinery), and a pump applies them to the destination through the
   *quiet* data plane (``op_ingest``: no watch events, source revisions
   preserved, stale entries dropped by revision compare).
3. **Snapshot**: ``op_export`` streams the moved ranges' full-fidelity
   state (labels, timestamps) to the destination; the pump keeps
   applying whatever commits land during and after the copy.
4. **Seal**: once the source's in-doubt transactions drain, the moved
   ranges are sealed -- writes there now fail fast with
   :class:`~repro.errors.ShardMovedError` and the sharded client backs
   off and re-routes.  Reads stay open (the sealed state is frozen).
5. **Drain**: one ``cutover_drain`` window lets in-flight commits and
   their watch deliveries land; the pump applies the stragglers.
6. **Reconcile**: one authoritative export/ingest pass per moved range
   set -- the documented "one GET resync per moved range" -- restores
   label/timestamp fidelity and removes keys deleted during catch-up.
7. **Flip**: the ring commits the membership change (version bump).
   Clients re-resolve ownership on their next op; fenced writers
   un-wedge onto the new owner.  Seals clear, the source's moved keys
   are purged quietly, and (shrink) the old shard retires out of the
   routing/watch surfaces.

Watch streams never close for a reshard: events for a moved key arrive
on the old owner's branch up to the seal and on the new owner's branch
from the flip, with the per-key revision order globally monotonic
(ingest floors the destination's revision counter at the source's).
"""

from repro.errors import ConfigurationError, StoreError
from repro.store.ring import key_in_ranges
from repro.store.sharded import _shard_client

#: How often the catch-up pump drains its buffer onto the destination.
PUMP_INTERVAL = 0.005

#: How long to wait for a source shard's in-doubt 2PC participants to
#: drain before sealing anyway (coordinator recovery owns stragglers).
IN_DOUBT_TIMEOUT = 5.0


class _MigrationJob:
    """Moves one set of ring ranges from one source shard to one dest."""

    def __init__(self, engine, src, dest, ranges):
        self.engine = engine
        self.env = engine.env
        self.src = src
        self.dest = dest
        self.ranges = list(ranges)
        location = f"resharder@{engine.store.name}"
        self.src_client = _shard_client(src, location)
        self.dest_client = _shard_client(dest, location)
        self.moved_keys = set()
        self._buffer = []
        self._stop = False
        # Catch-up starts BEFORE the snapshot export: anything the
        # export misses is in the buffer, anything both carry is
        # deduplicated by revision on ingest.
        self.watch = self.src_client.watch(self._buffer.append)
        self.pump_proc = self.env.process(self._pump())
        self.copy_proc = self.env.process(self._copy())

    def _copy(self):
        export = yield self.src_client.request("export", ranges=self.ranges)
        yield self.dest_client.request(
            "ingest", entries=export["entries"],
            revision_floor=export["revision"],
        )

    def _pump(self):
        from repro.store.base import DELETED

        while True:
            if self._buffer:
                events, self._buffer = self._buffer, []
                entries, removes = [], []
                for event in events:
                    if not key_in_ranges(event.key, self.ranges):
                        continue
                    if event.type == DELETED:
                        removes.append(event.key)
                        continue
                    entries.append({
                        "key": event.key,
                        "data": event.object,
                        "revision": event.revision,
                        # Approximate timestamps; the authoritative
                        # reconcile pass restores the source's exactly.
                        "created_at": event.committed_at,
                        "updated_at": event.committed_at,
                        "labels": {},
                    })
                if entries or removes:
                    yield self.dest_client.request(
                        "ingest", entries=entries, remove=removes,
                    )
                continue
            if self._stop:
                return
            yield self.env.timeout(PUMP_INTERVAL)

    def finish(self):
        """Drain the pump, then run the authoritative reconcile pass."""
        self._stop = True
        yield self.pump_proc
        self.watch.cancel()
        src_export = yield self.src_client.request(
            "export", ranges=self.ranges
        )
        dest_export = yield self.dest_client.request(
            "export", ranges=self.ranges
        )
        src_keys = {entry["key"] for entry in src_export["entries"]}
        stale = [entry["key"] for entry in dest_export["entries"]
                 if entry["key"] not in src_keys]
        yield self.dest_client.request(
            "ingest", entries=src_export["entries"], remove=stale,
            revision_floor=src_export["revision"], authoritative=True,
        )
        self.moved_keys = src_keys


class Resharder:
    """Drives live topology changes for one :class:`ShardedStore`."""

    def __init__(self, store):
        self.store = store
        self.env = store.env
        self.active = False
        self._stats = {
            "reshards": 0, "transitions": 0, "keys_moved": 0,
            "ranges_moved": 0, "resyncs": 0, "last_duration": 0.0,
        }

    def stats(self):
        return dict(self._stats)

    def reshard(self, shard_count):
        return self.env.process(self._reshard(shard_count))

    def _reshard(self, shard_count):
        topology = self.store.topology
        if not (topology.min_shards <= shard_count
                <= topology.effective_max_shards):
            raise ConfigurationError(
                f"shard count {shard_count} outside topology bounds "
                f"[{topology.min_shards}, {topology.effective_max_shards}]"
            )
        if self.active:
            raise StoreError(
                f"store {self.store.name!r} is already resharding"
            )
        self.active = True
        started = self.env.now
        try:
            while len(self.store.shards) < shard_count:
                yield self.env.process(self._grow_one())
            while len(self.store.shards) > shard_count:
                yield self.env.process(self._shrink_one())
        finally:
            self.active = False
        self._stats["reshards"] += 1
        self._stats["last_duration"] = self.env.now - started
        return self.store.ring.version

    # -- single-member transitions ------------------------------------------

    def _grow_one(self):
        store, ring = self.store, self.store.ring
        member, shard = store._install_shard()
        self._trace("reshard-grow", member=member,
                    ring_version=ring.version)
        moved = ring.preview_add(member)
        by_src = {}
        for lo, hi, src in moved:
            by_src.setdefault(src, []).append((lo, hi))
        jobs = [
            _MigrationJob(self, store.shard_by_id(src), shard, ranges)
            for src, ranges in by_src.items()
        ]
        yield from self._cutover(jobs, seal={
            src: ranges for src, ranges in by_src.items()
        })
        ring.add(member)
        for job in jobs:
            job.src.clear_sealed_ranges()
            # Quiet purge: the old owner forgets the moved keys (no
            # watch events -- observers follow the new owner's stream).
            if job.moved_keys:
                yield job.src_client.request(
                    "ingest", entries=[], remove=sorted(job.moved_keys),
                )
        self._account(moved, jobs)
        self._trace("reshard-grow-done", member=member,
                    ring_version=ring.version)

    def _shrink_one(self):
        store, ring = self.store, self.store.ring
        victim_member = store.shard_ids[-1]  # newest retires first
        victim = store.shard_by_id(victim_member)
        self._trace("reshard-shrink", member=victim_member,
                    ring_version=ring.version)
        moved = ring.preview_remove(victim_member)
        by_dest = {}
        for lo, hi, dest in moved:
            by_dest.setdefault(dest, []).append((lo, hi))
        jobs = [
            _MigrationJob(self, victim, store.shard_by_id(dest), ranges)
            for dest, ranges in by_dest.items()
        ]
        all_ranges = [(lo, hi) for lo, hi, _dest in moved]
        yield from self._cutover(jobs, seal={victim_member: all_ranges})
        ring.remove(victim_member)
        victim.clear_sealed_ranges()
        store._uninstall_shard(victim_member)
        self._account(moved, jobs)
        self._trace("reshard-shrink-done", member=victim_member,
                    ring_version=ring.version)

    def _cutover(self, jobs, seal):
        """Copy -> drain in-doubt -> seal -> drain -> reconcile."""
        store = self.store
        if jobs:
            yield self.env.all_of([job.copy_proc for job in jobs])
        for member in seal:
            yield self.env.process(
                self._drain_in_doubt(store.shard_by_id(member))
            )
        pending = store.ring.version + 1
        for member, ranges in seal.items():
            store.shard_by_id(member).seal_ranges(ranges, ring_version=pending)
        yield self.env.timeout(store.topology.cutover_drain)
        for job in jobs:
            yield self.env.process(job.finish())

    def _drain_in_doubt(self, shard):
        """Wait (bounded) for prepared-but-undecided 2PC state to clear.

        Sealing under an in-doubt transaction would let its later commit
        mutate a moved range behind the migration's back; stragglers
        past the timeout belong to coordinator recovery, which re-groups
        against the live ring anyway.
        """
        waited = 0.0
        while shard.in_doubt_txns and waited < IN_DOUBT_TIMEOUT:
            yield self.env.timeout(0.01)
            waited += 0.01

    # -- accounting ----------------------------------------------------------

    def _account(self, moved, jobs):
        self._stats["transitions"] += 1
        self._stats["ranges_moved"] += len(moved)
        self._stats["keys_moved"] += sum(len(j.moved_keys) for j in jobs)
        self._stats["resyncs"] += len(jobs)

    def _trace(self, what, **fields):
        tracer = self.store.shards[0].tracer if self.store.shards else None
        if tracer is not None:
            tracer.record("store", what, location=self.store.name, **fields)
