"""Shared plumbing for simulated data-store backends.

Every backend is split into a :class:`StoreServer` (owns the data, processes
requests with per-operation latency, pushes watch events) and a
:class:`StoreClient` (issued per caller location; adds network round-trip
time).  Client operations return simnet *processes*, so callers write::

    obj = yield client.get("orders/o-1")

Latency model
-------------
Each operation costs ``base + payload_size * per_byte`` seconds of
server-side time, where payload size is a rough serialized-JSON estimate.
The per-byte term is what the zero-copy optimization (paper §3.3) removes
for co-located clients.  Network time is taken from the shared
:class:`~repro.simnet.network.Network` between the caller's location and the
server's location; co-located callers pay nothing.
"""

import copy
from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.simnet.queue import Resource

#: Watch event types (mirroring the Kubernetes watch protocol).
ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"


def estimate_size(value):
    """Rough serialized size of a value, in bytes.

    Deliberately cheap: the simulation calls this on every operation.
    """
    if value is None:
        return 4
    if isinstance(value, bool):
        return 5
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 2
    if isinstance(value, (list, tuple)):
        return 2 + sum(estimate_size(v) + 1 for v in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in value.items()
        )
    return 16


@dataclass(frozen=True)
class OpLatency:
    """Server-side cost of one operation class."""

    base: float
    per_byte: float = 0.0

    def cost(self, size):
        return self.base + self.per_byte * size


@dataclass(frozen=True)
class WatchEvent:
    """One change notification delivered to a watcher."""

    type: str  # ADDED | MODIFIED | DELETED
    key: str
    object: dict
    revision: int


@dataclass
class StoredObject:
    """An object at rest in an Object store."""

    key: str
    data: dict
    revision: int
    created_at: float
    updated_at: float
    labels: dict = field(default_factory=dict)

    def snapshot(self):
        """Deep copy handed to clients (stores never alias live state)."""
        return copy.deepcopy(self.data)


class _Failure:
    """Internal marker carrying a server-side exception to the client."""

    __slots__ = ("exception",)

    def __init__(self, exception):
        self.exception = exception


class Watch:
    """A client's registration for change notifications.

    ``cancel()`` stops delivery.  Events are delivered over the server->
    client FIFO link, so a watcher sees changes in commit order.  When
    the server fails over, the watch is closed server-side and the
    client's ``on_close`` callback (if any) fires -- watchers re-watch
    and resync, the way Kubernetes informers re-list.
    """

    def __init__(self, server, location, handler, key_prefix="", on_close=None):
        self._server = server
        self.location = location
        self.handler = handler
        self.key_prefix = key_prefix
        self.on_close = on_close
        self.active = True
        self.delivered = 0

    def matches(self, key):
        return self.active and key.startswith(self.key_prefix)

    def cancel(self):
        self.active = False
        if self in self._server._watches:
            self._server._watches.remove(self)

    def close(self):
        """Server-initiated termination (failover): notify the client."""
        if not self.active:
            return
        self.cancel()
        if self.on_close is not None:
            link = self._server.network.link(
                self._server.location, self.location
            )
            link.send(lambda _msg: self.on_close(), None)


class StoreServer:
    """Base class for backend servers.

    Subclasses define ``OPS`` (operation name -> :class:`OpLatency`) and an
    ``op_<name>`` method per operation.  Requests are admitted through a
    bounded worker pool (default 1: the stores we model are effectively
    single-threaded per key space, which also keeps commit order coherent).
    """

    OPS = {}

    def __init__(self, env, network, location, workers=1, tracer=None):
        self.env = env
        self.network = network
        self.location = location
        self.tracer = tracer
        self._worker_pool = Resource(env, capacity=workers)
        # Registration order, NOT a set: fan-out order must be
        # deterministic across runs (hash randomization must not leak
        # into event schedules).
        self._watches = []
        self.op_counts = {}
        self.revision = 0

    # -- request processing ------------------------------------------------

    def handle(self, op, args):
        """Process one request; returns a simnet process event.

        The event's value is the op result, or a :class:`_Failure` that the
        client converts back into an exception (server errors must not
        crash the event loop).
        """
        return self.env.process(self._handle(op, args))

    def _handle(self, op, args):
        yield self._worker_pool.acquire()
        try:
            method = getattr(self, f"op_{op}", None)
            if method is None:
                raise StoreError(f"{type(self).__name__} has no operation {op!r}")
            latency = self.OPS.get(op)
            if latency is not None:
                size = estimate_size(args)
                delay = latency.cost(size)
                if delay > 0:
                    yield self.env.timeout(delay)
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            result = method(**args)
            if hasattr(result, "send"):  # op implemented as a sub-process
                result = yield self.env.process(result)
            return result
        except StoreError as exc:
            return _Failure(exc)
        finally:
            self._worker_pool.release()

    # -- watch fan-out -----------------------------------------------------

    def register_watch(self, watch):
        self._watches.append(watch)

    def notify(self, event):
        """Fan an event out to all matching watchers over their links."""
        for watch in list(self._watches):
            if watch.matches(event.key):
                link = self.network.link(self.location, watch.location)
                watch.delivered += 1
                link.send(watch.handler, event)

    def next_revision(self):
        self.revision += 1
        return self.revision

    def fail_over(self):
        """Simulate a server failover: data survives, watches do not.

        Every active watch is closed (clients with ``on_close`` get told
        and are expected to re-watch + resync).  Returns how many watches
        were dropped.
        """
        dropped = list(self._watches)
        for watch in dropped:
            watch.close()
        return len(dropped)


class StoreClient:
    """Base class for backend clients bound to one caller location."""

    def __init__(self, server, location):
        self.server = server
        self.env = server.env
        self.location = location

    @property
    def colocated(self):
        return self.location == self.server.location

    def request(self, op, **args):
        """Round-trip one operation; returns a simnet process event."""
        return self.env.process(self._request(op, args))

    def _request(self, op, args):
        if not self.colocated:
            yield self.server.network.transfer(self.location, self.server.location)
        result = yield self.server.handle(op, args)
        if not self.colocated:
            yield self.server.network.transfer(self.server.location, self.location)
        if isinstance(result, _Failure):
            raise result.exception
        return result

    def watch(self, handler, key_prefix="", on_close=None):
        """Register ``handler(WatchEvent)`` for matching changes.

        Registration itself is immediate (steady-state watches are the
        common case; connection setup is not modelled).  ``on_close``
        fires if the server drops the watch (failover).  Returns the
        :class:`Watch` handle for cancellation.
        """
        watch = Watch(self.server, self.location, handler, key_prefix,
                      on_close=on_close)
        self.server.register_watch(watch)
        return watch
