"""Shared plumbing for simulated data-store backends.

Every backend is split into a :class:`StoreServer` (owns the data, processes
requests with per-operation latency, pushes watch events) and a
:class:`StoreClient` (issued per caller location; adds network round-trip
time).  Client operations return simnet *processes*, so callers write::

    obj = yield client.get("orders/o-1")

Latency model
-------------
Each operation costs ``base + payload_size * per_byte`` seconds of
server-side time, where payload size is a rough serialized-JSON estimate.
The per-byte term is what the zero-copy optimization (paper §3.3) removes
for co-located clients.  Network time is taken from the shared
:class:`~repro.simnet.network.Network` between the caller's location and the
server's location; co-located callers pay nothing.
"""

import copy
from dataclasses import dataclass, field

from repro.errors import StoreError, UnavailableError
from repro.simnet.events import Interrupt
from repro.simnet.queue import Resource

#: Watch event types (mirroring the Kubernetes watch protocol).
ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"


def estimate_size(value):
    """Rough serialized size of a value, in bytes.

    Deliberately cheap: the simulation calls this on every operation.
    """
    if value is None:
        return 4
    if isinstance(value, bool):
        return 5
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 2
    if isinstance(value, (list, tuple)):
        return 2 + sum(estimate_size(v) + 1 for v in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in value.items()
        )
    return 16


@dataclass(frozen=True)
class OpLatency:
    """Server-side cost of one operation class."""

    base: float
    per_byte: float = 0.0

    def cost(self, size):
        return self.base + self.per_byte * size


@dataclass(frozen=True)
class WatchEvent:
    """One change notification delivered to a watcher."""

    type: str  # ADDED | MODIFIED | DELETED
    key: str
    object: dict
    revision: int


@dataclass
class StoredObject:
    """An object at rest in an Object store."""

    key: str
    data: dict
    revision: int
    created_at: float
    updated_at: float
    labels: dict = field(default_factory=dict)

    def snapshot(self):
        """Deep copy handed to clients (stores never alias live state)."""
        return copy.deepcopy(self.data)


class _Failure:
    """Internal marker carrying a server-side exception to the client."""

    __slots__ = ("exception",)

    def __init__(self, exception):
        self.exception = exception


class Watch:
    """A client's registration for change notifications.

    ``cancel()`` stops delivery.  Events are delivered over the server->
    client FIFO link, so a watcher sees changes in commit order.  When
    the server fails over, the watch is closed server-side and the
    client's ``on_close`` callback (if any) fires -- watchers re-watch
    and resync, the way Kubernetes informers re-list.
    """

    def __init__(self, server, location, handler, key_prefix="", on_close=None):
        self._server = server
        self.location = location
        self.handler = handler
        self.key_prefix = key_prefix
        self.on_close = on_close
        self.active = True
        self.delivered = 0

    def matches(self, key):
        return self.active and key.startswith(self.key_prefix)

    def cancel(self):
        self.active = False
        if self in self._server._watches:
            self._server._watches.remove(self)

    def close(self):
        """Server-initiated termination (failover): notify the client.

        The notification travels over the server->client link; when that
        link is faulted (partition/drop window) the client instead
        detects the dead connection via its own keepalive timer.
        """
        if not self.active:
            return
        link = self._server.network.link(self._server.location, self.location)
        self.cancel()
        if self.on_close is not None:
            if link.send(lambda _msg: self.on_close(), None) is None:
                self._detect_break(self._server.watch_keepalive)

    def break_connection(self, detect_after=0.0):
        """The delivery stream broke (partition, crash, dropped event).

        The server cannot reach the client, so ``on_close`` fires from the
        client's *own* keepalive timer after ``detect_after`` seconds of
        virtual time -- no network delivery involved.  Watchers then
        re-watch and resync exactly as after a failover.
        """
        if not self.active:
            return
        self.cancel()
        self._detect_break(detect_after)

    def _detect_break(self, detect_after):
        if self.on_close is None:
            return
        timer = self._server.env.timeout(detect_after)
        timer.callbacks.append(lambda _evt: self.on_close())


class StoreServer:
    """Base class for backend servers.

    Subclasses define ``OPS`` (operation name -> :class:`OpLatency`) and an
    ``op_<name>`` method per operation.  Requests are admitted through a
    bounded worker pool (default 1: the stores we model are effectively
    single-threaded per key space, which also keeps commit order coherent).
    """

    OPS = {}

    #: How long a client's keepalive takes to detect a dead watch stream
    #: (seconds of virtual time) when the server cannot say goodbye.
    watch_keepalive = 0.02

    def __init__(self, env, network, location, workers=1, tracer=None):
        self.env = env
        self.network = network
        self.location = location
        self.tracer = tracer
        self._worker_pool = Resource(env, capacity=workers)
        # Registration order, NOT a set: fan-out order must be
        # deterministic across runs (hash randomization must not leak
        # into event schedules).
        self._watches = []
        self.op_counts = {}
        self.revision = 0
        # Availability / failure state (see repro.faults).
        self.available = True
        self._epoch = 0  # bumped on failover/crash; queued ops abort
        # Processes currently holding a worker slot.  A list, not a set:
        # abort order must be deterministic across runs.
        self._executing = []
        self.aborted_ops = 0
        self.crash_count = 0

    # -- request processing ------------------------------------------------

    def handle(self, op, args):
        """Process one request; returns a simnet process event.

        The event's value is the op result, or a :class:`_Failure` that the
        client converts back into an exception (server errors must not
        crash the event loop).
        """
        return self.env.process(self._handle(op, args))

    def _handle(self, op, args):
        epoch = self._epoch
        yield self._worker_pool.acquire()
        proc = self.env.active_process
        self._executing.append(proc)
        try:
            if epoch != self._epoch or not self.available:
                # The server failed over / crashed while this request was
                # queued (or is still down): abort retryably.
                self.aborted_ops += 1
                return _Failure(UnavailableError(
                    f"store {self.location!r} is unavailable"
                ))
            method = getattr(self, f"op_{op}", None)
            if method is None:
                raise StoreError(f"{type(self).__name__} has no operation {op!r}")
            latency = self.OPS.get(op)
            if latency is not None:
                size = estimate_size(args)
                delay = latency.cost(size)
                if delay > 0:
                    yield self.env.timeout(delay)
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            result = method(**args)
            if hasattr(result, "send"):  # op implemented as a sub-process
                result = yield self.env.process(result)
            return result
        except Interrupt:
            # Aborted in flight by fail_over()/crash(): the operation had
            # not committed yet (commits are synchronous after the latency
            # yield), so the caller may safely retry.
            self.aborted_ops += 1
            return _Failure(UnavailableError(
                f"store {self.location!r}: in-flight {op!r} aborted by failover"
            ))
        except StoreError as exc:
            return _Failure(exc)
        finally:
            if proc in self._executing:
                self._executing.remove(proc)
            self._worker_pool.release()

    # -- watch fan-out -----------------------------------------------------

    def register_watch(self, watch):
        self._watches.append(watch)

    def notify(self, event):
        """Fan an event out to all matching watchers over their links.

        A watch stream is reliable-until-broken (TCP-like): when a fault
        rule loses a delivery, the whole stream breaks instead of
        silently skipping one event -- the watcher detects it via
        keepalive, re-watches, and resyncs, so the watch-completeness
        invariant survives lossy links.
        """
        for watch in list(self._watches):
            if watch.matches(event.key):
                link = self.network.link(self.location, watch.location)
                if link.send(watch.handler, event) is None:
                    watch.break_connection(self.watch_keepalive)
                else:
                    watch.delivered += 1

    def next_revision(self):
        self.revision += 1
        return self.revision

    # -- failure injection surface (see repro.faults) -----------------------

    def fail_over(self):
        """Simulate a server failover: data survives, connections do not.

        Every active watch is closed (clients with ``on_close`` get told
        and are expected to re-watch + resync), and every in-flight
        operation aborts with a retryable
        :class:`~repro.errors.UnavailableError` -- clients behind a
        :class:`repro.faults.RetryPolicy` ride through transparently.
        Returns how many watches were dropped.
        """
        dropped = list(self._watches)
        for watch in dropped:
            watch.close()
        self.abort_in_flight()
        return len(dropped)

    def abort_in_flight(self):
        """Abort queued and executing operations with ``UnavailableError``.

        Executing operations are interrupted at their current yield point
        (always before their commit -- commits are synchronous after the
        latency delay); queued operations observe the epoch bump when
        they eventually acquire a worker.  Returns how many executing
        operations were interrupted.
        """
        self._epoch += 1
        interrupted = 0
        for proc in list(self._executing):
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("store failover")
                interrupted += 1
        return interrupted

    def sever_watches(self, location=None, detect_after=None):
        """Break watch streams (to one client location, or all).

        Used when the server cannot notify clients (crash, partition):
        each client's keepalive fires ``on_close`` after ``detect_after``
        (default: :attr:`watch_keepalive`) seconds.  Returns the count.
        """
        grace = detect_after if detect_after is not None else self.watch_keepalive
        severed = [
            w for w in list(self._watches)
            if w.active and (location is None or w.location == location)
        ]
        for watch in severed:
            watch.break_connection(grace)
        return len(severed)

    def crash(self):
        """Hard-kill the server: lose volatile state, abort everything.

        What "volatile state" means is backend-specific (``_on_crash``):
        the apiserver-like store recovers its objects from a write-ahead
        log on :meth:`restart`; the Redis-like store loses them.  While
        down, every operation fails with ``UnavailableError``.
        """
        if not self.available:
            return
        self.available = False
        self.crash_count += 1
        self.abort_in_flight()
        self.sever_watches()
        self._on_crash()
        if self.tracer is not None:
            self.tracer.record("fault", "store-crash", location=self.location)

    def restart(self):
        """Bring a crashed server back (replaying durable state, if any)."""
        if self.available:
            return
        self._on_restart()
        self.available = True
        if self.tracer is not None:
            self.tracer.record("fault", "store-restart", location=self.location)

    def set_available(self, available):
        """Transient unavailability window: reject ops, keep state/watches."""
        self.available = bool(available)

    def _on_crash(self):
        """Subclass hook: drop volatile state."""

    def _on_restart(self):
        """Subclass hook: recover durable state."""


class StoreClient:
    """Base class for backend clients bound to one caller location.

    With a :class:`repro.faults.RetryPolicy` (and optionally a
    :class:`repro.faults.CircuitBreaker`) attached, every operation rides
    through transient faults -- store failover/crash windows, partitioned
    links -- with seeded-jitter exponential backoff.  Without one, the
    first :class:`~repro.errors.UnavailableError` surfaces to the caller.
    """

    def __init__(self, server, location, retry_policy=None, circuit_breaker=None):
        self.server = server
        self.env = server.env
        self.location = location
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker

    @property
    def colocated(self):
        return self.location == self.server.location

    def request(self, op, **args):
        """Round-trip one operation; returns a simnet process event."""
        if self.retry_policy is None and self.circuit_breaker is None:
            return self.env.process(self._request(op, args))
        from repro.faults.retry import RetryPolicy

        policy = self.retry_policy
        if policy is None:  # breaker-only client: gate but never retry
            policy = self.retry_policy = RetryPolicy(max_attempts=1)
        return policy.execute(
            self.env,
            lambda: self.env.process(self._request(op, args)),
            breaker=self.circuit_breaker,
        )

    def _request(self, op, args):
        if not self.colocated:
            yield self.server.network.transfer(self.location, self.server.location)
        result = yield self.server.handle(op, args)
        if not self.colocated:
            yield self.server.network.transfer(self.server.location, self.location)
        if isinstance(result, _Failure):
            raise result.exception
        return result

    def watch(self, handler, key_prefix="", on_close=None):
        """Register ``handler(WatchEvent)`` for matching changes.

        Registration itself is immediate (steady-state watches are the
        common case; connection setup is not modelled).  ``on_close``
        fires if the server drops the watch (failover).  Returns the
        :class:`Watch` handle for cancellation.
        """
        watch = Watch(self.server, self.location, handler, key_prefix,
                      on_close=on_close)
        self.server.register_watch(watch)
        return watch
