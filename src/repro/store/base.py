"""Shared plumbing for simulated data-store backends.

Every backend is split into a :class:`StoreServer` (owns the data, processes
requests with per-operation latency, pushes watch events) and a
:class:`StoreClient` (issued per caller location; adds network round-trip
time).  Client operations return simnet *processes*, so callers write::

    obj = yield client.get("orders/o-1")

Latency model
-------------
Each operation costs ``base + payload_size * per_byte`` seconds of
server-side time, where payload size is a rough serialized-JSON estimate.
The per-byte term is what the zero-copy optimization (paper §3.3) removes
for co-located clients.  Network time is taken from the shared
:class:`~repro.simnet.network.Network` between the caller's location and the
server's location; co-located callers pay nothing.

Zero-copy state plane
---------------------
With ``zero_copy=True`` (the default) a server keeps object data as
frozen, structurally-shared :mod:`repro.store.cow` views: reads,
snapshots, and watch events alias the live structure instead of deep
copying it, and patches re-create only the containers along patched
paths.  Views are therefore **immutable** -- mutate through the store's
patch/update APIs, or ``thaw()`` a private copy.

With ``delta_watch=True`` the watch/replication protocol additionally
ships **revision-chained JSON-merge-patch deltas** instead of full
snapshots.  The server tracks, per watch, the last revision it sent for
each key; when the watcher provably holds the predecessor state it
sends just the delta.  The client-side :class:`Watch` materializes full
objects before invoking handlers, detects revision-chain gaps, and
falls back to a full-object resync (and ultimately a stream break) --
so handlers never observe the encoding.  Wire bytes are accounted on
both the server (``watch_wire_bytes``) and the network links.
"""

import copy
from dataclasses import dataclass, field

from repro.errors import (
    OverloadedError,
    ShardMovedError,
    StoreError,
    UnavailableError,
)
from repro.flow.policy import (
    BLOCK,
    REJECT,
    SHED_OLDEST,
    check_overflow,
)
from repro.obs.context import activate, bind_generator, current_context, restore
from repro.simnet.events import Interrupt
from repro.simnet.queue import Resource
from repro.store.cow import (
    CopyMeter,
    copy_value,
    estimate_size,
    freeze,
    is_frozen,
    merge_shared,
)

#: Watch event types (mirroring the Kubernetes watch protocol).
ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"

#: Per-event wire framing overhead (type + revision fields), bytes.
EVENT_OVERHEAD = 24


@dataclass(frozen=True)
class OpLatency:
    """Server-side cost of one operation class."""

    base: float
    per_byte: float = 0.0

    def cost(self, size):
        return self.base + self.per_byte * size


@dataclass(frozen=True)
class WatchEvent:
    """One change notification delivered to a watcher.

    ``delta``/``prev_revision`` carry the delta-encoding of a MODIFIED
    commit: a JSON-merge-patch that turns the object at
    ``prev_revision`` into the object at ``revision``.  On the wire a
    delta-encoded event has ``object=None``; the client-side
    :class:`Watch` materializes the full object before handlers see it.

    ``ctx`` is the causal :class:`~repro.obs.context.TraceContext` of
    the commit that produced this event (None for untraced writes and
    synthetic resync events); ``committed_at`` is the commit's virtual
    time, from which watchers derive delivery lag.  Both are trace
    metadata -- a handful of header bytes in a real system -- and are
    deliberately excluded from :meth:`wire_size` so enabling tracing
    never perturbs the simulated latency model.
    """

    type: str  # ADDED | MODIFIED | DELETED
    key: str
    object: dict
    revision: int
    delta: dict = None
    prev_revision: int = None
    ctx: object = None
    committed_at: float = None

    def wire_size(self):
        """Bytes this event occupies in one watch message."""
        if self.object is None and self.delta is not None:
            payload = estimate_size(self.delta)
        elif self.object is not None:
            payload = estimate_size(self.object)
        else:
            payload = 0  # tombstone
        return len(self.key) + EVENT_OVERHEAD + payload


@dataclass
class StoredObject:
    """An object at rest in an Object store."""

    key: str
    data: dict
    revision: int
    created_at: float
    updated_at: float
    labels: dict = field(default_factory=dict)

    def snapshot(self):
        """The data handed to clients.

        Zero-copy stores keep ``data`` frozen: the view itself is the
        snapshot (immutable, structurally shared).  Mutable data falls
        back to the classic deep copy -- stores never alias live
        *mutable* state.
        """
        if is_frozen(self.data):
            return self.data
        return copy.deepcopy(self.data)


class _Failure:
    """Internal marker carrying a server-side exception to the client."""

    __slots__ = ("exception",)

    def __init__(self, exception):
        self.exception = exception


class Watch:
    """A client's registration for change notifications.

    ``cancel()`` stops delivery.  Events are delivered over the server->
    client FIFO link, so a watcher sees changes in commit order.  When
    the server fails over, the watch is closed server-side and the
    client's ``on_close`` callback (if any) fires -- watchers re-watch
    and resync, the way Kubernetes informers re-list.

    A server with watch batching enabled delivers *lists* of events in
    one network message; :meth:`deliver` unpacks them.  A watcher that
    can consume whole batches in one go (reconcilers, Cast) registers
    ``batch_handler``; otherwise ``handler`` is invoked once per event,
    in order, so batching stays invisible to per-event consumers.

    Against a ``delta_watch`` server, :meth:`deliver` additionally
    **materializes** delta-encoded events: it keeps the last (revision,
    object) per key, applies merge-patch deltas by path copy, and hands
    handlers ordinary full-object events.  A delta whose
    ``prev_revision`` does not chain onto the held state is a **gap**:
    the event is buffered, one full-object ``get`` resyncs the key, and
    buffered deltas past the resync point are replayed.  If the resync
    itself cannot complete, the stream breaks (``on_close`` fires) and
    the watcher does a classic full resync.

    **Credit-based flow control** (``credits`` set): the stream carries
    a credit window, HTTP/2 style.  The server spends one credit per
    event sent and pauses fan-out when the window is empty; the client
    grants credits back after each delivery is dispatched.  While
    paused, events coalesce server-side per key (Object stores: newest
    wins -- safe, because the delta encoder re-anchors with a full
    snapshot whenever the revision chain breaks) or queue contiguously
    (Log stores, where every event carries distinct records).  A paused
    buffer that outgrows ``max_paused`` applies ``overflow``: ``reject``
    (the default) breaks the stream so the watcher does one explicit
    resync -- *bounded memory, then recover* -- while the shed policies
    trade completeness for continuity and ``block`` restores the
    unbounded legacy buffer.  Lost credit grants (faulted links) are not
    retransmitted; the stream simply stays paused until the buffer
    overflow forces the resync, so a lossy link degrades, never leaks.
    """

    #: Transient-resync retry budget before declaring the stream broken.
    resync_attempts = 8

    def __init__(self, server, location, handler, key_prefix="", on_close=None,
                 batch_handler=None, credits=None, overflow=None,
                 max_paused=None):
        self._server = server
        self.location = location
        self.handler = handler
        self.key_prefix = key_prefix
        self.on_close = on_close
        self.batch_handler = batch_handler
        self.active = True
        self.delivered = 0
        # -- credit window -------------------------------------------------
        self.credits = int(credits) if credits else None
        self.overflow = check_overflow(overflow if overflow is not None
                                       else REJECT)
        #: Coalesced-entry bound on the paused buffer before ``overflow``
        #: applies (default: four credit windows of slack).
        self.max_paused = (int(max_paused) if max_paused is not None
                           else (4 * self.credits if self.credits else None))
        self._credits_remaining = self.credits
        #: Server-side paused buffer.  Coalescing mode comes from the
        #: server class: "newest" keeps one event per key (dict, stable
        #: insertion order), "append" keeps every event (list).
        self._coalesce = getattr(server, "WATCH_COALESCE", "newest")
        self._paused = {} if self._coalesce == "newest" else []
        self.credit_pauses = 0
        self.paused_coalesced = 0
        self.paused_shed = 0
        self.forced_resyncs = 0
        self.grants_lost = 0
        self.peak_paused = 0
        # Server-side delta-encoder state: last revision sent per key
        # (valid because the stream is reliable-until-broken FIFO).
        self._sent_revisions = {}
        # Client-side materializer state: key -> (revision, object).
        self._state = {}
        self._gap_buffer = {}  # key -> [wire events] while a resync runs
        self.delta_events = 0
        self.full_events = 0
        self.gaps_detected = 0
        self.key_resyncs = 0

    def deliver(self, events):
        """Client-side arrival of one network message (1+ events)."""
        obs = getattr(self._server.tracer, "obs", None)
        if obs is not None:
            now = self._server.env.now
            lag = obs.registry.histogram(
                "watch_lag_seconds", store=self._server.location)
            for event in events:
                if event.committed_at is not None:
                    # The commit's trace context rides the event; keeping
                    # it as an exemplar links a freshness-SLO violation
                    # straight to the causal DAG of the stale write.
                    ctx = getattr(event, "ctx", None)
                    lag.observe(
                        now - event.committed_at,
                        exemplar=ctx.trace_id if ctx is not None else None,
                    )
        ready = []
        for event in events:
            materialized = self._materialize(event)
            if materialized is not None:
                ready.append(materialized)
        self._dispatch(ready)
        # Credits flow back only after the handler work is dispatched:
        # a consumer that falls behind simply grants later, and the
        # server's window -- not a queue -- absorbs the difference.
        if self.credits is not None and self.active:
            self._grant_credits(len(events))

    # -- credit flow (client side) ------------------------------------------

    def _grant_credits(self, count):
        """Return ``count`` credits to the server over the reverse link.

        A grant lost to a faulted link is NOT retransmitted: the stream
        stays paused until the paused-buffer overflow forces a resync.
        """
        server = self._server
        link = server.network.link(self.location, server.location)
        if link.send(
            lambda n: server._on_credit_grant(self, n), count
        ) is None:
            self.grants_lost += 1

    # -- paused buffer (server side) ----------------------------------------

    def _buffer_paused(self, event):
        """Coalesce one event into the paused buffer, applying overflow."""
        if not self._paused:
            self.credit_pauses += 1
            self._server.watch_pauses += 1
        if self._coalesce == "newest":
            if event.key in self._paused:
                # Newest wins in place: the entry keeps its FIFO slot,
                # its payload becomes the latest commit.
                self._paused[event.key] = event
                self.paused_coalesced += 1
                self._server.watch_paused_coalesced += 1
                return
            if not self._paused_admit(event):
                return
            self._paused[event.key] = event
        else:  # append: log records are all distinct; never coalesce
            if not self._paused_admit(event):
                return
            self._paused.append(event)
        self.peak_paused = max(self.peak_paused, len(self._paused))

    def _paused_admit(self, event):
        """Overflow policy for a NEW paused entry; False when shed."""
        if (self.max_paused is None or self.overflow == BLOCK
                or len(self._paused) < self.max_paused):
            return True
        if self.overflow == REJECT:
            # The consumer is too slow for bounded buffering: break the
            # stream, the watcher re-watches and resyncs -- one explicit
            # recovery instead of unbounded memory.
            self._force_resync()
            return False
        if self.overflow == SHED_OLDEST:
            if self._coalesce == "newest":
                oldest = next(iter(self._paused))
                del self._paused[oldest]
            else:
                self._paused.pop(0)
            self._record_shed()
            return True
        self._record_shed()  # SHED_NEWEST: the incoming event is dropped
        return False

    def _record_shed(self):
        self.paused_shed += 1
        self._server.watch_shed_events += 1

    def _force_resync(self):
        self.forced_resyncs += 1
        self._server.watch_forced_resyncs += 1
        self._paused = {} if self._coalesce == "newest" else []
        self.break_connection(self._server.watch_keepalive)

    def _take_paused(self, count):
        """Dequeue up to ``count`` buffered events, oldest first."""
        if self._coalesce == "newest":
            keys = list(self._paused)[:count]
            return [self._paused.pop(key) for key in keys]
        taken, self._paused = self._paused[:count], self._paused[count:]
        return taken

    def _dispatch(self, events):
        if not events:
            return
        if self.batch_handler is not None:
            self.batch_handler(list(events))
        elif self.handler is not None:
            for event in events:
                self.handler(event)

    # -- delta materialization (no-op for snapshot streams) -----------------

    def _materialize(self, event):
        if not getattr(self._server, "delta_watch", False):
            return event
        key = event.key
        if key in self._gap_buffer:
            # A resync for this key is in flight: preserve order.
            self._gap_buffer[key].append(event)
            return None
        if event.type == DELETED:
            last = self._state.pop(key, None)
            self.full_events += 1
            if event.object is None and last is not None:
                # Tombstone on the wire; hand the handler the last-known
                # object, matching snapshot-stream semantics.
                return WatchEvent(DELETED, key, last[1], event.revision,
                                  ctx=event.ctx,
                                  committed_at=event.committed_at)
            return event
        if event.object is None and event.delta is not None:
            base = self._state.get(key)
            if base is None or base[0] != event.prev_revision:
                self.gaps_detected += 1
                self._begin_resync(key, event)
                return None
            merged = merge_shared(base[1], event.delta)
            self._state[key] = (event.revision, merged)
            self.delta_events += 1
            return WatchEvent(event.type, key, merged, event.revision,
                              ctx=event.ctx, committed_at=event.committed_at)
        self._state[key] = (event.revision, event.object)
        self.full_events += 1
        return event

    def _begin_resync(self, key, pending_event):
        self._gap_buffer[key] = [pending_event]
        self.key_resyncs += 1
        self._server.env.process(self._resync_key(self._server.env, key))

    def _resync_key(self, env, key):
        """Full-object fallback: one (retried) GET round trip for ``key``."""
        server = self._server
        view = None
        deleted = False
        for attempt in range(self.resync_attempts):
            if not self.active:
                self._gap_buffer.pop(key, None)
                return
            remote = self.location != server.location
            try:
                if remote:
                    yield server.network.transfer(self.location, server.location)
                result = yield server.handle("get", {"key": key})
                if remote:
                    yield server.network.transfer(server.location, self.location)
            except UnavailableError:
                result = None  # partitioned link: retry like a server error
            if result is None or (
                isinstance(result, _Failure)
                and isinstance(result.exception, UnavailableError)
            ):
                yield env.timeout(0.002 * (2 ** min(attempt, 6)))
                continue
            if isinstance(result, _Failure):
                deleted = True  # NotFound: the gap resolved to a deletion
                break
            view = result
            break
        else:
            # The store would not answer: the stream is unrecoverable at
            # this layer.  Break it; the watcher re-watches and resyncs.
            self._gap_buffer.pop(key, None)
            self.break_connection(0.0)
            return
        buffered = self._gap_buffer.pop(key, [])
        if not self.active:
            return
        ready = []
        if deleted:
            last = self._state.pop(key, None)
            ready.append(WatchEvent(
                DELETED, key, last[1] if last else None,
                getattr(server, "revision", 0),
            ))
        else:
            self._state[key] = (view["revision"], view["data"])
            ready.append(WatchEvent(MODIFIED, key, view["data"], view["revision"]))
        for event in buffered:
            if not deleted and event.revision <= view["revision"]:
                continue  # already folded into the resynced view
            materialized = self._materialize(event)
            if materialized is not None:
                ready.append(materialized)
        self._dispatch(ready)

    def matches(self, key):
        return self.active and key.startswith(self.key_prefix)

    def cancel(self):
        self.active = False
        if self in self._server._watches:
            self._server._watches.remove(self)

    def close(self):
        """Server-initiated termination (failover): notify the client.

        The notification travels over the server->client link; when that
        link is faulted (partition/drop window) the client instead
        detects the dead connection via its own keepalive timer.
        """
        if not self.active:
            return
        link = self._server.network.link(self._server.location, self.location)
        self.cancel()
        if self.on_close is not None:
            if link.send(lambda _msg: self.on_close(), None) is None:
                self._detect_break(self._server.watch_keepalive)

    def break_connection(self, detect_after=0.0):
        """The delivery stream broke (partition, crash, dropped event).

        The server cannot reach the client, so ``on_close`` fires from the
        client's *own* keepalive timer after ``detect_after`` seconds of
        virtual time -- no network delivery involved.  Watchers then
        re-watch and resync exactly as after a failover.
        """
        if not self.active:
            return
        self.cancel()
        self._detect_break(detect_after)

    def _detect_break(self, detect_after):
        if self.on_close is None:
            return
        timer = self._server.env.timeout(detect_after)
        timer.callbacks.append(lambda _evt: self.on_close())


#: Operations the reshard write fence applies to: everything that can
#: mutate object state.  Reads stay open on the old owner until the
#: ring flips (the sealed range's state is frozen, so they are
#: consistent), which keeps the cutover invisible to readers.
_FENCED_OPS = frozenset({
    "create", "update", "patch", "delete",
    "txn", "txn_prepare", "command", "fcall", "fcall_txn",
})


class StoreServer:
    """Base class for backend servers.

    Subclasses define ``OPS`` (operation name -> :class:`OpLatency`) and an
    ``op_<name>`` method per operation.  Requests are admitted through a
    bounded worker pool (default 1: the stores we model are effectively
    single-threaded per key space, which also keeps commit order coherent).
    """

    OPS = {}

    #: How long a client's keepalive takes to detect a dead watch stream
    #: (seconds of virtual time) when the server cannot say goodbye.
    watch_keepalive = 0.02

    #: How a credit-paused watch buffer coalesces: ``"newest"`` keeps one
    #: event per key (a later commit supersedes an earlier one -- Object
    #: stores), ``"append"`` keeps every event contiguously (Log stores,
    #: where each event carries distinct records).
    WATCH_COALESCE = "newest"

    def __init__(self, env, network, location, workers=1, tracer=None,
                 watch_batch_window=0.0, zero_copy=True, delta_watch=False):
        self.env = env
        self.network = network
        self.location = location
        self.tracer = tracer
        #: Zero-copy state plane: keep object data frozen and hand out
        #: structurally-shared views instead of deep copies.
        self.zero_copy = bool(zero_copy)
        #: Delta replication: watch events ship revision-chained
        #: merge-patch deltas instead of full snapshots.
        self.delta_watch = bool(delta_watch)
        self.copy_meter = CopyMeter()
        self._worker_pool = Resource(env, capacity=workers)
        # Registration order, NOT a set: fan-out order must be
        # deterministic across runs (hash randomization must not leak
        # into event schedules).
        self._watches = []
        #: Watch batching (>0 enables it): events committed within this
        #: window are coalesced per watcher and delivered as ONE network
        #: message, in commit order.  0 keeps the classic one-message-
        #: per-event fan-out.
        self.watch_batch_window = float(watch_batch_window)
        self._watch_buffers = {}  # Watch -> [pending events]
        self.watch_messages_sent = 0
        self.watch_events_sent = 0
        self.watch_wire_bytes = 0
        self.watch_deltas_sent = 0
        self.watch_fulls_sent = 0
        self.watch_drops_injected = 0
        # Credit-flow counters (aggregated across this server's watches).
        self.watch_pauses = 0
        self.watch_paused_coalesced = 0
        self.watch_shed_events = 0
        self.watch_forced_resyncs = 0
        self.watch_credit_grants = 0
        self._drop_next_watch_message = False
        #: Admission controller guarding :meth:`handle` (None = open door).
        self.admission = None
        self.op_counts = {}
        self.revision = 0
        # Cross-shard transactional plane (repro.txn): prepared-but-
        # undecided transactions, their key locks, and decided outcomes.
        # Volatile by default; the apiserver backend persists prepare/
        # decision markers to its WAL and rebuilds these on restart.
        self._prepared = {}  # txn_id -> [ops]
        self._txn_locks = {}  # key -> txn_id holding it in-doubt
        self._txn_outcomes = {}  # txn_id -> ("committed", views) | ("aborted", None)
        # Availability / failure state (see repro.faults).
        self.available = True
        self._epoch = 0  # bumped on failover/crash; queued ops abort
        # Live-reshard write fence (repro.store.reshard): while a ring
        # range is sealed here, mutations addressing it are rejected
        # with ShardMovedError until the ring flips and clients
        # re-resolve ownership.
        self._sealed_ranges = []
        self._sealed_version = None
        self.fence_rejections = 0
        self._ring_context = None  # owning ShardedStore, for error notes
        # Processes currently holding a worker slot.  A list, not a set:
        # abort order must be deterministic across runs.
        self._executing = []
        self.aborted_ops = 0
        self.crash_count = 0

    # -- request processing ------------------------------------------------

    def handle(self, op, args):
        """Process one request; returns a simnet process event.

        The event's value is the op result, or a :class:`_Failure` that the
        client converts back into an exception (server errors must not
        crash the event loop).
        """
        return self.env.process(self._handle(op, args))

    def _handle(self, op, args):
        epoch = self._epoch
        # Principal rides out-of-band like the trace ctx: stripped before
        # sizing (admission must not perturb the latency model), copied
        # rather than popped (retried attempts reuse the args dict).
        principal = args.get("principal")
        if principal is not None:
            args = {k: v for k, v in args.items() if k != "principal"}
        if self.admission is not None and not self.admission.admit(
            principal, self._worker_pool.queued
        ):
            # Rejected at the front door: no worker slot, no latency
            # charge.  OverloadedError is retryable, so clients behind a
            # RetryPolicy back off instead of piling on.
            yield self.env.timeout(0)
            return _Failure(OverloadedError(
                f"store {self.location!r} shed {op!r} for "
                f"principal {principal!r} (admission control)"
            ))
        yield self._worker_pool.acquire()
        proc = self.env.active_process
        self._executing.append(proc)
        try:
            if epoch != self._epoch or not self.available:
                # The server failed over / crashed while this request was
                # queued (or is still down): abort retryably.
                self.aborted_ops += 1
                return _Failure(UnavailableError(
                    f"store {self.location!r} is unavailable"
                ))
            if op in _FENCED_OPS:
                if self._sealed_ranges:
                    fenced = self._fenced_key(args)
                    if fenced is not None:
                        self.fence_rejections += 1
                        return _Failure(ShardMovedError(
                            f"store {self.location!r}: key {fenced!r} is in "
                            f"a range sealed for migration (ring "
                            f"v{self._sealed_version} pending); re-resolve "
                            "ownership and retry",
                            key=fenced, ring_version=self._sealed_version,
                        ))
                # Ownership fence: a write that sat in the worker queue
                # across a ring flip (or reached a retired shard) must
                # not commit here -- the key's state now lives with the
                # new owner, and a late commit on the old one would be
                # acked and watched but absent from the authoritative
                # copy (a lost write).
                stray = self._stray_key(args)
                if stray is not None:
                    self.fence_rejections += 1
                    ring = self._ring_context.ring
                    return _Failure(ShardMovedError(
                        f"store {self.location!r}: key {stray!r} moved to "
                        f"{self._ring_context.owner_location(stray)!r} "
                        f"(ring v{ring.version}); re-resolve ownership "
                        "and retry",
                        key=stray, ring_version=ring.version,
                        owner=self._ring_context.owner_location(stray),
                    ))
            method = getattr(self, f"op_{op}", None)
            if method is None:
                raise StoreError(f"{type(self).__name__} has no operation {op!r}")
            # Trace context rides out-of-band: strip it BEFORE sizing the
            # request, so op latency is identical with tracing on or off.
            # A copy, not a pop -- retried attempts reuse the args dict.
            ctx = args.get("ctx")
            if ctx is not None:
                args = {k: v for k, v in args.items() if k != "ctx"}
            latency = self.OPS.get(op)
            if latency is not None:
                size = estimate_size(args)
                delay = latency.cost(size)
                if delay > 0:
                    yield self.env.timeout(delay)
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            token = activate(ctx) if ctx is not None else None
            try:
                result = method(**args)
            finally:
                if ctx is not None:
                    restore(token)
            if hasattr(result, "send"):  # op implemented as a sub-process
                if ctx is not None:
                    result = bind_generator(result, ctx)
                result = yield self.env.process(result)
            return result
        except Interrupt:
            # Aborted in flight by fail_over()/crash(): the operation had
            # not committed yet (commits are synchronous after the latency
            # yield), so the caller may safely retry.
            self.aborted_ops += 1
            return _Failure(UnavailableError(
                f"store {self.location!r}: in-flight {op!r} aborted by failover"
            ))
        except StoreError as exc:
            return _Failure(exc)
        finally:
            if proc in self._executing:
                self._executing.remove(proc)
            self._worker_pool.release()

    # -- watch fan-out -----------------------------------------------------

    def register_watch(self, watch):
        self._watches.append(watch)

    def notify(self, event):
        """Fan an event out to all matching watchers over their links.

        A watch stream is reliable-until-broken (TCP-like): when a fault
        rule loses a delivery, the whole stream breaks instead of
        silently skipping one event -- the watcher detects it via
        keepalive, re-watches, and resyncs, so the watch-completeness
        invariant survives lossy links.

        With ``watch_batch_window > 0``, the event is instead buffered
        per watcher and flushed as one message when the window closes,
        preserving per-watcher commit order while collapsing N messages
        into one under bursty write traffic.
        """
        for watch in list(self._watches):
            if watch.matches(event.key):
                if self.watch_batch_window > 0:
                    self._buffer_for_watch(watch, event)
                else:
                    self._send_to_watch(watch, (event,))

    def _encode_event(self, watch, event):
        """Wire encoding of ``event`` for one watcher.

        In delta mode, a MODIFIED commit whose predecessor revision is
        the last one sent on this stream ships as a merge-patch delta
        (``object=None``); anything else -- first sight of a key, a
        commit with no delta, or a chain break -- ships the full
        snapshot, re-anchoring the stream.  DELETED ships a tombstone.
        Valid because the stream is reliable-until-broken FIFO.
        """
        if not self.delta_watch:
            return event
        key = event.key
        if event.type == DELETED:
            watch._sent_revisions.pop(key, None)
            return WatchEvent(DELETED, key, None, event.revision,
                              ctx=event.ctx, committed_at=event.committed_at)
        last_sent = watch._sent_revisions.get(key)
        watch._sent_revisions[key] = event.revision
        if (
            event.delta is not None
            and event.prev_revision is not None
            and last_sent == event.prev_revision
        ):
            self.watch_deltas_sent += 1
            return WatchEvent(
                event.type, key, None, event.revision,
                delta=event.delta, prev_revision=event.prev_revision,
                ctx=event.ctx, committed_at=event.committed_at,
            )
        self.watch_fulls_sent += 1
        return WatchEvent(event.type, key, event.object, event.revision,
                          ctx=event.ctx, committed_at=event.committed_at)

    def _send_to_watch(self, watch, events):
        """Send ``events`` subject to the watch's credit window.

        Events the window cannot afford go to the watch's paused buffer
        (coalesced per :attr:`WATCH_COALESCE`); they flow once the
        client grants credits back.  Returns False if the stream broke.
        """
        if watch.credits is None:
            return self._transmit(watch, events)
        sendable = []
        for event in events:
            # A non-empty paused buffer forces buffering even with
            # credits in hand: FIFO order is part of the protocol.
            if watch._paused or len(sendable) >= watch._credits_remaining:
                watch._buffer_paused(event)
                if not watch.active:  # overflow forced a resync
                    return False
            else:
                sendable.append(event)
        if not sendable:
            return watch.active
        return self._transmit(watch, sendable)

    def _on_credit_grant(self, watch, count):
        """Client granted ``count`` credits back; drain the paused buffer."""
        if not watch.active:
            return
        self.watch_credit_grants += 1
        watch._credits_remaining = min(
            watch.credits, watch._credits_remaining + count
        )
        while watch.active and watch._credits_remaining > 0:
            batch = watch._take_paused(watch._credits_remaining)
            if not batch:
                return
            if not self._transmit(watch, batch):
                return

    def _transmit(self, watch, events):
        """One network message carrying ``events``; False if it broke."""
        encoded = [self._encode_event(watch, event) for event in events]
        wire_bytes = sum(event.wire_size() for event in encoded)
        if watch.credits is not None:
            # Spent at send time, not delivery: a lost message never
            # grants back, so losses shrink the effective window until
            # the paused-buffer overflow forces the resync.
            watch._credits_remaining -= len(encoded)
        if self._drop_next_watch_message:
            # Test hook: lose this message AFTER encoding, so the
            # server's sent-revision chain advances past what the client
            # holds -- a genuine delta gap, exercised by the resync path.
            self._drop_next_watch_message = False
            self.watch_drops_injected += 1
            return False
        link = self.network.link(self.location, watch.location)
        if link.send(watch.deliver, tuple(encoded), size=wire_bytes) is None:
            watch.break_connection(self.watch_keepalive)
            return False
        self.watch_messages_sent += 1
        self.watch_events_sent += len(encoded)
        self.watch_wire_bytes += wire_bytes
        watch.delivered += len(encoded)
        return True

    def drop_next_watch_message(self):
        """Fault hook: silently lose the next watch message (see tests)."""
        self._drop_next_watch_message = True

    @property
    def copy_stats(self):
        return self.copy_meter.snapshot()

    def _buffer_for_watch(self, watch, event):
        buffer = self._watch_buffers.get(watch)
        if buffer is not None:
            buffer.append(event)
            return
        self._watch_buffers[watch] = [event]
        timer = self.env.timeout(self.watch_batch_window)
        timer.callbacks.append(lambda _evt, w=watch: self._flush_watch(w))

    def _flush_watch(self, watch):
        events = self._watch_buffers.pop(watch, None)
        if events and watch.active:
            self._send_to_watch(watch, events)

    def next_revision(self):
        self.revision += 1
        return self.revision

    # -- reshard write fence (see repro.store.reshard) ---------------------

    def seal_ranges(self, ranges, ring_version=None):
        """Fence mutations addressing ring ``ranges`` on this shard.

        Called by the reshard engine once a moved range's state has been
        copied: from here until :meth:`clear_sealed_ranges`, writes into
        the range fail fast with :class:`~repro.errors.ShardMovedError`
        (non-retryable at the per-shard layer; the sharded client
        re-routes against the live ring instead).
        """
        self._sealed_ranges = list(ranges)
        self._sealed_version = ring_version

    def clear_sealed_ranges(self):
        self._sealed_ranges = []
        self._sealed_version = None

    def _fenced_key(self, args):
        """First key in ``args`` that lands in a sealed range, if any."""
        from repro.store.ring import key_in_ranges

        key = args.get("key")
        if isinstance(key, str) and key_in_ranges(key, self._sealed_ranges):
            return key
        ops = args.get("ops")
        if isinstance(ops, list):
            for entry in ops:
                k = entry.get("key") if isinstance(entry, dict) else None
                if isinstance(k, str) and key_in_ranges(
                    k, self._sealed_ranges
                ):
                    return k
        return None

    def _stray_key(self, args):
        """First key in ``args`` this server no longer owns, if any.

        Only meaningful for shards routed by a live ring
        (``_ring_context``); standalone servers own every key.
        """
        ctx = self._ring_context
        if ctx is None:
            return None

        def owned(key):
            try:
                return ctx.shard_for(key) is self
            except Exception:
                return True  # ring in transit: let the seal fence decide

        key = args.get("key")
        if isinstance(key, str) and not owned(key):
            return key
        ops = args.get("ops")
        if isinstance(ops, list):
            for entry in ops:
                k = entry.get("key") if isinstance(entry, dict) else None
                if isinstance(k, str) and not owned(k):
                    return k
        return None

    def _ownership_note(self, key):
        """`` [key -> owner shard @ ring vN]`` when part of a ring, else ``""``.

        Appended to conflict messages so errors name the authoritative
        owner *location* (stable across resharding) instead of a raw
        shard index that the next topology change would invalidate.
        """
        store = self._ring_context
        if store is None:
            return ""
        try:
            location = store.owner_location(key)
            version = store.ring.version
        except Exception:
            return ""
        return f" [key {key!r} -> shard {location!r} @ ring v{version}]"

    # -- cross-shard transaction surface (see repro.txn) ---------------------

    @property
    def in_doubt_txns(self):
        """Prepared-but-undecided transaction count (drains on recovery)."""
        return len(self._prepared)

    @property
    def prepared_txn_ids(self):
        return sorted(self._prepared)

    def _persist_txn_marker(self, kind, txn_id, ops=None):
        """Hook: durably record a prepare/commit/abort transition.

        The base store keeps transaction state in memory only (a crash
        forgets it, like the Redis-like backend forgets everything); the
        apiserver backend appends a marker to its WAL so recovery can
        rebuild in-doubt transactions and decided outcomes.
        """

    # -- failure injection surface (see repro.faults) -----------------------

    def fail_over(self):
        """Simulate a server failover: data survives, connections do not.

        Every active watch is closed (clients with ``on_close`` get told
        and are expected to re-watch + resync), and every in-flight
        operation aborts with a retryable
        :class:`~repro.errors.UnavailableError` -- clients behind a
        :class:`repro.faults.RetryPolicy` ride through transparently.
        Returns how many watches were dropped.
        """
        dropped = list(self._watches)
        for watch in dropped:
            watch.close()
        self.abort_in_flight()
        return len(dropped)

    def abort_in_flight(self):
        """Abort queued and executing operations with ``UnavailableError``.

        Executing operations are interrupted at their current yield point
        (always before their commit -- commits are synchronous after the
        latency delay); queued operations observe the epoch bump when
        they eventually acquire a worker.  Returns how many executing
        operations were interrupted.
        """
        self._epoch += 1
        interrupted = 0
        for proc in list(self._executing):
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("store failover")
                interrupted += 1
        return interrupted

    def sever_watches(self, location=None, detect_after=None):
        """Break watch streams (to one client location, or all).

        Used when the server cannot notify clients (crash, partition):
        each client's keepalive fires ``on_close`` after ``detect_after``
        (default: :attr:`watch_keepalive`) seconds.  Returns the count.
        """
        grace = detect_after if detect_after is not None else self.watch_keepalive
        severed = [
            w for w in list(self._watches)
            if w.active and (location is None or w.location == location)
        ]
        for watch in severed:
            watch.break_connection(grace)
        return len(severed)

    def crash(self):
        """Hard-kill the server: lose volatile state, abort everything.

        What "volatile state" means is backend-specific (``_on_crash``):
        the apiserver-like store recovers its objects from a write-ahead
        log on :meth:`restart`; the Redis-like store loses them.  While
        down, every operation fails with ``UnavailableError``.
        """
        if not self.available:
            return
        self.available = False
        self.crash_count += 1
        self.abort_in_flight()
        self.sever_watches()
        # In-doubt transaction state is volatile: backends with a durable
        # prepare path (the apiserver WAL) rebuild it in ``_on_restart``.
        self._prepared = {}
        self._txn_locks = {}
        self._txn_outcomes = {}
        self._on_crash()
        if self.tracer is not None:
            self.tracer.record("fault", "store-crash", location=self.location)

    def restart(self):
        """Bring a crashed server back (replaying durable state, if any)."""
        if self.available:
            return
        self._on_restart()
        self.available = True
        if self.tracer is not None:
            self.tracer.record("fault", "store-restart", location=self.location)

    def set_available(self, available):
        """Transient unavailability window: reject ops, keep state/watches."""
        self.available = bool(available)

    def _on_crash(self):
        """Subclass hook: drop volatile state."""

    def _on_restart(self):
        """Subclass hook: recover durable state."""


def combine_patches(first, second):
    """One merge-patch equivalent to applying ``first`` then ``second``.

    Unlike :func:`repro.store.objectops.merge_patch` (which applies a
    patch to *data*), this combines two patches: ``None`` values are
    deletion markers and must survive into the combined patch.
    """
    out = copy.deepcopy(first)
    for key, value in second.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = combine_patches(out[key], value)
        else:
            out[key] = copy.deepcopy(value)
    return out


class StoreClient:
    """Base class for backend clients bound to one caller location.

    With a :class:`repro.faults.RetryPolicy` (and optionally a
    :class:`repro.faults.CircuitBreaker`) attached, every operation rides
    through transient faults -- store failover/crash windows, partitioned
    links -- with seeded-jitter exponential backoff.  Without one, the
    first :class:`~repro.errors.UnavailableError` surfaces to the caller.

    Two opt-in hot-path optimizations (both off by default, preserving
    classic request/response semantics):

    - **read-through caching** (:meth:`enable_read_cache`): an informer-
      style watch mirrors the keyspace locally and ``get`` serves hits
      from that mirror with no network round trip (eventually consistent,
      like reading a Kubernetes informer cache);
    - **write coalescing** (``coalesce_writes = True``): while a patch
      for key K is on the wire, further patches for K merge into one
      pending follow-up request instead of queueing on the server.
    """

    def __init__(self, server, location, retry_policy=None, circuit_breaker=None):
        self.server = server
        self.env = server.env
        self.location = location
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        #: Principal this client acts as (rides out-of-band in requests;
        #: consulted by the server's admission controller).
        self.principal = None
        #: Flow-control defaults applied by :meth:`watch` when the caller
        #: passes none (set by exchange handles from the DE's FlowConfig).
        self.default_watch_credits = None
        self.default_watch_overflow = None
        # Write coalescing (opt-in).
        self.coalesce_writes = False
        self._inflight_patches = set()  # keys with a patch on the wire
        self._pending_patches = {}  # key -> [combined patch, done event]
        self.patches_coalesced = 0
        # Read-through cache (opt-in via enable_read_cache()).
        self._read_cache = None
        self._cache_watch = None
        self._cache_prefix = ""
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def colocated(self):
        return self.location == self.server.location

    @property
    def zero_copy(self):
        return getattr(self.server, "zero_copy", False)

    @property
    def copy_meter(self):
        return self.server.copy_meter

    def request(self, op, **args):
        """Round-trip one operation; returns a simnet process event.

        The caller's ambient trace context (if any) is captured here --
        synchronously, before any scheduling -- and rides out-of-band in
        the request args, so server-side commits can chain onto it.  The
        retry factory closes over ``args``, so the context survives
        retried attempts.
        """
        ctx = current_context()
        if ctx is not None:
            args["ctx"] = ctx
        if self.principal is not None:
            args["principal"] = self.principal
        if self.retry_policy is None and self.circuit_breaker is None:
            return self.env.process(self._request(op, args))
        from repro.faults.retry import RetryPolicy

        policy = self.retry_policy
        if policy is None:  # breaker-only client: gate but never retry
            policy = self.retry_policy = RetryPolicy(max_attempts=1)
        return policy.execute(
            self.env,
            lambda: self.env.process(self._request(op, args)),
            breaker=self.circuit_breaker,
        )

    def _request(self, op, args):
        if not self.colocated:
            yield self.server.network.transfer(self.location, self.server.location)
        result = yield self.server.handle(op, args)
        if not self.colocated:
            yield self.server.network.transfer(self.server.location, self.location)
        if isinstance(result, _Failure):
            raise result.exception
        return result

    # -- shared typed surface (get / patch ride the optimizations) -----------

    def txn_prepare(self, txn_id, ops):
        """2PC phase 1: validate + lock + durably hold ``ops`` server-side."""
        return self.request("txn_prepare", txn_id=txn_id, ops=ops)

    def txn_commit(self, txn_id):
        """2PC phase 2: apply a prepared transaction (idempotent)."""
        return self.request("txn_commit", txn_id=txn_id)

    def txn_abort(self, txn_id):
        """Drop a prepared transaction and release its locks (idempotent)."""
        return self.request("txn_abort", txn_id=txn_id)

    def txn_status(self, txn_id):
        """Recovery probe: prepared / committed / aborted / unknown."""
        return self.request("txn_status", txn_id=txn_id)

    def get(self, key):
        """Read one object; served locally on a read-cache hit."""
        if self._read_cache is not None and key.startswith(self._cache_prefix):
            view = self._read_cache.get(key)
            if view is not None:
                self.cache_hits += 1
                if self.zero_copy:
                    # Cached ``data`` is already a frozen view; freezing
                    # the outer envelope shares it -- zero bytes copied.
                    hit = freeze(view)
                    self.copy_meter.shared(estimate_size(view))
                else:
                    hit = copy_value(view, self.copy_meter, "cache")
                return self.env.timeout(0.0, hit)
            self.cache_misses += 1
        return self.request("get", key=key)

    def patch(self, key, patch, resource_version=None):
        """Merge-patch one object; same-key patches coalesce if enabled.

        Coalescing never applies to version-conditional patches: a
        ``resource_version`` precondition must reach the server as-is.
        """
        if self.coalesce_writes and resource_version is None:
            return self._coalesced_patch(key, patch)
        return self.request(
            "patch", key=key, patch=patch, resource_version=resource_version
        )

    # -- write coalescing -----------------------------------------------------

    def _coalesced_patch(self, key, patch):
        pending = self._pending_patches.get(key)
        if pending is not None:
            # A follow-up is already waiting: merge into it; every caller
            # coalesced into that flight shares its completion event.
            pending[0] = combine_patches(pending[0], patch)
            self.patches_coalesced += 1
            return pending[1]
        if key in self._inflight_patches:
            done = self.env.event()
            self._pending_patches[key] = [copy.deepcopy(patch), done]
            self.patches_coalesced += 1
            return done
        # Mark the key in flight NOW, not when the flight process first
        # runs: patches issued later in the same instant (a concurrent
        # burst -- the whole point of coalescing) must see it.
        self._inflight_patches.add(key)
        return self.env.process(self._patch_flight(key, patch, None))

    def _patch_flight(self, key, patch, done):
        try:
            view = yield self.request(
                "patch", key=key, patch=patch, resource_version=None
            )
        except BaseException as exc:
            self._inflight_patches.discard(key)
            self._launch_pending(key)
            if done is None:
                raise
            # Chained flight: the caller waits on ``done``, not on this
            # process, so route the failure there (and only there).
            done.fail(exc)
            return None
        self._inflight_patches.discard(key)
        self._launch_pending(key)
        if done is not None:
            done.succeed(view)
        return view

    def _launch_pending(self, key):
        pending = self._pending_patches.pop(key, None)
        if pending is not None:
            self._inflight_patches.add(key)
            self.env.process(self._patch_flight(key, pending[0], pending[1]))

    # -- read-through cache ---------------------------------------------------

    def enable_read_cache(self, key_prefix=""):
        """Mirror the (prefixed) keyspace locally; serve ``get`` from it.

        The mirror is informer-backed: a watch keeps it current, and an
        initial ``list`` warms it.  Reads are eventually consistent --
        they may trail the server by the watch-delivery latency, exactly
        like reading a Kubernetes informer cache.  A miss (or a broken
        watch, which drops the mirror cold) falls through to a normal
        server read, so correctness never depends on the cache.
        """
        if self._read_cache is not None:
            return self._cache_watch
        self._read_cache = {}
        self._cache_prefix = key_prefix
        self._cache_watch = self.watch(
            None,
            key_prefix=key_prefix,
            batch_handler=self._absorb_cache_events,
            on_close=self._on_cache_watch_lost,
        )
        self.env.process(self._warm_cache(key_prefix))
        return self._cache_watch

    def _warm_cache(self, key_prefix):
        try:
            views = yield self.request("list", key_prefix=key_prefix)
        except StoreError:
            return  # stay cold; gets fall through to the server
        cache = self._read_cache
        if cache is None:
            return
        for view in views:
            current = cache.get(view["key"])
            if current is None or view["revision"] >= current["revision"]:
                cache[view["key"]] = view

    def _absorb_cache_events(self, events):
        cache = self._read_cache
        if cache is None:
            return
        for event in events:
            if event.type == DELETED:
                cache.pop(event.key, None)
                continue
            current = cache.get(event.key)
            if current is not None and event.revision < current["revision"]:
                continue
            cache[event.key] = {
                "key": event.key,
                "data": event.object,
                "revision": event.revision,
                "created_at": current["created_at"] if current else None,
                "updated_at": self.env.now,
            }

    def _on_cache_watch_lost(self):
        """The mirror went stale-unknowable: drop it cold and rebuild."""
        self._read_cache = None
        self._cache_watch = None
        prefix, self._cache_prefix = self._cache_prefix, ""
        self.enable_read_cache(prefix)

    def watch(self, handler, key_prefix="", on_close=None, batch_handler=None,
              credits=None, overflow=None):
        """Register ``handler(WatchEvent)`` for matching changes.

        Registration itself is immediate (steady-state watches are the
        common case; connection setup is not modelled).  ``on_close``
        fires if the server drops the watch (failover).  A
        ``batch_handler(list_of_events)`` consumes whole coalesced
        deliveries in one call when the server batches fan-out.
        ``credits``/``overflow`` opt the stream into credit-based flow
        control (see :class:`Watch`); unset, they fall back to the
        client's ``default_watch_credits``/``default_watch_overflow``
        (which exchange handles configure).  Returns the :class:`Watch`
        handle for cancellation.
        """
        if credits is None:
            credits = getattr(self, "default_watch_credits", None)
        if overflow is None:
            overflow = getattr(self, "default_watch_overflow", None)
        watch = Watch(self.server, self.location, handler, key_prefix,
                      on_close=on_close, batch_handler=batch_handler,
                      credits=credits, overflow=overflow)
        self.server.register_watch(watch)
        return watch
