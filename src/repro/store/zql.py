"""Compatibility shim: the ZQL engine moved to :mod:`repro.query.core`.

This module hosted the Zed-query-like pipeline language from the first
Log-store PR until the query core was extracted for cross-store
federation.  The operator catalog and execution semantics are unchanged;
only the import path moved:

- new code: ``from repro.query import compile_ops`` (plus ``Query`` /
  ``QueryResult`` for the unified ``DataExchange.query`` read API);
- :func:`compile_query` here keeps old call sites running behind a
  warn-once :class:`DeprecationWarning`.

CI's grep lint forbids ``compile_query`` call sites anywhere else in
``src/``: in-repo readers go through ``de.query(...)`` or the shared
core, never an ad-hoc pipeline compile.
"""

from repro.query.core import OPERATORS, compile_ops
from repro.store.ring import deprecation_notice

__all__ = ["OPERATORS", "compile_query"]


def compile_query(ops):
    """Deprecated alias of :func:`repro.query.core.compile_ops`."""
    deprecation_notice(
        "repro.store.zql.compile_query is deprecated; use "
        "repro.query.compile_ops (or the unified DataExchange.query read "
        "API) instead -- see docs/federation.md",
        dedup_key=("zql-compile-query",),
    )
    return compile_ops(ops)
