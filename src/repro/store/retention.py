"""State retention and garbage collection (paper §3.3).

"By default, states in the data stores are preserved until they're no
longer required by entities such as the knactor's reconciler or
integrators.  State retention can be managed via reference counting [...]
Once a reconciler or integrator has performed its operation on a state
object, the object is marked as unused and the DEs can then perform
garbage collection."

Two policies are provided:

- :class:`RefCountRetention` -- entities *register interest* in a key
  prefix; an object becomes collectable only after every interested entity
  has marked it done.
- :class:`TTLRetention` -- archival-style policy: objects are collectable
  once idle for ``ttl`` seconds.

A :class:`GarbageCollector` process periodically sweeps an Object store
through its client, deleting collectable objects.
"""

from repro.errors import ConfigurationError, NotFoundError


class RetentionPolicy:
    """Decides when an object key is safe to garbage-collect."""

    def observe(self, key, updated_at):
        """Called by the sweeper for every live object."""

    def is_collectable(self, key, updated_at, now):
        raise NotImplementedError


class RefCountRetention(RetentionPolicy):
    """Reference counting over declared readers.

    ``register_reader("orders/", "integrator")`` declares that the
    integrator must process every object under ``orders/`` before it can
    be collected.  ``mark_done(key, "integrator")`` releases one
    reference.  Objects with *no* interested readers are retained (never
    collected) -- collecting unobserved state by default would be a
    correctness hazard, not a feature.
    """

    def __init__(self):
        self._readers = {}  # prefix -> set of entity names
        self._done = {}  # key -> set of entity names that finished

    def register_reader(self, key_prefix, entity):
        if not entity:
            raise ConfigurationError("entity name must be non-empty")
        self._readers.setdefault(key_prefix, set()).add(entity)

    def unregister_reader(self, key_prefix, entity):
        readers = self._readers.get(key_prefix)
        if readers:
            readers.discard(entity)
            if not readers:
                del self._readers[key_prefix]

    def readers_for(self, key):
        """All entities that must process ``key`` before collection."""
        interested = set()
        for prefix, entities in self._readers.items():
            if key.startswith(prefix):
                interested |= entities
        return interested

    def mark_done(self, key, entity):
        """Record that ``entity`` has finished processing ``key``."""
        if entity not in self.readers_for(key):
            raise NotFoundError(
                f"{entity!r} is not a registered reader covering {key!r}"
            )
        self._done.setdefault(key, set()).add(entity)

    def pending_for(self, key):
        """Readers that still have to process ``key``."""
        return self.readers_for(key) - self._done.get(key, set())

    def is_collectable(self, key, updated_at, now):
        readers = self.readers_for(key)
        if not readers:
            return False
        return readers <= self._done.get(key, set())

    def forget(self, key):
        """Drop bookkeeping after the object was collected."""
        self._done.pop(key, None)


class TTLRetention(RetentionPolicy):
    """Collect objects idle longer than ``ttl`` seconds."""

    def __init__(self, ttl):
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self.ttl = float(ttl)

    def is_collectable(self, key, updated_at, now):
        return (now - updated_at) >= self.ttl


class GarbageCollector:
    """Periodic sweep over an Object store, deleting collectable objects."""

    def __init__(self, env, client, policy, interval=1.0, key_prefix=""):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.env = env
        self.client = client
        self.policy = policy
        self.interval = interval
        self.key_prefix = key_prefix
        self.collected = []
        self._running = False
        self._process = None

    def start(self):
        if self._running:
            return self._process
        self._running = True
        self._process = self.env.process(self._run(self.env))
        return self._process

    def stop(self):
        self._running = False

    def _run(self, env):
        while self._running:
            yield env.timeout(self.interval)
            if not self._running:
                return
            yield env.process(self.sweep(env))

    def sweep(self, env):
        """One sweep pass (as a process so benches can run it directly)."""
        objects = yield self.client.list(self.key_prefix)
        for view in objects:
            key = view["key"]
            self.policy.observe(key, view["updated_at"])
            if self.policy.is_collectable(key, view["updated_at"], env.now):
                try:
                    yield self.client.delete(key)
                except NotFoundError:
                    continue  # already gone (e.g. deleted by its owner)
                self.collected.append((env.now, key))
                if isinstance(self.policy, RefCountRetention):
                    self.policy.forget(key)
