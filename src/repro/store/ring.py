"""Consistent-hash ring + the first-class :class:`Topology` spec.

Routing for :class:`~repro.store.sharded.ShardedStore` used to be frozen
at build time as ``crc32(key) % N`` -- correct, deterministic, and
impossible to change without remapping (almost) every key.  This module
replaces it with a classic consistent-hash ring with virtual nodes:

- **Deterministic under sim**: vnode placement is seeded
  (``blake2b(f"{seed}/{member}/{i}")``), key hashing is stable
  (``blake2b(key)``), and neither depends on Python's randomized
  ``hash`` -- every client, run, and host agrees on placement, and
  same-seed rings are bit-identical (see :meth:`ShardRing.fingerprint`).
- **Minimal movement**: adding one shard to an N-shard ring moves an
  expected ``1/(N+1)`` of the keyspace; removing one moves ``1/N``.
  Unmoved ranges keep their owner, which is what makes *online*
  resharding (:mod:`repro.store.reshard`) cheap: only the moved ranges
  migrate.
- **Versioned membership**: every ``add``/``remove`` bumps
  :attr:`ShardRing.version`.  Writes are fenced on the version during a
  cutover (a sealed range rejects with
  :class:`~repro.errors.ShardMovedError`), and the transaction
  coordinator re-groups a cross-shard batch when the ring moved under
  its feet -- see ``docs/transactions.md``.

:class:`Topology` is the API-redesign half: one spec object (ring seed,
vnodes, min/max shards, autoscale policy) replacing the scattered
integer ``shards=`` knobs.  The old knobs keep working through a
warn-once deprecation shim (:func:`coerce_shards_knob`); migration
hints live in ``docs/api.md``.
"""

import hashlib
import json
import warnings
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Default virtual nodes per ring member.  64 keeps the max/min owned
#: fraction within ~2x at small N while staying cheap to recompute.
DEFAULT_VNODES = 64

#: The hash space is [0, 2^64).
_SPACE_BITS = 64


def hash_key(key):
    """Position of ``key`` on the ring: stable 64-bit blake2b digest.

    Deliberately seed-independent (only vnode *placement* is seeded):
    two rings with different seeds still agree on where a key sits,
    they just carve the circle differently.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def key_in_ranges(key, ranges):
    """True when ``key`` hashes into any ``(lo, hi]`` ring range."""
    h = hash_key(key)
    return any(_contains(h, lo, hi) for lo, hi in ranges)


def _contains(h, lo, hi):
    """Membership in the half-open ring arc ``(lo, hi]`` (wrapping)."""
    if lo == hi:  # degenerate arc: the whole circle
        return True
    if lo < hi:
        return lo < h <= hi
    return h > lo or h <= hi  # the arc wraps through 0


class ShardRing:
    """A seeded consistent-hash ring over opaque, sortable member ids.

    Members are placed at :attr:`vnodes` pseudo-random points each; a
    key is owned by the member of the first point clockwise from the
    key's hash.  ``preview_add``/``preview_remove`` report exactly which
    ``(lo, hi]`` arcs a membership change would move (and from/to whom)
    WITHOUT mutating the ring -- the resharding engine copies those
    ranges first and flips the ring (``add``/``remove``, version bump)
    only at cutover.
    """

    def __init__(self, seed=0, vnodes=DEFAULT_VNODES, members=()):
        if vnodes < 1:
            raise ConfigurationError("a ring needs at least one vnode")
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        self.version = 0
        self.members = []  # insertion order (deterministic)
        self._points = []  # sorted [(point, member), ...]
        for member in members:
            self.add(member)

    @classmethod
    def for_count(cls, count, seed=0, vnodes=DEFAULT_VNODES):
        """The ring a fresh ``count``-shard store would build: members
        are the integer shard ids ``0..count-1``."""
        if count < 1:
            raise ConfigurationError("need at least one ring member")
        return cls(seed=seed, vnodes=vnodes, members=range(count))

    # -- placement -----------------------------------------------------------

    def _member_points(self, member):
        prefix = f"{self.seed}/{member}/"
        points = []
        for i in range(self.vnodes):
            digest = hashlib.blake2b(
                f"{prefix}{i}".encode("utf-8"), digest_size=8
            ).digest()
            points.append((int.from_bytes(digest, "big"), member))
        return sorted(points)

    def owner_of(self, key):
        """The member owning ``key`` (first vnode clockwise)."""
        return self.owner_of_point(hash_key(key))

    def owner_of_point(self, h):
        points = self._points
        if not points:
            raise ConfigurationError("the ring has no members")
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(points):
            lo = 0  # wrapped past the last point
        return points[lo][1]

    def owner_index(self, key):
        """Index of the owner in :attr:`members` (insertion order)."""
        return self.members.index(self.owner_of(key))

    def ranges_of(self, member):
        """The ``(lo, hi]`` arcs currently owned by ``member``."""
        points = self._points
        if not points:
            return []
        if len(self.members) == 1:
            return [(points[0][0], points[0][0])] if member in self.members else []
        return [
            (points[i - 1][0], pt)
            for i, (pt, m) in enumerate(points)
            if m == member
        ]

    # -- membership changes --------------------------------------------------

    def preview_add(self, member):
        """Arcs ``member`` would take over: ``[(lo, hi, old_owner)]``.

        Empty when the ring has no members yet (nothing to move from).
        Does not mutate the ring.
        """
        if member in self.members:
            raise ConfigurationError(f"ring member {member!r} already present")
        if not self._points:
            return []
        new_points = self._member_points(member)
        combined = sorted(self._points + new_points)
        moved = []
        for pt, m in new_points:
            i = combined.index((pt, m))
            lo = combined[i - 1][0]
            if lo == pt:
                continue  # degenerate arc (colliding point)
            moved.append((lo, pt, self.owner_of_point(pt)))
        return moved

    def add(self, member):
        """Commit ``member`` into the ring; bumps :attr:`version`.

        Returns the moved arcs (same shape as :meth:`preview_add`).
        """
        moved = self.preview_add(member)
        self._points = sorted(self._points + self._member_points(member))
        self.members.append(member)
        self.version += 1
        return moved

    def preview_remove(self, member):
        """Arcs that would change hands: ``[(lo, hi, new_owner)]``."""
        if member not in self.members:
            raise ConfigurationError(f"ring member {member!r} not present")
        if len(self.members) == 1:
            raise ConfigurationError("cannot remove the last ring member")
        points = self._points
        n = len(points)
        moved = []
        for i, (pt, m) in enumerate(points):
            if m != member:
                continue
            lo = points[i - 1][0]
            j = (i + 1) % n
            while points[j][1] == member:
                j = (j + 1) % n
            moved.append((lo, pt, points[j][1]))
        return moved

    def remove(self, member):
        """Commit the removal; bumps :attr:`version`; returns moved arcs."""
        moved = self.preview_remove(member)
        self._points = [p for p in self._points if p[1] != member]
        self.members.remove(member)
        self.version += 1
        return moved

    # -- identity ------------------------------------------------------------

    def fingerprint(self):
        """Stable digest of the full placement (seed, vnodes, points).

        Two rings built from the same seed and membership history are
        bit-identical here -- the determinism gate the reshard benchmark
        asserts.
        """
        payload = json.dumps(
            {
                "seed": self.seed,
                "vnodes": self.vnodes,
                "version": self.version,
                "points": [[pt, repr(m)] for pt, m in self._points],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self):
        return (
            f"ring v{self.version}: {len(self.members)} members x "
            f"{self.vnodes} vnodes (seed {self.seed})"
        )


@dataclass(frozen=True)
class AutoscalePolicy:
    """How a :class:`~repro.cluster.shardfleet.ShardFleet` scales shards.

    ``target_queue_depth`` is the per-shard load target fed to the
    standard HPA formula (load here is worker-queue depth plus an AIMD
    congestion penalty from admission control -- the obs-plane signals
    the flow plane already exports).
    """

    target_queue_depth: float = 4.0
    interval: float = 0.5
    cooldown: float = 2.0

    def __post_init__(self):
        if self.target_queue_depth <= 0:
            raise ConfigurationError("target_queue_depth must be positive")
        if self.interval <= 0 or self.cooldown < 0:
            raise ConfigurationError("invalid autoscale interval/cooldown")


@dataclass(frozen=True)
class Topology:
    """The sharding spec for one store: ring shape + elasticity bounds.

    Replaces the scattered integer ``shards=`` knobs (see
    ``docs/api.md``).  ``shards`` is the *initial* shard count;
    ``min_shards``/``max_shards`` bound what live resharding (manual
    ``store.reshard(n)`` or a :class:`ShardFleet` autoscaler) may do;
    ``cutover_drain`` is the quiesce window between sealing moved
    ranges and flipping the ring (it must exceed one watch-delivery
    hop plus the batch window so in-flight events land first).
    """

    shards: int = 1
    seed: int = 0
    vnodes: int = DEFAULT_VNODES
    min_shards: int = 1
    max_shards: int = None
    autoscale: AutoscalePolicy = None
    cutover_drain: float = 0.05

    def __post_init__(self):
        if self.shards < 1:
            raise ConfigurationError("a topology needs at least one shard")
        if self.min_shards < 1 or self.min_shards > self.shards:
            raise ConfigurationError(
                "need 1 <= min_shards <= shards "
                f"(got min={self.min_shards}, shards={self.shards})"
            )
        if self.max_shards is not None and self.max_shards < self.shards:
            raise ConfigurationError(
                "need shards <= max_shards "
                f"(got shards={self.shards}, max={self.max_shards})"
            )
        if self.vnodes < 1:
            raise ConfigurationError("a topology needs at least one vnode")
        if self.cutover_drain < 0:
            raise ConfigurationError("cutover_drain must be >= 0")

    @property
    def effective_max_shards(self):
        return self.max_shards if self.max_shards is not None else max(
            self.shards, 8
        )

    def build_ring(self, members=()):
        return ShardRing(seed=self.seed, vnodes=self.vnodes, members=members)


# -- deprecation shims --------------------------------------------------------

_DEPRECATION_SEEN = set()


def _reset_deprecations():
    """Test hook: re-arm the warn-once registry."""
    _DEPRECATION_SEEN.clear()


def deprecation_notice(message, dedup_key, stacklevel=3):
    """Emit ``message`` as a DeprecationWarning, once per ``dedup_key``."""
    if dedup_key in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(dedup_key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def coerce_shards_knob(shards, where):
    """Map a legacy integer ``shards=N`` knob to a :class:`Topology`.

    Returns ``None`` for ``shards <= 1`` (the unsharded default) so
    callers keep their single-backend fast path.  Warns once per call
    site; see ``docs/api.md`` for the migration recipe.
    """
    deprecation_notice(
        f"{where}: the integer shards= knob is deprecated; pass "
        "topology=Topology(shards=N) instead (repro.store.Topology) -- "
        "see docs/api.md",
        dedup_key=("shards-knob", where),
        stacklevel=4,
    )
    shards = int(shards)
    if shards <= 1:
        return None
    return Topology(shards=shards)
