"""A Zed-lake-like Log store.

The Log Data Exchange keeps state as structured / semi-structured records
in append-only *pools* and exposes data ingestion (``load``) plus analytics
(``query``) APIs.  Queries are :mod:`repro.store.zql` pipelines executed
server-side.

Records are plain dicts; the lake stamps each with ``_seq`` (a pool-unique,
monotonically increasing sequence number) and ``_ts`` (ingest time).
Watchers subscribe per pool and receive each loaded batch.
"""

from repro.errors import AlreadyExistsError, NotFoundError, StoreError
from repro.obs.context import current_context
from repro.store.base import OpLatency, StoreClient, StoreServer, WatchEvent
from repro.store.cow import CowMap, copy_value, estimate_size, freeze
from repro.query.core import compile_ops

#: Event type for log-batch delivery (pools are append-only: no MODIFIED).
APPENDED = "APPENDED"

DEFAULT_OPS = {
    "create_pool": OpLatency(base=0.0010),
    "load": OpLatency(base=0.0008, per_byte=2e-9),
    "query": OpLatency(base=0.0010),
    "stats": OpLatency(base=0.0003),
    "pools": OpLatency(base=0.0003),
}


class _Pool:
    __slots__ = ("name", "records", "next_seq", "created_at")

    def __init__(self, name, created_at):
        self.name = name
        self.records = []
        self.next_seq = 0
        self.created_at = created_at


class LogLake(StoreServer):
    """The server side of the Log store."""

    OPS = dict(DEFAULT_OPS)

    #: Credit-paused watch buffers queue batches contiguously: every
    #: APPENDED event carries distinct records, so newest-wins coalescing
    #: would silently lose data.
    WATCH_COALESCE = "append"

    #: Server-side scan cost per record touched by a query.
    scan_cost_per_record = 2e-7

    def __init__(
        self,
        env,
        network,
        location="loglake",
        workers=1,
        tracer=None,
        ops=None,
        watch_overhead=0.0003,
        watch_batch_window=0.0,
        zero_copy=True,
        delta_watch=False,
    ):
        super().__init__(env, network, location, workers=workers, tracer=tracer,
                         watch_batch_window=watch_batch_window,
                         zero_copy=zero_copy, delta_watch=delta_watch)
        if ops:
            self.OPS = {**self.OPS, **ops}
        self._pools = {}
        self.watch_overhead = watch_overhead

    # -- operations -----------------------------------------------------------

    def op_create_pool(self, pool):
        if pool in self._pools:
            raise AlreadyExistsError(f"pool {pool!r} already exists")
        self._pools[pool] = _Pool(pool, self.env.now)
        return {"pool": pool}

    def op_load(self, pool, records):
        """Append a batch of records; returns the assigned seq range."""
        target = self._pool(pool)
        if not isinstance(records, list):
            raise StoreError("load expects a list of records")
        first_seq = target.next_seq
        stamped = []
        for record in records:
            if not isinstance(record, dict):
                raise StoreError(f"records must be dicts, got {type(record).__name__}")
            if self.zero_copy:
                # One frozen row shared by the pool, watch events, and
                # every later scan; the stamp fields ride the freeze.
                row = CowMap({
                    **freeze(record, self.copy_meter, "ingest"),
                    "_seq": target.next_seq,
                    "_ts": self.env.now,
                })
            else:
                row = copy_value(record, self.copy_meter, "ingest")
                row["_seq"] = target.next_seq
                row["_ts"] = self.env.now
            target.next_seq += 1
            stamped.append(row)
        target.records.extend(stamped)
        if self.tracer is not None:
            self.tracer.record(
                "store", "load", location=self.location, pool=pool,
                count=len(stamped),
            )
        if stamped:
            ctx = current_context()
            if ctx is not None and ctx.sink is not None:
                ctx = ctx.sink.point(
                    "load", service=self.location, parent=ctx, pool=pool,
                    store=pool, count=len(stamped),
                )
            event = WatchEvent(
                APPENDED, pool, {"records": stamped, "first_seq": first_seq},
                revision=target.next_seq,
                ctx=ctx, committed_at=self.env.now,
            )
            if self.watch_overhead <= 0:
                self.notify(event)
            else:
                timer = self.env.timeout(self.watch_overhead)
                timer.callbacks.append(lambda _evt: self.notify(event))
        return {"pool": pool, "first_seq": first_seq, "count": len(stamped)}

    def op_query(self, pool, ops=(), since_seq=None, until_seq=None,
                 include_watermark=False):
        """Run a ZQL pipeline over the pool (optionally a seq range).

        ``since_seq`` is inclusive, ``until_seq`` exclusive.  Implemented
        as a sub-process: scan time is proportional to the number of
        records scanned.

        ``include_watermark=True`` is the federation scan hook: the
        answer becomes ``{"records": [...], "watermark": next_seq}`` so
        a federated read (or a materialized view's catch-up) can stamp
        the exact sequence point its snapshot covers and resume from it
        without re-scanning.
        """
        target = self._pool(pool)
        watermark = target.next_seq
        scanned = [
            r
            for r in target.records
            if (since_seq is None or r["_seq"] >= since_seq)
            and (until_seq is None or r["_seq"] < until_seq)
        ]
        pipeline = compile_ops(list(ops))

        def run(env):
            delay = len(scanned) * self.scan_cost_per_record
            if delay > 0:
                yield env.timeout(delay)
            if self.zero_copy:
                # ZQL stages copy-before-mutate, so frozen rows flow
                # through the pipeline directly: the per-row deep copy
                # this scan used to pay is gone.
                for row in scanned:
                    self.copy_meter.shared(estimate_size(row))
                records = pipeline(list(scanned))
            else:
                records = pipeline(
                    [copy_value(r, self.copy_meter, "scan") for r in scanned]
                )
            if include_watermark:
                return {"records": records, "watermark": watermark}
            return records

        return run(self.env)

    def op_stats(self, pool):
        target = self._pool(pool)
        return {
            "pool": pool,
            "records": len(target.records),
            "next_seq": target.next_seq,
            "created_at": target.created_at,
        }

    def op_pools(self):
        return sorted(self._pools)

    # -- internals ------------------------------------------------------------

    def _pool(self, name):
        pool = self._pools.get(name)
        if pool is None:
            raise NotFoundError(f"pool {name!r} not found")
        return pool


class LogLakeClient(StoreClient):
    """Typed convenience client for the Log store."""

    def create_pool(self, pool):
        return self.request("create_pool", pool=pool)

    def load(self, pool, records):
        return self.request("load", pool=pool, records=records)

    def query(self, pool, ops=(), since_seq=None, until_seq=None,
              include_watermark=False):
        return self.request(
            "query", pool=pool, ops=list(ops),
            since_seq=since_seq, until_seq=until_seq,
            include_watermark=include_watermark,
        )

    def stats(self, pool):
        return self.request("stats", pool=pool)

    def pools(self):
        return self.request("pools")

    def watch_pool(self, pool, handler, credits=None, overflow=None):
        """Subscribe to batches appended to ``pool``."""
        return self.watch(handler, key_prefix=pool, credits=credits,
                          overflow=overflow)
