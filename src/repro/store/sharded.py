"""A hash-sharded frontend over N homogeneous Object-store replicas.

The paper's prototype backs each data store with ONE apiserver or Redis
instance; every operation serializes through that server's worker queue.
:class:`ShardedStore` scales the hot path out the way production DBMSs
do (cf. Apiary's partitioned function state): the keyspace is
hash-partitioned across N replica servers, each with its *own* worker
pool, latency budget, and per-shard revision counter.

Design points:

- **Routing is client-side and deterministic**: ``crc32(key) % N`` (not
  Python's randomized ``hash``), so every client, every run, and every
  seed agrees on placement.
- **Revisions are per shard.**  There is no global commit order across
  shards -- exactly like real sharded stores.  Cross-key invariants that
  need one commit order must keep those keys on one shard (see ``txn``).
- **Watches are merged, interest-filtered streams**: one underlying
  watch per shard, surfaced as a single :class:`MergedWatch`.  Per-key
  event order is preserved (a key lives on one shard; shard streams are
  FIFO); cross-shard interleaving is timing-dependent, as it would be
  against a real sharded backend.
- **Transactions are single-shard by default**: a txn whose keys map to
  more than one shard fails with
  :class:`~repro.errors.CrossShardTxnError` (carrying the key->shard
  map) unless the caller opts into the cross-shard transactional plane
  with ``txn(ops, mode="2pc")`` or ``mode="saga"`` -- see
  :mod:`repro.txn` and ``docs/transactions.md``.

The frontend intentionally mirrors the :class:`~repro.store.base
.StoreServer` / :class:`~repro.store.base.StoreClient` split so the
Object Data Exchange can host stores on it unchanged.
"""

import zlib

from repro.errors import CrossShardTxnError, StoreError
from repro.store.apiserver import ApiServer, ApiServerClient
from repro.store.base import StoreClient
from repro.store.memkv import MemKV, MemKVClient


def shard_index(key, shard_count):
    """Deterministic shard for ``key`` (stable across runs and hosts)."""
    return zlib.crc32(key.encode("utf-8")) % shard_count


#: Typed client used per shard, by backend class.
_SHARD_CLIENTS = {ApiServer: ApiServerClient, MemKV: MemKVClient}


class ShardedStore:
    """Server-side frontend: owns the shard list and fault surface."""

    def __init__(self, shards, name="sharded"):
        shards = list(shards)
        if not shards:
            raise StoreError("a sharded store needs at least one shard")
        kinds = {type(shard) for shard in shards}
        if len(kinds) > 1:
            raise StoreError(
                "shards must be homogeneous, got "
                + ", ".join(sorted(k.__name__ for k in kinds))
            )
        self.shards = shards
        self.name = name
        self.env = shards[0].env
        self.network = shards[0].network
        self._coordinator = None  # lazy; see .coordinator

    @property
    def coordinator(self):
        """The cross-shard transaction coordinator (created on first use).

        One per store: the decision log must be singular for recovery to
        be meaningful.  Register it with a
        :class:`~repro.faults.FaultInjector` (``register_process``) to
        chaos-test the commit protocol.
        """
        if self._coordinator is None:
            from repro.txn import TxnCoordinator

            self._coordinator = TxnCoordinator(self)
        return self._coordinator

    # -- identity ------------------------------------------------------------

    @property
    def location(self):
        """Logical location of the frontend (shards have their own)."""
        return self.name

    @property
    def shard_count(self):
        return len(self.shards)

    def shard_for(self, key):
        return self.shards[shard_index(key, len(self.shards))]

    # -- aggregated observability -------------------------------------------

    @property
    def op_counts(self):
        merged = {}
        for shard in self.shards:
            for op, count in shard.op_counts.items():
                merged[op] = merged.get(op, 0) + count
        return merged

    @property
    def revisions(self):
        """Per-shard revision counters (there is no global revision)."""
        return {shard.location: shard.revision for shard in self.shards}

    @property
    def watch_messages_sent(self):
        return sum(s.watch_messages_sent for s in self.shards)

    @property
    def watch_events_sent(self):
        return sum(s.watch_events_sent for s in self.shards)

    @property
    def watch_wire_bytes(self):
        return sum(s.watch_wire_bytes for s in self.shards)

    @property
    def watch_deltas_sent(self):
        return sum(s.watch_deltas_sent for s in self.shards)

    @property
    def watch_fulls_sent(self):
        return sum(s.watch_fulls_sent for s in self.shards)

    @property
    def watch_pauses(self):
        return sum(s.watch_pauses for s in self.shards)

    @property
    def watch_paused_coalesced(self):
        return sum(s.watch_paused_coalesced for s in self.shards)

    @property
    def watch_shed_events(self):
        return sum(s.watch_shed_events for s in self.shards)

    @property
    def watch_forced_resyncs(self):
        return sum(s.watch_forced_resyncs for s in self.shards)

    @property
    def watch_credit_grants(self):
        return sum(s.watch_credit_grants for s in self.shards)

    @property
    def admission(self):
        """Shard 0's controller (set_admission installs one per shard)."""
        return self.shards[0].admission

    def set_admission(self, factory):
        """Install one admission controller per shard via ``factory()``.

        Per shard, not shared: each shard has its own worker queue (the
        AIMD congestion signal), exactly as N real replicas would.
        """
        for shard in self.shards:
            shard.admission = factory()

    def admission_stats(self):
        """Merged per-class admitted/rejected counters across shards."""
        merged = {"admitted": 0, "rejected": 0, "classes": {}}
        for shard in self.shards:
            if shard.admission is None:
                continue
            stats = shard.admission.stats()
            merged["admitted"] += stats["admitted"]
            merged["rejected"] += stats["rejected"]
            for name, cls in stats["classes"].items():
                slot = merged["classes"].setdefault(
                    name, {"admitted": 0, "rejected": 0, "scale": 1.0}
                )
                slot["admitted"] += cls["admitted"]
                slot["rejected"] += cls["rejected"]
                slot["scale"] = min(slot["scale"], cls["scale"])
        return merged

    @property
    def zero_copy(self):
        return all(s.zero_copy for s in self.shards)

    @property
    def delta_watch(self):
        return all(s.delta_watch for s in self.shards)

    @property
    def copy_stats(self):
        from repro.store.cow import CopyMeter

        return CopyMeter.merge_snapshots([s.copy_stats for s in self.shards])

    @property
    def in_doubt_txns(self):
        """Prepared-but-undecided 2PC participants, summed across shards.

        Drains to zero once the coordinator (or its recovery pass after a
        restart) delivers a decision to every prepared shard.
        """
        return sum(s.in_doubt_txns for s in self.shards)

    def txn_stats(self):
        """Coordinator counters (zeros if no cross-shard txn ever ran)."""
        if self._coordinator is None:
            return {}
        return self._coordinator.txn_stats()

    @property
    def aborted_ops(self):
        return sum(s.aborted_ops for s in self.shards)

    @property
    def crash_count(self):
        return sum(s.crash_count for s in self.shards)

    @property
    def watch_batch_window(self):
        return max(s.watch_batch_window for s in self.shards)

    @property
    def available(self):
        """The frontend is available only when every shard is."""
        return all(s.available for s in self.shards)

    # -- fault surface (delegates to every shard; use .shards for one) -------

    def fail_over(self):
        return sum(s.fail_over() for s in self.shards)

    def crash(self):
        for shard in self.shards:
            shard.crash()

    def restart(self):
        for shard in self.shards:
            shard.restart()

    def set_available(self, available):
        for shard in self.shards:
            shard.set_available(available)

    def sever_watches(self, location=None, detect_after=None):
        return sum(
            s.sever_watches(location=location, detect_after=detect_after)
            for s in self.shards
        )


class MergedWatch:
    """One logical watch stream assembled from one watch per shard.

    Cancellation fans out to every shard; a break on ANY shard stream
    invalidates the whole merged stream (events from that shard would
    silently go missing otherwise), so ``on_close`` fires exactly once
    and the remaining shard watches are cancelled.
    """

    def __init__(self):
        self.watches = []
        self._closed = False

    @property
    def active(self):
        return any(w.active for w in self.watches)

    @property
    def delivered(self):
        return sum(w.delivered for w in self.watches)

    @property
    def credit_pauses(self):
        return sum(w.credit_pauses for w in self.watches)

    @property
    def forced_resyncs(self):
        return sum(w.forced_resyncs for w in self.watches)

    @property
    def peak_paused(self):
        return max((w.peak_paused for w in self.watches), default=0)

    def cancel(self):
        for watch in self.watches:
            watch.cancel()

    def _close_once(self, on_close):
        if self._closed:
            return
        self._closed = True
        self.cancel()
        on_close()


class ShardedStoreClient:
    """Client-side router: one typed client per shard, keyed by crc32.

    Mirrors the :class:`~repro.store.base.StoreClient` Object surface
    (create/get/update/patch/delete/list/txn/watch) plus the opt-in
    hot-path optimizations, which delegate straight to the per-shard
    clients.
    """

    def __init__(self, store, location, retry_policy=None, circuit_breaker=None):
        self.store = store
        self.env = store.env
        self.location = location
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        self.clients = [
            _SHARD_CLIENTS.get(type(shard), StoreClient)(
                shard, location,
                retry_policy=retry_policy, circuit_breaker=circuit_breaker,
            )
            for shard in store.shards
        ]

    def _client_for(self, key):
        return self.clients[shard_index(key, len(self.clients))]

    # -- flow-control surface (fans out to every shard client) ---------------

    @property
    def principal(self):
        return self.clients[0].principal

    @principal.setter
    def principal(self, value):
        for client in self.clients:
            client.principal = value

    @property
    def default_watch_credits(self):
        return self.clients[0].default_watch_credits

    @default_watch_credits.setter
    def default_watch_credits(self, value):
        for client in self.clients:
            client.default_watch_credits = value

    @property
    def default_watch_overflow(self):
        return self.clients[0].default_watch_overflow

    @default_watch_overflow.setter
    def default_watch_overflow(self, value):
        for client in self.clients:
            client.default_watch_overflow = value

    @property
    def zero_copy(self):
        return self.store.zero_copy

    @property
    def copy_meter(self):
        # Writes route per shard; expose shard 0's meter for callers that
        # want *a* meter (aggregate accounting lives on store.copy_stats).
        return self.store.shards[0].copy_meter

    # -- single-key ops route to the owning shard ----------------------------

    def create(self, key, data, labels=None):
        return self._client_for(key).create(key, data, labels=labels)

    def get(self, key):
        return self._client_for(key).get(key)

    def update(self, key, data, resource_version=None):
        return self._client_for(key).update(
            key, data, resource_version=resource_version
        )

    def patch(self, key, patch, resource_version=None):
        return self._client_for(key).patch(
            key, patch, resource_version=resource_version
        )

    def delete(self, key):
        return self._client_for(key).delete(key)

    # -- scatter/gather ------------------------------------------------------

    def list(self, key_prefix=""):
        """Fan ``list`` out to every shard; merge sorted by key."""
        if len(self.clients) == 1:
            return self.clients[0].list(key_prefix=key_prefix)
        return self.env.process(self._list(key_prefix))

    def _list(self, key_prefix):
        procs = [c.list(key_prefix=key_prefix) for c in self.clients]
        results = yield self.env.all_of(procs)
        merged = []
        for proc in procs:
            merged.extend(results[proc])
        merged.sort(key=lambda view: view["key"])
        return merged

    # -- transactions --------------------------------------------------------

    def txn(self, ops, mode=None, idempotence_key=None):
        """Atomic batch; cross-shard only with an explicit ``mode``.

        Single-shard batches take the fast path: one server, one commit
        order, atomicity for free.  A batch whose keys map to several
        shards fails with :class:`~repro.errors.CrossShardTxnError`
        (carrying the key->shard map) unless the caller selects a
        cross-shard protocol:

        - ``mode="2pc"``: atomic across shards via two-phase commit;
          in-doubt participants block conflicting writers until the
          coordinator decides (see :mod:`repro.txn`);
        - ``mode="saga"``: per-shard commits with compensating rollback;
          no cross-shard locks, but intermediate states are visible.

        ``idempotence_key`` (cross-shard modes) makes the submission
        exactly-once across retries and replays.
        """
        if mode is not None:
            return self.store.coordinator.txn(
                ops, mode=mode, idempotence_key=idempotence_key
            )
        try:
            target = self._txn_client(ops)
        except StoreError as exc:
            failed = self.env.event()
            failed.fail(exc)
            return failed
        return target.txn(ops)

    def _txn_client(self, ops):
        if not isinstance(ops, list) or not ops:
            return self.clients[0]  # shard raises the canonical validation error
        shard_map = {
            str(op.get("key") or ""):
                shard_index(str(op.get("key") or ""), len(self.clients))
            for op in ops
        }
        owners = set(shard_map.values())
        if len(owners) > 1:
            raise CrossShardTxnError(
                "cross-shard transactions need an explicit mode: keys "
                f"{sorted(shard_map)} map to {len(owners)} shards; pass "
                "mode='2pc' or mode='saga', or co-locate transactional "
                "keys",
                shard_map=shard_map,
            )
        return self.clients[owners.pop()]

    # -- watches -------------------------------------------------------------

    def watch(self, handler, key_prefix="", on_close=None, batch_handler=None,
              credits=None, overflow=None):
        """Merged, interest-filtered stream across all shards.

        ``credits`` is a *per-shard-stream* window: each underlying
        shard watch gets its own, since each shard fans out over its own
        link.  A credit-forced resync on any shard breaks the whole
        merged stream (``on_close`` once), exactly like a fault break.
        """
        merged = MergedWatch()
        close = None
        if on_close is not None:
            close = lambda: merged._close_once(on_close)  # noqa: E731
        for client in self.clients:
            merged.watches.append(
                client.watch(handler, key_prefix,
                             on_close=close, batch_handler=batch_handler,
                             credits=credits, overflow=overflow)
            )
        return merged

    # -- opt-in hot-path optimizations (delegate per shard) ------------------

    @property
    def coalesce_writes(self):
        return all(c.coalesce_writes for c in self.clients)

    @coalesce_writes.setter
    def coalesce_writes(self, value):
        for client in self.clients:
            client.coalesce_writes = bool(value)

    @property
    def patches_coalesced(self):
        return sum(c.patches_coalesced for c in self.clients)

    def enable_read_cache(self, key_prefix=""):
        for client in self.clients:
            client.enable_read_cache(key_prefix)

    @property
    def cache_hits(self):
        return sum(c.cache_hits for c in self.clients)

    @property
    def cache_misses(self):
        return sum(c.cache_misses for c in self.clients)
