"""A hash-sharded frontend over N homogeneous Object-store replicas.

The paper's prototype backs each data store with ONE apiserver or Redis
instance; every operation serializes through that server's worker queue.
:class:`ShardedStore` scales the hot path out the way production DBMSs
do (cf. Apiary's partitioned function state): the keyspace is
hash-partitioned across N replica servers, each with its *own* worker
pool, latency budget, and per-shard revision counter.

Design points:

- **Routing is client-side, deterministic, and live**: placement comes
  from a seeded consistent-hash ring (:mod:`repro.store.ring`), not
  Python's randomized ``hash`` and not a build-time modulo -- every
  client, every run, and every seed agrees on placement, and the ring
  can change membership *while the store serves traffic* (see
  :meth:`ShardedStore.reshard` and :mod:`repro.store.reshard`).
- **Topology is a first-class spec**: :class:`~repro.store.ring.Topology`
  (ring seed, vnodes, min/max shards, autoscale policy) replaces the
  scattered integer ``shards=`` knobs; legacy knobs map through a
  warn-once shim (``docs/api.md``).
- **Revisions are per shard.**  There is no global commit order across
  shards -- exactly like real sharded stores.  Cross-key invariants that
  need one commit order must keep those keys on one shard (see ``txn``).
- **Watches are merged, interest-filtered streams**: one underlying
  watch per shard, surfaced as a single :class:`MergedWatch`.  Per-key
  event order is preserved (a key lives on one shard; shard streams are
  FIFO); cross-shard interleaving is timing-dependent, as it would be
  against a real sharded backend.  A reshard extends/retires branches
  in place -- the merged stream never closes for a topology change.
- **Transactions are single-shard by default**: a txn whose keys map to
  more than one shard fails with
  :class:`~repro.errors.CrossShardTxnError` (carrying the key->owner
  map at the current ring version) unless the caller opts into the
  cross-shard transactional plane with ``txn(ops, mode="2pc")`` or
  ``mode="saga"`` -- see :mod:`repro.txn` and ``docs/transactions.md``.

The frontend intentionally mirrors the :class:`~repro.store.base
.StoreServer` / :class:`~repro.store.base.StoreClient` split so the
Object Data Exchange can host stores on it unchanged.
"""

from repro.errors import (
    ConfigurationError,
    CrossShardTxnError,
    ShardMovedError,
    StoreError,
)
from repro.store.apiserver import ApiServer, ApiServerClient
from repro.store.base import StoreClient
from repro.store.memkv import MemKV, MemKVClient
from repro.store.ring import ShardRing, Topology, deprecation_notice

#: How long a rerouting client backs off before re-resolving ownership
#: of a fenced key.  Well under the cutover drain window, so a client
#: lands on the new owner within a handful of probes after the flip.
REROUTE_BACKOFF = 0.004

#: Reroute attempts before giving up (covers a full cutover window --
#: seal + drain + reconcile -- with a wide margin).
REROUTE_ATTEMPTS = 250


_RING_CACHE = {}


def shard_index(key, shard_count):
    """Deprecated placement helper: owner index on a default ring.

    Kept as a warn-once shim for callers of the old modulo router; it
    now answers from ``ShardRing.for_count(shard_count)`` so it always
    agrees with what a default-topology :class:`ShardedStore` does.
    Migrate to ``store.ring.owner_index(key)`` (live stores) or
    ``ShardRing.for_count(n).owner_index(key)`` -- see docs/api.md.
    """
    deprecation_notice(
        "shard_index() is deprecated: placement now comes from the "
        "consistent-hash ring; use ShardRing.for_count(n).owner_index(key) "
        "or store.ring -- see docs/api.md",
        dedup_key="shard_index",
    )
    ring = _RING_CACHE.get(shard_count)
    if ring is None:
        ring = _RING_CACHE[shard_count] = ShardRing.for_count(shard_count)
    return ring.owner_index(key)


#: Typed client used per shard, by backend class.
_SHARD_CLIENTS = {ApiServer: ApiServerClient, MemKV: MemKVClient}


def _shard_client(shard, location, retry_policy=None, circuit_breaker=None):
    return _SHARD_CLIENTS.get(type(shard), StoreClient)(
        shard, location,
        retry_policy=retry_policy, circuit_breaker=circuit_breaker,
    )


class ShardedStore:
    """Server-side frontend: owns the ring, the shard list, and the
    fault surface.

    Two construction forms:

    - ``ShardedStore([server, ...])`` -- explicit shard servers (the
      classic form; the default topology is inferred).
    - ``ShardedStore(topology=Topology(shards=4), shard_factory=f)`` --
      the factory builds each shard server from its stable shard id.

    A ``shard_factory`` (also settable later) is what makes
    :meth:`reshard` able to *grow*: new shards are minted from stable,
    never-reused integer ids, so ring placement -- and therefore run
    fingerprints -- depend only on the topology seed and the reshard
    history, never on object identity.
    """

    def __init__(self, shards=None, name="sharded", topology=None,
                 shard_factory=None):
        self.name = name
        self.shard_factory = shard_factory
        if shards is None and topology is None:
            raise StoreError(
                "a sharded store needs shard servers or a topology"
            )
        if shards is None:
            if shard_factory is None:
                raise StoreError(
                    "ShardedStore(topology=...) needs a shard_factory to "
                    "build the shard servers"
                )
            shards = [shard_factory(i) for i in range(topology.shards)]
        else:
            shards = list(shards)
        if not shards:
            raise StoreError("a sharded store needs at least one shard")
        if topology is None:
            topology = Topology(shards=len(shards))
        elif topology.shards != len(shards):
            raise StoreError(
                f"topology says {topology.shards} shards but "
                f"{len(shards)} servers were given"
            )
        kinds = {type(shard) for shard in shards}
        if len(kinds) > 1:
            raise StoreError(
                "shards must be homogeneous, got "
                + ", ".join(sorted(k.__name__ for k in kinds))
            )
        self.topology = topology
        self.shards = shards
        #: Stable shard ids, parallel to :attr:`shards`.  Ring members.
        self.shard_ids = list(range(len(shards)))
        self._next_shard_id = len(shards)
        self.ring = topology.build_ring(members=self.shard_ids)
        #: Shards removed by a shrink: kept for monotonic counters.
        self.retired_shards = []
        self.env = shards[0].env
        self.network = shards[0].network
        self._coordinator = None  # lazy; see .coordinator
        self._clients = []  # every ShardedStoreClient routing through us
        self._admission_factory = None
        self._resharder = None  # lazy; see .resharder
        for shard in self.shards:
            shard._ring_context = self

    @property
    def coordinator(self):
        """The cross-shard transaction coordinator (created on first use).

        One per store: the decision log must be singular for recovery to
        be meaningful.  Register it with a
        :class:`~repro.faults.FaultInjector` (``register_process``) to
        chaos-test the commit protocol.
        """
        if self._coordinator is None:
            from repro.txn import TxnCoordinator

            self._coordinator = TxnCoordinator(self)
        return self._coordinator

    @property
    def resharder(self):
        """The live-reshard engine (created on first use)."""
        if self._resharder is None:
            from repro.store.reshard import Resharder

            self._resharder = Resharder(self)
        return self._resharder

    # -- identity ------------------------------------------------------------

    @property
    def location(self):
        """Logical location of the frontend (shards have their own)."""
        return self.name

    @property
    def shard_count(self):
        return len(self.shards)

    def index_of_member(self, member):
        """Position of ring ``member`` in :attr:`shards`."""
        return self.shard_ids.index(member)

    def shard_by_id(self, member):
        return self.shards[self.index_of_member(member)]

    def shard_for(self, key):
        return self.shard_by_id(self.ring.owner_of(key))

    def owner_location(self, key):
        """Authoritative owner shard location for ``key`` (live ring)."""
        return self.shard_for(key).location

    # -- live resharding (see repro.store.reshard) ---------------------------

    def reshard(self, shard_count):
        """Migrate to ``shard_count`` shards, online.

        Returns a simnet process; reads, writes, and watches keep
        flowing while key ranges move.  Growing needs a
        :attr:`shard_factory`.  Bounds come from the topology.
        """
        return self.resharder.reshard(shard_count)

    @property
    def reshard_stats(self):
        if self._resharder is None:
            return {"reshards": 0, "transitions": 0, "keys_moved": 0,
                    "ranges_moved": 0, "resyncs": 0, "last_duration": 0.0}
        return self._resharder.stats()

    def _install_shard(self):
        """Build + wire a new shard server (ring flip happens later).

        The server joins the fault/observability surface and every
        routing client immediately -- including live merged watches,
        which grow a branch so no event is missed once the ring flips --
        but owns no keys until the reshard engine flips the ring.
        """
        if self.shard_factory is None:
            raise ConfigurationError(
                f"store {self.name!r} cannot grow without a shard_factory"
            )
        member = self._next_shard_id
        self._next_shard_id += 1
        shard = self.shard_factory(member)
        if self.shards and type(shard) is not type(self.shards[0]):
            raise StoreError(
                "shards must be homogeneous, got "
                f"{type(shard).__name__} from the factory next to "
                f"{type(self.shards[0]).__name__}"
            )
        shard._ring_context = self
        if self._admission_factory is not None:
            shard.admission = self._admission_factory()
        self.shards.append(shard)
        self.shard_ids.append(member)
        for client in self._clients:
            client._attach_shard(shard)
        return member, shard

    def _uninstall_shard(self, member):
        """Retire a shard after the ring no longer routes to it."""
        index = self.index_of_member(member)
        shard = self.shards.pop(index)
        self.shard_ids.pop(index)
        self.retired_shards.append(shard)
        for client in self._clients:
            client._detach_shard(shard)
        return shard

    # -- aggregated observability -------------------------------------------

    @property
    def _all_shards(self):
        """Live + retired, for counters that must stay monotonic."""
        return self.shards + self.retired_shards

    @property
    def op_counts(self):
        merged = {}
        for shard in self._all_shards:
            for op, count in shard.op_counts.items():
                merged[op] = merged.get(op, 0) + count
        return merged

    @property
    def revisions(self):
        """Per-shard revision counters (there is no global revision)."""
        return {shard.location: shard.revision for shard in self.shards}

    @property
    def ring_version(self):
        return self.ring.version

    @property
    def fence_rejections(self):
        """Writes bounced off sealed ranges during cutovers (then
        rerouted by the client; never surfaced to callers)."""
        return sum(s.fence_rejections for s in self._all_shards)

    @property
    def watch_messages_sent(self):
        return sum(s.watch_messages_sent for s in self._all_shards)

    @property
    def watch_events_sent(self):
        return sum(s.watch_events_sent for s in self._all_shards)

    @property
    def watch_wire_bytes(self):
        return sum(s.watch_wire_bytes for s in self._all_shards)

    @property
    def watch_deltas_sent(self):
        return sum(s.watch_deltas_sent for s in self._all_shards)

    @property
    def watch_fulls_sent(self):
        return sum(s.watch_fulls_sent for s in self._all_shards)

    @property
    def watch_pauses(self):
        return sum(s.watch_pauses for s in self._all_shards)

    @property
    def watch_paused_coalesced(self):
        return sum(s.watch_paused_coalesced for s in self._all_shards)

    @property
    def watch_shed_events(self):
        return sum(s.watch_shed_events for s in self._all_shards)

    @property
    def watch_forced_resyncs(self):
        return sum(s.watch_forced_resyncs for s in self._all_shards)

    @property
    def watch_credit_grants(self):
        return sum(s.watch_credit_grants for s in self._all_shards)

    @property
    def admission(self):
        """Shard 0's controller (set_admission installs one per shard)."""
        return self.shards[0].admission

    def set_admission(self, factory):
        """Install one admission controller per shard via ``factory()``.

        Per shard, not shared: each shard has its own worker queue (the
        AIMD congestion signal), exactly as N real replicas would.  The
        factory is kept so shards added by a reshard get their own too.
        """
        self._admission_factory = factory
        for shard in self.shards:
            shard.admission = factory()

    def admission_stats(self):
        """Merged per-class admitted/rejected counters across shards."""
        merged = {"admitted": 0, "rejected": 0, "classes": {}}
        for shard in self._all_shards:
            if shard.admission is None:
                continue
            stats = shard.admission.stats()
            merged["admitted"] += stats["admitted"]
            merged["rejected"] += stats["rejected"]
            for name, cls in stats["classes"].items():
                slot = merged["classes"].setdefault(
                    name, {"admitted": 0, "rejected": 0, "scale": 1.0}
                )
                slot["admitted"] += cls["admitted"]
                slot["rejected"] += cls["rejected"]
                slot["scale"] = min(slot["scale"], cls["scale"])
        return merged

    @property
    def zero_copy(self):
        return all(s.zero_copy for s in self.shards)

    @property
    def delta_watch(self):
        return all(s.delta_watch for s in self.shards)

    @property
    def copy_stats(self):
        from repro.store.cow import CopyMeter

        return CopyMeter.merge_snapshots(
            [s.copy_stats for s in self._all_shards]
        )

    @property
    def in_doubt_txns(self):
        """Prepared-but-undecided 2PC participants, summed across shards.

        Drains to zero once the coordinator (or its recovery pass after a
        restart) delivers a decision to every prepared shard.
        """
        return sum(s.in_doubt_txns for s in self.shards)

    def txn_stats(self):
        """Coordinator counters (zeros if no cross-shard txn ever ran)."""
        if self._coordinator is None:
            return {}
        return self._coordinator.txn_stats()

    @property
    def aborted_ops(self):
        return sum(s.aborted_ops for s in self._all_shards)

    @property
    def crash_count(self):
        return sum(s.crash_count for s in self._all_shards)

    @property
    def watch_batch_window(self):
        return max(s.watch_batch_window for s in self.shards)

    @property
    def available(self):
        """The frontend is available only when every shard is."""
        return all(s.available for s in self.shards)

    # -- fault surface (delegates to every shard; use .shards for one) -------

    def fail_over(self):
        return sum(s.fail_over() for s in self.shards)

    def crash(self):
        for shard in self.shards:
            shard.crash()

    def restart(self):
        for shard in self.shards:
            shard.restart()

    def set_available(self, available):
        for shard in self.shards:
            shard.set_available(available)

    def sever_watches(self, location=None, detect_after=None):
        return sum(
            s.sever_watches(location=location, detect_after=detect_after)
            for s in self.shards
        )


class MergedWatch:
    """One logical watch stream assembled from one watch per shard.

    Cancellation fans out to every shard; a break on ANY shard stream
    invalidates the whole merged stream (events from that shard would
    silently go missing otherwise), so ``on_close`` fires exactly once
    and the remaining shard watches are cancelled.

    Resharding does NOT close the stream: a new shard adds a branch
    (same handler, same credit window) before the ring flips, and a
    retired shard's branch is detached after its last event drained.
    """

    def __init__(self, spec=None):
        self.watches = []
        self._spec = spec or {}
        self._closed = False

    @property
    def active(self):
        return any(w.active for w in self.watches)

    @property
    def delivered(self):
        return sum(w.delivered for w in self.watches)

    @property
    def credit_pauses(self):
        return sum(w.credit_pauses for w in self.watches)

    @property
    def forced_resyncs(self):
        return sum(w.forced_resyncs for w in self.watches)

    @property
    def peak_paused(self):
        return max((w.peak_paused for w in self.watches), default=0)

    def cancel(self):
        for watch in self.watches:
            watch.cancel()

    def _attach(self, client):
        """Grow a branch on ``client``'s shard (reshard install path)."""
        if self._closed:
            return
        self.watches.append(client.watch(**self._spec))

    def _detach_server(self, server):
        """Drop branches on a retiring shard without firing ``on_close``."""
        for watch in list(self.watches):
            if watch._server is server:
                watch.cancel()
                self.watches.remove(watch)

    def _close_once(self, on_close):
        if self._closed:
            return
        self._closed = True
        self.cancel()
        on_close()


class ShardedStoreClient:
    """Client-side router: one typed client per shard, ring-addressed.

    Mirrors the :class:`~repro.store.base.StoreClient` Object surface
    (create/get/update/patch/delete/list/txn/watch) plus the opt-in
    hot-path optimizations, which delegate straight to the per-shard
    clients.  Ownership is re-resolved per operation against the live
    ring; an operation fenced mid-cutover
    (:class:`~repro.errors.ShardMovedError`) transparently backs off
    and re-routes -- callers never see a topology change.
    """

    def __init__(self, store, location, retry_policy=None, circuit_breaker=None):
        self.store = store
        self.env = store.env
        self.location = location
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        self.reroutes = 0
        self._merged_watches = []
        self._cache_prefixes = []
        #: Per-shard typed clients, parallel to ``store.shards``.
        self.clients = [
            _shard_client(shard, location,
                          retry_policy=retry_policy,
                          circuit_breaker=circuit_breaker)
            for shard in store.shards
        ]
        store._clients.append(self)

    def _client_for(self, key):
        return self.clients[
            self.store.index_of_member(self.store.ring.owner_of(key))
        ]

    # -- reshard wiring (driven by the ShardedStore) -------------------------

    def _attach_shard(self, shard):
        client = _shard_client(shard, self.location,
                               retry_policy=self.retry_policy,
                               circuit_breaker=self.circuit_breaker)
        base = self.clients[0]
        client.principal = base.principal
        client.default_watch_credits = base.default_watch_credits
        client.default_watch_overflow = base.default_watch_overflow
        client.coalesce_writes = base.coalesce_writes
        for prefix in self._cache_prefixes:
            client.enable_read_cache(prefix)
        self.clients.append(client)
        for merged in self._merged_watches:
            if not merged._closed:
                merged._attach(client)
        return client

    def _detach_shard(self, shard):
        for client in list(self.clients):
            if client.server is shard:
                self.clients.remove(client)
        for merged in self._merged_watches:
            merged._detach_server(shard)
        self._merged_watches = [
            m for m in self._merged_watches if not m._closed
        ]

    def _routed(self, key, call):
        """Run ``call(client)`` against ``key``'s owner, rerouting on a
        cutover fence.

        The backoff is deterministic (fixed interval) and the loop is
        bounded by the cutover window; a fence that never lifts (bug)
        surfaces the ShardMovedError instead of spinning forever.
        """
        return self.env.process(self._routed_proc(key, call))

    def _routed_proc(self, key, call):
        for attempt in range(REROUTE_ATTEMPTS):
            try:
                result = yield call(self._client_for(key))
                return result
            except ShardMovedError:
                self.reroutes += 1
                if attempt == REROUTE_ATTEMPTS - 1:
                    raise
                yield self.env.timeout(REROUTE_BACKOFF)

    # -- flow-control surface (fans out to every shard client) ---------------

    @property
    def principal(self):
        return self.clients[0].principal

    @principal.setter
    def principal(self, value):
        for client in self.clients:
            client.principal = value

    @property
    def default_watch_credits(self):
        return self.clients[0].default_watch_credits

    @default_watch_credits.setter
    def default_watch_credits(self, value):
        for client in self.clients:
            client.default_watch_credits = value

    @property
    def default_watch_overflow(self):
        return self.clients[0].default_watch_overflow

    @default_watch_overflow.setter
    def default_watch_overflow(self, value):
        for client in self.clients:
            client.default_watch_overflow = value

    @property
    def zero_copy(self):
        return self.store.zero_copy

    @property
    def copy_meter(self):
        # Writes route per shard; expose shard 0's meter for callers that
        # want *a* meter (aggregate accounting lives on store.copy_stats).
        return self.store.shards[0].copy_meter

    # -- single-key ops route to the owning shard ----------------------------

    def create(self, key, data, labels=None):
        return self._routed(
            key, lambda c: c.create(key, data, labels=labels)
        )

    def get(self, key):
        return self._routed(key, lambda c: c.get(key))

    def update(self, key, data, resource_version=None):
        return self._routed(
            key,
            lambda c: c.update(key, data, resource_version=resource_version),
        )

    def patch(self, key, patch, resource_version=None):
        return self._routed(
            key,
            lambda c: c.patch(key, patch, resource_version=resource_version),
        )

    def delete(self, key):
        return self._routed(key, lambda c: c.delete(key))

    # -- scatter/gather ------------------------------------------------------

    def list(self, key_prefix=""):
        """Fan ``list`` out to every shard; merge sorted by key.

        Mid-cutover a moved key can briefly exist on two shards (copied
        to the new owner, not yet purged from the old); the merge
        dedups by key, keeping the highest revision.
        """
        if len(self.clients) == 1:
            return self.clients[0].list(key_prefix=key_prefix)
        return self.env.process(self._list(key_prefix))

    def _list(self, key_prefix):
        procs = [c.list(key_prefix=key_prefix) for c in self.clients]
        results = yield self.env.all_of(procs)
        best = {}
        for proc in procs:
            for view in results[proc]:
                seen = best.get(view["key"])
                if seen is None or view["revision"] > seen["revision"]:
                    best[view["key"]] = view
        return sorted(best.values(), key=lambda view: view["key"])

    # -- transactions --------------------------------------------------------

    def txn(self, ops, mode=None, idempotence_key=None):
        """Atomic batch; cross-shard only with an explicit ``mode``.

        Single-shard batches take the fast path: one server, one commit
        order, atomicity for free.  A batch whose keys map to several
        shards fails with :class:`~repro.errors.CrossShardTxnError`
        (carrying the key->owner map at the current ring version) unless
        the caller selects a cross-shard protocol:

        - ``mode="2pc"``: atomic across shards via two-phase commit;
          in-doubt participants block conflicting writers until the
          coordinator decides (see :mod:`repro.txn`);
        - ``mode="saga"``: per-shard commits with compensating rollback;
          no cross-shard locks, but intermediate states are visible.

        ``idempotence_key`` (cross-shard modes) makes the submission
        exactly-once across retries and replays.
        """
        if mode is not None:
            return self.store.coordinator.txn(
                ops, mode=mode, idempotence_key=idempotence_key
            )
        try:
            anchor = self._txn_anchor(ops)
        except StoreError as exc:
            failed = self.env.event()
            failed.fail(exc)
            return failed
        return self._routed(anchor, lambda c: c.txn(ops))

    def _txn_anchor(self, ops):
        """The key that routes a single-shard txn (all keys co-owned).

        Raises :class:`~repro.errors.CrossShardTxnError` -- reporting
        ring ownership (key -> owner shard location @ ring version), not
        raw indices -- when the batch spans owners.
        """
        if not isinstance(ops, list) or not ops:
            # Shard raises the canonical validation error; any key routes.
            return ""
        ring = self.store.ring
        shard_map = {
            str(op.get("key") or ""):
                self.store.owner_location(str(op.get("key") or ""))
            for op in ops
        }
        owners = set(shard_map.values())
        if len(owners) > 1:
            raise CrossShardTxnError(
                "cross-shard transactions need an explicit mode: keys "
                f"{sorted(shard_map)} map to {len(owners)} owner shards "
                f"at ring v{ring.version} "
                f"({ {k: v for k, v in sorted(shard_map.items())} }); pass "
                "mode='2pc' or mode='saga', or co-locate transactional "
                "keys",
                shard_map=shard_map,
                ring_version=ring.version,
            )
        return str(ops[0].get("key") or "")

    # -- watches -------------------------------------------------------------

    def watch(self, handler, key_prefix="", on_close=None, batch_handler=None,
              credits=None, overflow=None):
        """Merged, interest-filtered stream across all shards.

        ``credits`` is a *per-shard-stream* window: each underlying
        shard watch gets its own, since each shard fans out over its own
        link.  A credit-forced resync on any shard breaks the whole
        merged stream (``on_close`` once), exactly like a fault break.
        Reshard-proof: branches follow topology changes (same handler,
        same credit window) without ever closing the merged stream.
        """
        spec = {
            "handler": handler, "key_prefix": key_prefix,
            "batch_handler": batch_handler,
            "credits": credits, "overflow": overflow,
            "on_close": None,
        }
        merged = MergedWatch(spec)
        if on_close is not None:
            spec["on_close"] = lambda: merged._close_once(on_close)
        for client in self.clients:
            merged._attach(client)
        self._merged_watches.append(merged)
        return merged

    # -- opt-in hot-path optimizations (delegate per shard) ------------------

    @property
    def coalesce_writes(self):
        return all(c.coalesce_writes for c in self.clients)

    @coalesce_writes.setter
    def coalesce_writes(self, value):
        for client in self.clients:
            client.coalesce_writes = bool(value)

    @property
    def patches_coalesced(self):
        return sum(c.patches_coalesced for c in self.clients)

    def enable_read_cache(self, key_prefix=""):
        self._cache_prefixes.append(key_prefix)
        for client in self.clients:
            client.enable_read_cache(key_prefix)

    @property
    def cache_hits(self):
        return sum(c.cache_hits for c in self.clients)

    @property
    def cache_misses(self):
        return sum(c.cache_misses for c in self.clients)
