"""Copy-on-write object representation: the zero-copy state plane.

The paper names **zero-copy** state sharing as one of Knactor's four
performance optimizations (§3.3).  The Object/Log hot paths used to
``copy.deepcopy`` every object on read, patch, watch delivery, RBAC
masking, and scan -- O(object) work per touch.  This module replaces
those copies with an immutable, structurally-shared representation:

- :class:`CowMap` / :class:`CowList` -- frozen ``dict`` / ``list``
  subclasses.  Being subclasses, every existing ``isinstance`` check,
  JSON encoder, and read path works unchanged; every mutator raises
  :class:`FrozenViewError`.  "Handing out a snapshot" becomes handing
  out the frozen view itself: O(1), zero bytes copied.
- :func:`freeze` -- the single ingest copy: convert caller-owned data
  into frozen containers once, at write time (leaves are shared;
  strings/numbers are immutable anyway).
- :func:`merge_shared` -- JSON-merge-patch by **path copy**: only the
  containers along patched paths are re-created; untouched siblings are
  shared by reference with the previous version.  "Copy" becomes
  O(depth of the patch), not O(object).
- :func:`thaw` -- the escape hatch: a plain, mutable deep copy for code
  that genuinely needs to edit a view locally.  ``copy.deepcopy`` on a
  frozen view does the same, so legacy copy-then-mutate code keeps
  working by construction.
- :class:`CopyMeter` -- copy accounting, so "we stopped copying" is a
  measured claim (``benchmarks/bench_zero_copy_delta.py``), not vibes.

Versions are persistent-data-structure style: a store that patches an
object gets a NEW frozen root sharing all unpatched subtrees with the
old one, so views handed out earlier remain consistent point-in-time
snapshots for free.
"""

import copy


class FrozenViewError(TypeError):
    """A mutation was attempted on a frozen (zero-copy) view.

    Reads from the state plane are immutable by design: they alias the
    store's live structure.  Use ``thaw()`` (or ``copy.deepcopy``) for a
    private mutable copy, or go through the store's patch/update APIs.
    """


def _blocked(name):
    def method(self, *args, **kwargs):
        raise FrozenViewError(
            f"cannot {name}() a frozen view; thaw() it for a mutable copy "
            "or mutate through the store's patch/update APIs"
        )

    method.__name__ = name
    return method


class CowMap(dict):
    """A frozen dict view.  Reads are plain dict reads; writes raise."""

    __slots__ = ()

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    clear = _blocked("clear")
    pop = _blocked("pop")
    popitem = _blocked("popitem")
    setdefault = _blocked("setdefault")
    update = _blocked("update")
    __ior__ = _blocked("__ior__")

    def thaw(self):
        """A plain, mutable deep copy (leaves shared; they are immutable)."""
        return thaw(self)

    # ``copy.copy`` / ``copy.deepcopy`` hand back PLAIN containers: the
    # whole point of copying a frozen view is to mutate the result, and
    # this keeps pre-zero-copy code (copy-then-edit) working unchanged.
    def __copy__(self):
        return dict(self)

    def __deepcopy__(self, memo):
        return thaw(self)

    def __reduce__(self):
        return (dict, (dict(self),))


class CowList(list):
    """A frozen list view.  Reads are plain list reads; writes raise."""

    __slots__ = ()

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __iadd__ = _blocked("__iadd__")
    __imul__ = _blocked("__imul__")
    append = _blocked("append")
    extend = _blocked("extend")
    insert = _blocked("insert")
    pop = _blocked("pop")
    remove = _blocked("remove")
    sort = _blocked("sort")
    reverse = _blocked("reverse")
    clear = _blocked("clear")

    def thaw(self):
        return thaw(self)

    def __copy__(self):
        return list(self)

    def __deepcopy__(self, memo):
        return thaw(self)

    def __reduce__(self):
        return (list, (list(self),))


def is_frozen(value):
    return isinstance(value, (CowMap, CowList))


def freeze(value, meter=None, site="ingest"):
    """Frozen version of ``value`` (the one ingest copy).

    Containers are re-created as frozen views; leaves are shared.
    Already-frozen subtrees are returned as-is -- re-freezing shared
    state is free, which is what makes path-copy merges cheap.
    """
    if is_frozen(value):
        return value
    if isinstance(value, dict):
        out = CowMap(
            (key, freeze(item)) for key, item in value.items()
        )
    elif isinstance(value, (list, tuple)):
        out = CowList(freeze(item) for item in value)
    else:
        return value
    if meter is not None:
        meter.record(estimate_size(out), site)
    return out


def thaw(value):
    """Plain mutable deep copy of a (possibly frozen) structure."""
    if isinstance(value, dict):
        return {key: thaw(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [thaw(item) for item in value]
    return value


def merge_shared(base, patch, meter=None, site="merge"):
    """JSON-merge-patch by path copy: returns a NEW frozen map.

    Semantics match :func:`repro.store.objectops.merge_patch` (``None``
    deletes, nested dicts merge per key, everything else replaces) --
    but only the containers along patched paths are allocated; all
    untouched subtrees are shared by reference with ``base``.  ``base``
    itself is never modified, so earlier views stay consistent.
    """
    merged = _merge_shared(base, patch)
    if meter is not None:
        # The actual allocation: re-pointed entries along patched paths
        # plus the frozen patch payload -- NOT the whole object.
        meter.record(_path_copy_size(base, patch), site)
    return merged


def _merge_shared(base, patch):
    out = dict(base)  # shallow: shares every subtree reference
    for key, value in patch.items():
        if value is None:
            out.pop(key, None)
        elif isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = _merge_shared(out[key], value)
        else:
            out[key] = freeze(value)
    return CowMap(out)


def _path_copy_size(base, patch):
    """Bytes materialized by one path-copy merge of ``patch`` into ``base``."""
    # Each re-created node costs its key slots (pointer work), plus the
    # new leaf payloads actually written.
    size = 2 + 8 * (len(base) + 1)
    for key, value in patch.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            size += _path_copy_size(base[key], value)
        elif value is not None:
            size += estimate_size(value)
    return size


def diff_shared(old, new):
    """The JSON-merge-patch turning ``old`` into ``new`` (both dicts).

    This is the delta the replication protocol ships instead of a full
    snapshot: keys present only in ``old`` become ``None`` (deletion
    markers), changed nested dicts recurse, everything else carries the
    new value.  Returns ``{}`` when the objects are equal.
    """
    delta = {}
    for key, value in new.items():
        previous = old.get(key, _MISSING)
        if previous is value or previous == value:
            continue
        if isinstance(value, dict) and isinstance(previous, dict):
            inner = diff_shared(previous, value)
            if inner:
                delta[key] = inner
        else:
            delta[key] = value
    for key in old:
        if key not in new:
            delta[key] = None
    return delta


def mask_shared(data, paths, meter=None):
    """Frozen view of ``data`` with the dotted ``paths`` removed.

    The RBAC masking path: instead of deep-copying the whole object and
    deleting secret leaves from the copy, express the mask as a deletion
    merge-patch and apply it by path copy -- unmasked subtrees are
    shared with the original view.
    """
    from repro.util.paths import get_path, split

    patch = {}
    for path in paths:
        parts = split(path)
        parent = data if len(parts) == 1 else get_path(
            data, parts[:-1], default=None
        )
        if isinstance(parent, dict) and parts[-1] in parent:
            node = patch
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = None
    if not patch:
        return freeze(data)
    return merge_shared(data, patch, meter=meter, site="mask")


_MISSING = object()


def copy_value(value, meter=None, site="snapshot"):
    """Classic deep copy, metered -- the baseline the COW path replaces.

    Stores running with ``zero_copy=False`` route every snapshot, scan,
    and mask through here so the benchmark's copied-bytes comparison is
    apples-to-apples.
    """
    if meter is not None:
        meter.record(estimate_size(value), site)
    return copy.deepcopy(value)


class CopyMeter:
    """Counts bytes materialized by state-plane copies, by site.

    Sites: ``ingest`` (data entering the store -- paid in every mode),
    ``snapshot`` (read/watch/view copies), ``merge`` (patch
    application), ``mask`` (RBAC masking), ``scan`` (Log scans),
    ``cache`` (informer read cache hits), ``wal`` (durable encoding).
    ``shared`` counts the reads that aliased instead of copying, and
    ``shared_bytes_avoided`` estimates what they would have copied.
    """

    def __init__(self):
        self.copied_bytes = 0
        self.copies = 0
        self.by_site = {}
        self.shared_views = 0
        self.shared_bytes_avoided = 0

    def record(self, nbytes, site):
        self.copied_bytes += nbytes
        self.copies += 1
        self.by_site[site] = self.by_site.get(site, 0) + nbytes

    def shared(self, nbytes=0):
        self.shared_views += 1
        self.shared_bytes_avoided += nbytes

    def snapshot(self):
        return {
            "copied_bytes": self.copied_bytes,
            "copies": self.copies,
            "by_site": dict(self.by_site),
            "shared_views": self.shared_views,
            "shared_bytes_avoided": self.shared_bytes_avoided,
        }

    @staticmethod
    def merge_snapshots(snapshots):
        """Aggregate several :meth:`snapshot` dicts (sharded frontends)."""
        merged = {
            "copied_bytes": 0, "copies": 0, "by_site": {},
            "shared_views": 0, "shared_bytes_avoided": 0,
        }
        for snap in snapshots:
            merged["copied_bytes"] += snap["copied_bytes"]
            merged["copies"] += snap["copies"]
            merged["shared_views"] += snap["shared_views"]
            merged["shared_bytes_avoided"] += snap["shared_bytes_avoided"]
            for site, nbytes in snap["by_site"].items():
                merged["by_site"][site] = (
                    merged["by_site"].get(site, 0) + nbytes
                )
        return merged


def estimate_size(value):
    """Rough serialized size in bytes (same model as ``store.base``)."""
    if value is None:
        return 4
    if isinstance(value, bool):
        return 5
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 2
    if isinstance(value, (list, tuple)):
        return 2 + sum(estimate_size(v) + 1 for v in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in value.items()
        )
    return 16
