"""Data-store backends built from scratch.

Three backends, mirroring the paper's prototype choices:

- :mod:`repro.store.apiserver` -- a Kubernetes-apiserver-like Object store:
  typed resources, ``resourceVersion`` optimistic concurrency, watch
  streams, and an etcd-like persistence latency model.
- :mod:`repro.store.memkv` -- a Redis-like in-memory k-v store: command
  surface, keyspace notifications, and server-side functions (UDFs) used
  for integrator push-down.
- :mod:`repro.store.loglake` -- a Zed-lake-like Log store: append-only
  pools of structured/semi-structured records with query operators.

All backends are simulation processes: client operations return simnet
events and take virtual time according to calibrated per-op latency models.
"""

from repro.store.base import (
    ADDED,
    DELETED,
    MODIFIED,
    OpLatency,
    StoreClient,
    StoreServer,
    StoredObject,
    WatchEvent,
    combine_patches,
    estimate_size,
)
from repro.store.cow import (
    CopyMeter,
    CowList,
    CowMap,
    FrozenViewError,
    diff_shared,
    freeze,
    is_frozen,
    mask_shared,
    merge_shared,
    thaw,
)
from repro.store.apiserver import ApiServer, ApiServerClient
from repro.store.memkv import MemKV, MemKVClient
from repro.store.loglake import APPENDED, LogLake, LogLakeClient
from repro.store.ring import (
    AutoscalePolicy,
    ShardRing,
    Topology,
    hash_key,
    key_in_ranges,
)
from repro.store.sharded import (
    MergedWatch,
    ShardedStore,
    ShardedStoreClient,
    shard_index,
)
from repro.store.retention import RefCountRetention, RetentionPolicy, TTLRetention
from repro.store.udf import TxnUDFContext, UDFContext, UDFRegistry

__all__ = [
    "ADDED",
    "APPENDED",
    "ApiServer",
    "ApiServerClient",
    "AutoscalePolicy",
    "CopyMeter",
    "CowList",
    "CowMap",
    "DELETED",
    "FrozenViewError",
    "LogLake",
    "LogLakeClient",
    "MODIFIED",
    "MemKV",
    "MemKVClient",
    "MergedWatch",
    "OpLatency",
    "RefCountRetention",
    "RetentionPolicy",
    "ShardRing",
    "ShardedStore",
    "ShardedStoreClient",
    "StoreClient",
    "StoreServer",
    "StoredObject",
    "TTLRetention",
    "Topology",
    "TxnUDFContext",
    "UDFContext",
    "UDFRegistry",
    "WatchEvent",
    "combine_patches",
    "diff_shared",
    "estimate_size",
    "freeze",
    "hash_key",
    "is_frozen",
    "key_in_ranges",
    "mask_shared",
    "merge_shared",
    "shard_index",
    "thaw",
]
