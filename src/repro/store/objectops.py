"""Shared object-store operations for the Object backends.

The apiserver-like and Redis-like backends expose the same logical
object surface (create/get/update/patch/delete/list + transactions);
they differ in latency calibration, watch fan-out, persistence history,
and extras (commands, UDFs).  This mixin holds the shared semantics.

Transactions (paper §5, "run-time primitives such as transactions"):
``op_txn`` applies a list of operations atomically -- every precondition
(existence, resourceVersion) is validated against current state first;
if any fails, *nothing* is applied.  All resulting watch events carry
revisions from one contiguous block, so observers see the transaction's
effects in order.
"""

import copy

from repro.errors import (
    AlreadyExistsError,
    ConflictError,
    NotFoundError,
    StoreError,
)
from repro.obs.context import current_context
from repro.store.base import ADDED, DELETED, MODIFIED, StoredObject, WatchEvent
from repro.store.cow import copy_value, diff_shared, estimate_size, freeze, merge_shared


def merge_patch(data, patch):
    """Recursive merge: dicts merge per key, everything else replaces.

    ``None`` values in the patch delete the key (JSON-merge-patch style).
    """
    result = copy.deepcopy(data)
    _merge_into(result, patch)
    return result


def _merge_into(target, patch):
    for key, value in patch.items():
        if value is None:
            target.pop(key, None)
        elif isinstance(value, dict) and isinstance(target.get(key), dict):
            _merge_into(target[key], value)
        else:
            target[key] = copy.deepcopy(value)


class ObjectOpsMixin:
    """CRUD + transactions over ``self._objects`` (key -> StoredObject)."""

    # -- single operations ---------------------------------------------------

    def op_create(self, key, data, labels=None):
        self._check_txn_lock(key)
        if key in self._objects:
            raise AlreadyExistsError(f"object {key!r} already exists")
        revision = self.next_revision()
        obj = StoredObject(
            key=key,
            data=self._ingest(data),
            revision=revision,
            created_at=self.env.now,
            updated_at=self.env.now,
            labels=dict(labels or {}),
        )
        self._objects[key] = obj
        self._commit(ADDED, obj)
        return self._view(obj)

    def op_get(self, key):
        obj = self._objects.get(key)
        if obj is None:
            raise NotFoundError(f"object {key!r} not found")
        return self._view(obj)

    def op_update(self, key, data, resource_version=None):
        obj = self._require(key, resource_version)
        prev_revision = obj.revision
        old_data = obj.data
        obj.data = self._ingest(data)
        obj.revision = self.next_revision()
        obj.updated_at = self.env.now
        # A full update still replicates as a delta: diff the versions.
        delta = diff_shared(old_data, obj.data) if self.delta_watch else None
        self._commit(MODIFIED, obj, delta=delta, prev_revision=prev_revision)
        return self._view(obj)

    def op_patch(self, key, patch, resource_version=None):
        obj = self._require(key, resource_version)
        prev_revision = obj.revision
        if self.zero_copy:
            # Path copy: only containers along patched paths re-allocate.
            obj.data = merge_shared(obj.data, patch, self.copy_meter)
        else:
            obj.data = merge_patch(obj.data, patch)
        obj.revision = self.next_revision()
        obj.updated_at = self.env.now
        # The patch IS the delta (merge-patch composes with itself).
        delta = freeze(patch) if self.delta_watch else None
        self._commit(MODIFIED, obj, delta=delta, prev_revision=prev_revision)
        return self._view(obj)

    def op_delete(self, key):
        self._check_txn_lock(key)
        obj = self._objects.pop(key, None)
        if obj is None:
            raise NotFoundError(f"object {key!r} not found")
        obj.revision = self.next_revision()
        self._commit(DELETED, obj)
        return None

    def op_list(self, key_prefix=""):
        return [
            self._view(obj)
            for key, obj in sorted(self._objects.items())
            if key.startswith(key_prefix)
        ]

    # -- transactions -----------------------------------------------------------

    def op_txn(self, ops):
        """Apply a list of operations atomically (all-or-nothing).

        Each entry: ``{"action": "create"|"update"|"patch"|"delete",
        "key": ..., "data"/"patch": ..., "resource_version": ...}``.
        Validation happens against the *current* state plus earlier ops
        in the same transaction (e.g. create-then-patch is legal).
        Returns the list of resulting views (None for deletes).
        """
        self._validate_txn(ops)
        return self._apply_txn(ops)

    def _validate_txn(self, ops):
        """Phase 1: validate every op against a shadow of current state.

        Raises the first precondition failure with enough detail to
        debug the abort (expected vs actual resourceVersion, and whether
        the conflicting revision came from the live store or from an
        earlier op in the same transaction).  Applies nothing.
        """
        if not isinstance(ops, list) or not ops:
            raise StoreError("transaction needs a non-empty op list")
        # Shadow state: key -> live revision, or ("txn", op index) once an
        # earlier op in this transaction rewrote the key.
        shadow = {key: obj.revision for key, obj in self._objects.items()}
        for index, op in enumerate(ops):
            action = op.get("action")
            key = op.get("key")
            if action not in ("create", "update", "patch", "delete"):
                raise StoreError(f"txn op {index}: unknown action {action!r}")
            if not key:
                raise StoreError(f"txn op {index}: missing key")
            self._check_txn_lock(key)
            if action == "create":
                if key in shadow:
                    raise AlreadyExistsError(
                        f"txn op {index}: object {key!r} already exists"
                    )
                shadow[key] = ("txn", index)  # exists from here on
            else:
                if key not in shadow:
                    raise NotFoundError(f"txn op {index}: object {key!r} not found")
                expected = op.get("resource_version")
                current = shadow[key]
                if expected is not None and current != expected:
                    if isinstance(current, tuple):
                        actual = (
                            f"already rewritten by op {current[1]} "
                            f"of this transaction"
                        )
                    else:
                        actual = f"is {current}"
                    raise ConflictError(
                        f"txn op {index}: object {key!r} changed "
                        f"(expected revision {expected}, {actual})"
                        + self._ownership_note(key)
                    )
                if action == "delete":
                    del shadow[key]
                else:
                    shadow[key] = ("txn", index)
        return shadow

    def _apply_txn(self, ops):
        """Phase 2: apply a validated op list (cannot fail now)."""
        views = []
        for op in ops:
            action = op["action"]
            if action == "create":
                views.append(self.op_create(op["key"], op.get("data") or {}))
            elif action == "update":
                views.append(self.op_update(op["key"], op.get("data") or {}))
            elif action == "patch":
                views.append(self.op_patch(op["key"], op.get("patch") or {}))
            else:
                views.append(self.op_delete(op["key"]))
        return views

    # -- migration data plane (see repro.store.reshard) ------------------------

    def op_export(self, ranges=None):
        """Full-fidelity snapshot of objects whose keys hash into ``ranges``.

        Unlike ``op_list`` views, entries carry labels and exact
        timestamps so an ingest on the destination reconstructs the
        object bit-for-bit.  ``ranges=None`` exports everything.
        """
        from repro.store.ring import key_in_ranges

        entries = []
        for key, obj in sorted(self._objects.items()):
            if ranges is not None and not key_in_ranges(key, ranges):
                continue
            entries.append({
                "key": key,
                "data": self._snapshot(obj),
                "revision": obj.revision,
                "created_at": obj.created_at,
                "updated_at": obj.updated_at,
                "labels": dict(obj.labels),
            })
        return {"entries": entries, "revision": self.revision}

    def op_ingest(self, entries, revision_floor=0, remove=None,
                  authoritative=False):
        """Quietly install migrated objects: no watch events, no new
        revisions.

        The reshard engine's catch-up watch already carries the *events*
        for moved keys; ingest only installs the *state*, keeping source
        revisions so observers see one consistent revision order across
        the handoff.  An entry older than what is already present is
        dropped (the catch-up watch won the race) unless
        ``authoritative`` -- the final reconcile pass -- where
        equal-revision entries also apply (restoring labels the watch
        protocol does not carry).  ``revision_floor`` (plus every ingested
        revision) floors this store's revision counter so post-migration
        commits stay monotonic across the whole keyspace.
        """
        applied = []
        floor = revision_floor
        for entry in entries:
            floor = max(floor, entry["revision"])
            existing = self._objects.get(entry["key"])
            if existing is not None:
                if authoritative:
                    if existing.revision > entry["revision"]:
                        continue
                elif existing.revision >= entry["revision"]:
                    continue
            self._objects[entry["key"]] = StoredObject(
                key=entry["key"],
                data=self._ingest(entry["data"]),
                revision=entry["revision"],
                created_at=entry["created_at"],
                updated_at=entry["updated_at"],
                labels=dict(entry.get("labels") or {}),
            )
            applied.append(entry)
        removed = 0
        for key in remove or ():
            if self._objects.pop(key, None) is not None:
                removed += 1
        self.revision = max(self.revision, floor)
        # Durability records what actually landed, so a WAL replay makes
        # the same keep/drop decisions the live ingest did.
        self._persist_ingest(applied, remove)
        if self.tracer is not None:
            self.tracer.record(
                "store", "ingest", location=self.location,
                applied=len(applied), removed=removed,
            )
        return {"applied": len(applied), "removed": removed,
                "revision": self.revision}

    def _persist_ingest(self, entries, remove):
        """Hook: durable backends write ingested state to their WAL."""

    # -- two-phase-commit participant surface (see repro.txn) -----------------

    def op_txn_prepare(self, txn_id, ops):
        """Phase 1 of cross-shard 2PC: validate, lock, and hold ``ops``.

        A prepared transaction's keys are locked -- concurrent writers
        (including other transactions) fail with a retryable
        :class:`~repro.errors.ConflictError` until the coordinator
        decides.  Idempotent: re-preparing a known ``txn_id`` reports its
        current state instead of re-validating, so a coordinator retry
        after a lost reply never double-locks.
        """
        outcome = self._txn_outcomes.get(txn_id)
        if outcome is not None:
            return {"txn": txn_id, "state": outcome[0]}
        if txn_id in self._prepared:
            return {"txn": txn_id, "state": "prepared"}
        self._validate_txn(ops)
        held = [copy.deepcopy(op) for op in ops]
        self._prepared[txn_id] = held
        for op in held:
            self._txn_locks[op["key"]] = txn_id
        self._persist_txn_marker("prepare", txn_id, ops=held)
        if self.tracer is not None:
            self.tracer.record(
                "store", "txn-prepare", location=self.location, txn=txn_id,
                ops=len(held),
            )
        return {"txn": txn_id, "state": "prepared"}

    def op_txn_commit(self, txn_id):
        """Phase 2 of cross-shard 2PC: apply a prepared transaction.

        Exactly-once per participant: the first commit applies and
        records the outcome (with its views); retried commits -- lost
        replies, coordinator recovery replays -- return the recorded
        outcome without re-applying.  A ``txn_id`` this store has never
        prepared (e.g. state lost to a crash on a non-durable backend)
        reports ``"unknown"`` rather than failing forever.
        """
        outcome = self._txn_outcomes.get(txn_id)
        if outcome is not None:
            return {"txn": txn_id, "state": outcome[0], "views": outcome[1]}
        ops = self._prepared.pop(txn_id, None)
        if ops is None:
            return {"txn": txn_id, "state": "unknown", "views": None}
        self._release_txn_locks(txn_id, ops)
        views = self._apply_txn(ops)
        self._txn_outcomes[txn_id] = ("committed", views)
        self._persist_txn_marker("commit", txn_id)
        if self.tracer is not None:
            self.tracer.record(
                "store", "txn-commit", location=self.location, txn=txn_id,
            )
        return {"txn": txn_id, "state": "committed", "views": views}

    def op_txn_abort(self, txn_id):
        """Coordinator decision "abort": drop the prepared ops and locks.

        Idempotent; aborting an unknown or already-decided transaction is
        a no-op reporting the recorded (or ``"unknown"``) state.
        """
        outcome = self._txn_outcomes.get(txn_id)
        if outcome is not None:
            return {"txn": txn_id, "state": outcome[0]}
        ops = self._prepared.pop(txn_id, None)
        if ops is None:
            return {"txn": txn_id, "state": "unknown"}
        self._release_txn_locks(txn_id, ops)
        self._txn_outcomes[txn_id] = ("aborted", None)
        self._persist_txn_marker("abort", txn_id)
        if self.tracer is not None:
            self.tracer.record(
                "store", "txn-abort", location=self.location, txn=txn_id,
            )
        return {"txn": txn_id, "state": "aborted"}

    def op_txn_status(self, txn_id):
        """Recovery probe: where did this participant land on ``txn_id``?"""
        if txn_id in self._prepared:
            return {"txn": txn_id, "state": "prepared"}
        outcome = self._txn_outcomes.get(txn_id)
        if outcome is not None:
            return {"txn": txn_id, "state": outcome[0]}
        return {"txn": txn_id, "state": "unknown"}

    def _release_txn_locks(self, txn_id, ops):
        for op in ops:
            if self._txn_locks.get(op["key"]) == txn_id:
                del self._txn_locks[op["key"]]

    # -- shared internals ----------------------------------------------------------

    def _check_txn_lock(self, key):
        """Writers must wait out an in-doubt transaction holding ``key``.

        Retryable :class:`~repro.errors.ConflictError`: reconcilers and
        retry policies back off and re-offer, and the lock clears as soon
        as the coordinator (or its recovery pass) decides.
        """
        holder = self._txn_locks.get(key)
        if holder is not None:
            raise ConflictError(
                f"object {key!r} is locked by in-doubt transaction "
                f"{holder!r}; retry after the coordinator decides"
            )

    def _require(self, key, resource_version):
        self._check_txn_lock(key)
        obj = self._objects.get(key)
        if obj is None:
            raise NotFoundError(f"object {key!r} not found")
        if resource_version is not None and resource_version != obj.revision:
            raise ConflictError(
                f"object {key!r} changed: expected revision "
                f"{resource_version}, is {obj.revision}"
                + self._ownership_note(key)
            )
        return obj

    def _ingest(self, data):
        """The single write-time copy of caller-owned data.

        Zero-copy stores freeze it (every later snapshot aliases the
        frozen structure); classic stores deep-copy, and every later
        snapshot deep-copies again.  Both are metered as ``ingest`` so
        the benchmark compares like with like.
        """
        if self.zero_copy:
            return freeze(data, self.copy_meter, "ingest")
        return copy_value(data, self.copy_meter, "ingest")

    def _snapshot(self, obj):
        """Client-facing copy of ``obj.data`` -- the read hot path."""
        if self.zero_copy:
            self.copy_meter.shared(estimate_size(obj.data))
            return obj.data  # frozen: the view IS the snapshot
        return copy_value(obj.data, self.copy_meter, "snapshot")

    def _view(self, obj):
        return {
            "key": obj.key,
            "data": self._snapshot(obj),
            "revision": obj.revision,
            "created_at": obj.created_at,
            "updated_at": obj.updated_at,
        }

    def _commit(self, event_type, obj, delta=None, prev_revision=None):
        # Causal stamping: when the committing request carries a trace
        # context, mint a zero-duration "write" span under it and make
        # THAT the event's context -- downstream consumers (integrators,
        # reconcilers) parent off the write, so the DAG reads
        # request -> write -> exchange -> write -> reconcile -> ...
        ctx = current_context()
        if ctx is not None and ctx.sink is not None:
            ctx = ctx.sink.point(
                "write", service=self.location, parent=ctx, key=obj.key,
                store=obj.key.split("/", 1)[0], type=event_type,
                revision=obj.revision,
            )
        event = WatchEvent(
            event_type, obj.key, self._snapshot(obj), obj.revision,
            delta=delta, prev_revision=prev_revision,
            ctx=ctx, committed_at=self.env.now,
        )
        self._record_commit(event)
        if self.tracer is not None:
            self.tracer.record(
                "store", "commit", location=self.location, key=obj.key,
                type=event_type, revision=obj.revision,
            )
        if self.watch_overhead <= 0:
            self.notify(event)
        else:
            timer = self.env.timeout(self.watch_overhead)
            timer.callbacks.append(lambda _evt: self.notify(event))

    def _record_commit(self, event):
        """Hook: the apiserver keeps a replayable history."""
