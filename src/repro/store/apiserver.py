"""A Kubernetes-apiserver-like Object store.

This is the strongly consistent Object backend used by the paper's
``K-apiserver`` configuration: every write goes through an etcd-like
persistence path (leader append + quorum fsync), which makes writes slow
(milliseconds) but gives linearizability, a monotonically increasing
``resourceVersion``, replayable watch history, and optimistic concurrency.

Semantics reproduced from the real apiserver:

- ``create`` fails if the key exists; ``update`` fails on a stale
  ``resource_version`` (conflict, retry expected -- reconcilers do);
- ``patch`` deep-merges fields without a version precondition;
- every watch event carries the full object and its revision;
- watches may replay from a historical revision (bounded history window);
- ``txn`` applies a batch of writes atomically (all-or-nothing).

The CRUD/transaction semantics live in
:class:`repro.store.objectops.ObjectOpsMixin`, shared with the Redis-like
backend; this class adds the persistence latency model, watch history,
and crash durability: every commit is appended to a write-ahead log (the
etcd raft log stand-in), and a :meth:`~repro.store.base.StoreServer.crash`
/ ``restart`` cycle loses the in-memory object map but rebuilds it --
objects, revisions, and the replayable watch history -- from the WAL.
"""

import copy
from dataclasses import dataclass

from repro.store.base import (
    DELETED,
    OpLatency,
    StoreClient,
    StoredObject,
    StoreServer,
    WatchEvent,
)
from repro.store.cow import freeze, merge_shared
from repro.store.objectops import ObjectOpsMixin, merge_patch  # noqa: F401

#: Default per-op server-side latencies (seconds): writes pay an
#: etcd-like quorum+fsync cost, reads are served from the watch cache.
DEFAULT_OPS = {
    "create": OpLatency(base=0.0065, per_byte=4e-9),
    "update": OpLatency(base=0.0065, per_byte=4e-9),
    "patch": OpLatency(base=0.0070, per_byte=4e-9),
    "delete": OpLatency(base=0.0060),
    "get": OpLatency(base=0.0015, per_byte=1e-9),
    "list": OpLatency(base=0.0030, per_byte=1e-9),
    # One persistence round for the whole batch, plus marshalling.
    "txn": OpLatency(base=0.0080, per_byte=4e-9),
    # Cross-shard 2PC participant ops: prepare persists the held batch
    # (quorum write of the lock record), commit/abort persist a small
    # decision marker, status is a cache read.
    "txn_prepare": OpLatency(base=0.0080, per_byte=4e-9),
    "txn_commit": OpLatency(base=0.0065),
    "txn_abort": OpLatency(base=0.0040),
    "txn_status": OpLatency(base=0.0015),
    # Live-reshard migration plane: bulk state transfer between shards.
    "export": OpLatency(base=0.0030, per_byte=1e-9),
    "ingest": OpLatency(base=0.0080, per_byte=4e-9),
}


@dataclass(frozen=True)
class _WalRecord:
    """One durable commit: enough to rebuild the object map on restart."""

    time: float
    event: object  # the committed WatchEvent
    labels: dict


@dataclass(frozen=True)
class _IngestWalMarker:
    """A migration ingest, durable alongside commits.

    Carries the ingested entries (full objects, labels included) and the
    removed keys so a restart rebuilds exactly what the quiet data plane
    installed -- crucially WITHOUT minting watch history: ingests never
    notified anyone, so replay must not either.
    """

    time: float
    entries: tuple = ()
    remove: tuple = ()


@dataclass(frozen=True)
class _TxnWalMarker:
    """A 2PC participant-state transition, durable alongside commits.

    ``prepare`` markers carry the held op batch so a restart can rebuild
    the in-doubt set (and its key locks) exactly; ``commit``/``abort``
    markers resolve an earlier prepare.  Interleaved in the one WAL so
    replay sees transitions in true commit order.
    """

    time: float
    kind: str  # "prepare" | "commit" | "abort"
    txn_id: str
    ops: tuple = ()


class ApiServer(ObjectOpsMixin, StoreServer):
    """The server side: owns objects, history, WAL, and watch fan-out."""

    OPS = dict(DEFAULT_OPS)

    def __init__(
        self,
        env,
        network,
        location="apiserver",
        workers=1,
        history_limit=1024,
        tracer=None,
        ops=None,
        watch_overhead=0.0012,
        watch_batch_window=0.0,
        zero_copy=True,
        delta_watch=False,
    ):
        super().__init__(env, network, location, workers=workers, tracer=tracer,
                         watch_batch_window=watch_batch_window,
                         zero_copy=zero_copy, delta_watch=delta_watch)
        if ops:
            self.OPS = {**self.OPS, **ops}
        self._objects = {}
        self._history = []  # bounded list of FULL WatchEvents for replay
        self._history_limit = history_limit
        self._wal = []  # unbounded durable commit log ("disk")
        self.wal_bytes = 0  # encoded size of what hit the "disk"
        self._pending_replays = []  # (watch, from_revision) queued while down
        self.watch_overhead = watch_overhead

    def _record_commit(self, event):
        labels = {}
        obj = self._objects.get(event.key)
        if obj is not None:
            labels = dict(obj.labels)
        durable = event
        if self.delta_watch and event.delta is not None:
            # Delta-encoded WAL: persist the merge-patch, not the whole
            # object -- the restart path re-materializes by replaying
            # deltas onto the previous durable state.
            durable = WatchEvent(
                event.type, event.key, None, event.revision,
                delta=event.delta, prev_revision=event.prev_revision,
                ctx=event.ctx, committed_at=event.committed_at,
            )
        self.wal_bytes += durable.wire_size()
        self._wal.append(_WalRecord(self.env.now, durable, labels))
        # History must hold FULL events: replay sends them verbatim to
        # watchers with no predecessor state to apply a delta against.
        if event.object is None and event.delta is not None:
            raise AssertionError("commit events must carry the full object")
        self._history.append(event)
        if len(self._history) > self._history_limit:
            del self._history[: len(self._history) - self._history_limit]

    def replay(self, watch, from_revision):
        """Deliver historical events (> from_revision) to a new watcher.

        While the server is down, replays queue and run on restart (the
        client keeps reconnecting until the server answers).  A replay
        delivery lost to a link fault breaks the watch stream -- the
        watcher re-watches from its cursor, so nothing is skipped.
        """
        if not self.available:
            self._pending_replays.append((watch, from_revision))
            return
        self._deliver_replay(watch, from_revision)

    def _deliver_replay(self, watch, from_revision):
        replayable = [
            event for event in self._history
            if event.revision > from_revision and watch.matches(event.key)
        ]
        if not replayable:
            return
        if self.watch_batch_window > 0:
            # One catch-up message, mirroring batched live fan-out.
            self._send_to_watch(watch, replayable)
            return
        for event in replayable:
            if not self._send_to_watch(watch, (event,)):
                return

    def set_available(self, available):
        super().set_available(available)
        if self.available:
            # A brown-out ended: watchers that asked for replay while we
            # were down are still waiting.
            self._flush_pending_replays()

    def _flush_pending_replays(self):
        pending, self._pending_replays = self._pending_replays, []
        for watch, from_revision in pending:
            if watch.active:
                self._deliver_replay(watch, from_revision)

    @property
    def oldest_replayable(self):
        return self._history[0].revision if self._history else None

    @property
    def wal_length(self):
        return len(self._wal)

    def _persist_ingest(self, entries, remove):
        marker = _IngestWalMarker(
            self.env.now,
            tuple(copy.deepcopy(entry) for entry in entries),
            tuple(remove or ()),
        )
        self.wal_bytes += 32 + sum(
            32 + len(entry["key"]) for entry in marker.entries
        )
        self._wal.append(marker)

    def _persist_txn_marker(self, kind, txn_id, ops=None):
        marker = _TxnWalMarker(
            self.env.now, kind, txn_id,
            tuple(copy.deepcopy(op) for op in ops or ()),
        )
        self.wal_bytes += 48 + sum(
            16 + len(str(op.get("key", ""))) for op in marker.ops
        )
        self._wal.append(marker)

    # -- crash durability ---------------------------------------------------

    def _on_crash(self):
        """Memory is lost; the WAL (and queued replays) survive on disk."""
        self._objects = {}
        self._history = []
        self.revision = 0

    def _on_restart(self):
        """Rebuild objects, revision counter, and watch history from WAL.

        Delta records materialize by merge onto the previous durable
        state of their key (the WAL is written in commit order, so the
        predecessor is always already rebuilt).  The replay history is
        rebuilt as FULL events from the materialized states.
        """
        created_at = {}
        full_events = []
        for record in self._wal:
            if isinstance(record, _TxnWalMarker):
                self._replay_txn_marker(record)
                continue
            if isinstance(record, _IngestWalMarker):
                # Quiet re-ingest: rebuild state, mint no history.
                for entry in record.entries:
                    created_at.setdefault(entry["key"], entry["created_at"])
                    self._objects[entry["key"]] = StoredObject(
                        key=entry["key"],
                        data=(freeze(entry["data"]) if self.zero_copy
                              else copy.deepcopy(entry["data"])),
                        revision=entry["revision"],
                        created_at=entry["created_at"],
                        updated_at=entry["updated_at"],
                        labels=dict(entry.get("labels") or {}),
                    )
                    self.revision = max(self.revision, entry["revision"])
                for key in record.remove:
                    self._objects.pop(key, None)
                    created_at.pop(key, None)
                continue
            event = record.event
            if event.type == DELETED:
                self._objects.pop(event.key, None)
                created_at.pop(event.key, None)
                full_events.append(event)
            else:
                if event.object is None and event.delta is not None:
                    base = self._objects[event.key].data
                    if self.zero_copy:
                        data = merge_shared(base, event.delta)
                    else:
                        data = merge_patch(base, event.delta)
                else:
                    data = (
                        freeze(event.object) if self.zero_copy
                        else copy.deepcopy(event.object)
                    )
                created_at.setdefault(event.key, record.time)
                self._objects[event.key] = StoredObject(
                    key=event.key,
                    data=data,
                    revision=event.revision,
                    created_at=created_at[event.key],
                    updated_at=record.time,
                    labels=dict(record.labels),
                )
                full_events.append(
                    WatchEvent(event.type, event.key, data, event.revision,
                               ctx=event.ctx,
                               committed_at=event.committed_at)
                )
            self.revision = max(self.revision, event.revision)
        self._history = full_events[-self._history_limit:]
        self._flush_pending_replays()

    def _replay_txn_marker(self, marker):
        """Rebuild 2PC participant state from one WAL marker.

        A ``prepare`` with no later decision leaves the transaction
        in-doubt: its ops are re-held and its keys re-locked, so writers
        keep bouncing off until the coordinator's recovery pass decides.
        Decided transactions land in the outcome cache (views are gone
        with the crash -- retried commits after recovery get the state
        but ``views=None``, which is all idempotence needs).
        """
        if marker.kind == "prepare":
            ops = [copy.deepcopy(op) for op in marker.ops]
            self._prepared[marker.txn_id] = ops
            for op in ops:
                self._txn_locks[op["key"]] = marker.txn_id
        else:  # "commit" | "abort"
            ops = self._prepared.pop(marker.txn_id, None)
            if ops is not None:
                self._release_txn_locks(marker.txn_id, ops)
            state = "committed" if marker.kind == "commit" else "aborted"
            self._txn_outcomes[marker.txn_id] = (state, None)


class ApiServerClient(StoreClient):
    """Typed convenience client for the apiserver."""

    def create(self, key, data, labels=None):
        return self.request("create", key=key, data=data, labels=labels)

    def update(self, key, data, resource_version=None):
        return self.request(
            "update", key=key, data=data, resource_version=resource_version
        )

    def delete(self, key):
        return self.request("delete", key=key)

    def list(self, key_prefix=""):
        return self.request("list", key_prefix=key_prefix)

    def txn(self, ops):
        return self.request("txn", ops=ops)

    def watch(self, handler, key_prefix="", from_revision=None, on_close=None,
              batch_handler=None, credits=None, overflow=None):
        watch = super().watch(handler, key_prefix, on_close=on_close,
                              batch_handler=batch_handler,
                              credits=credits, overflow=overflow)
        if from_revision is not None:
            self.server.replay(watch, from_revision)
        return watch
