"""A Kubernetes-apiserver-like Object store.

This is the strongly consistent Object backend used by the paper's
``K-apiserver`` configuration: every write goes through an etcd-like
persistence path (leader append + quorum fsync), which makes writes slow
(milliseconds) but gives linearizability, a monotonically increasing
``resourceVersion``, replayable watch history, and optimistic concurrency.

Semantics reproduced from the real apiserver:

- ``create`` fails if the key exists; ``update`` fails on a stale
  ``resource_version`` (conflict, retry expected -- reconcilers do);
- ``patch`` deep-merges fields without a version precondition;
- every watch event carries the full object and its revision;
- watches may replay from a historical revision (bounded history window);
- ``txn`` applies a batch of writes atomically (all-or-nothing).

The CRUD/transaction semantics live in
:class:`repro.store.objectops.ObjectOpsMixin`, shared with the Redis-like
backend; this class adds the persistence latency model and watch history.
"""

from repro.store.base import OpLatency, StoreClient, StoreServer
from repro.store.objectops import ObjectOpsMixin, merge_patch  # noqa: F401

#: Default per-op server-side latencies (seconds): writes pay an
#: etcd-like quorum+fsync cost, reads are served from the watch cache.
DEFAULT_OPS = {
    "create": OpLatency(base=0.0065, per_byte=4e-9),
    "update": OpLatency(base=0.0065, per_byte=4e-9),
    "patch": OpLatency(base=0.0070, per_byte=4e-9),
    "delete": OpLatency(base=0.0060),
    "get": OpLatency(base=0.0015, per_byte=1e-9),
    "list": OpLatency(base=0.0030, per_byte=1e-9),
    # One persistence round for the whole batch, plus marshalling.
    "txn": OpLatency(base=0.0080, per_byte=4e-9),
}


class ApiServer(ObjectOpsMixin, StoreServer):
    """The server side: owns objects, history, and watch fan-out."""

    OPS = dict(DEFAULT_OPS)

    def __init__(
        self,
        env,
        network,
        location="apiserver",
        workers=1,
        history_limit=1024,
        tracer=None,
        ops=None,
        watch_overhead=0.0012,
    ):
        super().__init__(env, network, location, workers=workers, tracer=tracer)
        if ops:
            self.OPS = {**self.OPS, **ops}
        self._objects = {}
        self._history = []  # bounded list of WatchEvents for replay
        self._history_limit = history_limit
        self.watch_overhead = watch_overhead

    def _record_commit(self, event):
        self._history.append(event)
        if len(self._history) > self._history_limit:
            del self._history[: len(self._history) - self._history_limit]

    def replay(self, watch, from_revision):
        """Deliver historical events (> from_revision) to a new watcher."""
        for event in self._history:
            if event.revision > from_revision and watch.matches(event.key):
                link = self.network.link(self.location, watch.location)
                watch.delivered += 1
                link.send(watch.handler, event)

    @property
    def oldest_replayable(self):
        return self._history[0].revision if self._history else None


class ApiServerClient(StoreClient):
    """Typed convenience client for the apiserver."""

    def create(self, key, data, labels=None):
        return self.request("create", key=key, data=data, labels=labels)

    def get(self, key):
        return self.request("get", key=key)

    def update(self, key, data, resource_version=None):
        return self.request(
            "update", key=key, data=data, resource_version=resource_version
        )

    def patch(self, key, patch, resource_version=None):
        return self.request(
            "patch", key=key, patch=patch, resource_version=resource_version
        )

    def delete(self, key):
        return self.request("delete", key=key)

    def list(self, key_prefix=""):
        return self.request("list", key_prefix=key_prefix)

    def txn(self, ops):
        return self.request("txn", ops=ops)

    def watch(self, handler, key_prefix="", from_revision=None, on_close=None):
        watch = super().watch(handler, key_prefix, on_close=on_close)
        if from_revision is not None:
            self.server.replay(watch, from_revision)
        return watch
