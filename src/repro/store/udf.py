"""Server-side functions (UDFs) for integrator push-down.

The paper's §3.3 push-down optimization (evaluated as ``K-redis-udf`` in
Table 2) moves composition logic *into* the data store, the way Redis
Functions / stored procedures do.  A pushed-down integrator no longer pays
a network round trip per state access: its reads and writes execute inside
the store process at local-memory cost.

A UDF is a plain Python callable ``fn(ctx, *args)`` receiving a
:class:`UDFContext` bound to the live store.  Writes made through the
context commit through the store's normal path, so watchers still see
every change.
"""

from repro.errors import ConfigurationError, NotFoundError


class UDFRegistry:
    """Named server-side functions, with per-function execution cost."""

    def __init__(self):
        self._functions = {}

    def register(self, name, fn, cost=0.0002):
        """Register ``fn`` under ``name``; ``cost`` is its CPU time (s)."""
        if not callable(fn):
            raise ConfigurationError(f"UDF {name!r} must be callable")
        if cost < 0:
            raise ConfigurationError(f"UDF {name!r} has negative cost")
        self._functions[name] = (fn, cost)

    def unregister(self, name):
        self._functions.pop(name, None)

    def get(self, name):
        try:
            return self._functions[name]
        except KeyError:
            raise NotFoundError(f"UDF {name!r} is not registered") from None

    def names(self):
        return sorted(self._functions)

    def __contains__(self, name):
        return name in self._functions

    def __len__(self):
        return len(self._functions)


class UDFContext:
    """Store access handle passed to a UDF while it runs server-side.

    Every access is counted; the server charges ``local_access_cost``
    per operation after the function returns (local memory ops, not
    network round trips -- this is the entire point of push-down).
    """

    def __init__(self, server):
        self._server = server
        self.ops = 0

    @property
    def now(self):
        return self._server.env.now

    def get(self, key):
        """Snapshot of one object's data (raises NotFoundError)."""
        self.ops += 1
        return self._server.op_get(key)

    def exists(self, key):
        self.ops += 1
        try:
            self._server.op_get(key)
            return True
        except NotFoundError:
            return False

    def list(self, key_prefix=""):
        self.ops += 1
        return self._server.op_list(key_prefix=key_prefix)

    def create(self, key, data):
        self.ops += 1
        return self._server.op_create(key=key, data=data)

    def update(self, key, data, resource_version=None):
        self.ops += 1
        return self._server.op_update(
            key=key, data=data, resource_version=resource_version
        )

    def patch(self, key, patch):
        self.ops += 1
        return self._server.op_patch(key=key, patch=patch)

    def delete(self, key):
        self.ops += 1
        return self._server.op_delete(key=key)
