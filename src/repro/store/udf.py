"""Server-side functions (UDFs) for integrator push-down.

The paper's §3.3 push-down optimization (evaluated as ``K-redis-udf`` in
Table 2) moves composition logic *into* the data store, the way Redis
Functions / stored procedures do.  A pushed-down integrator no longer pays
a network round trip per state access: its reads and writes execute inside
the store process at local-memory cost.

A UDF is a plain Python callable ``fn(ctx, *args)`` receiving a
:class:`UDFContext` bound to the live store.  Writes made through the
context commit through the store's normal path, so watchers still see
every change.
"""

import copy

from repro.errors import ConfigurationError, NotFoundError


class UDFRegistry:
    """Named server-side functions, with per-function execution cost."""

    def __init__(self):
        self._functions = {}

    def register(self, name, fn, cost=0.0002):
        """Register ``fn`` under ``name``; ``cost`` is its CPU time (s)."""
        if not callable(fn):
            raise ConfigurationError(f"UDF {name!r} must be callable")
        if cost < 0:
            raise ConfigurationError(f"UDF {name!r} has negative cost")
        self._functions[name] = (fn, cost)

    def unregister(self, name):
        self._functions.pop(name, None)

    def get(self, name):
        try:
            return self._functions[name]
        except KeyError:
            raise NotFoundError(f"UDF {name!r} is not registered") from None

    def names(self):
        return sorted(self._functions)

    def __contains__(self, name):
        return name in self._functions

    def __len__(self):
        return len(self._functions)


class UDFContext:
    """Store access handle passed to a UDF while it runs server-side.

    Every access is counted; the server charges ``local_access_cost``
    per operation after the function returns (local memory ops, not
    network round trips -- this is the entire point of push-down).
    """

    def __init__(self, server):
        self._server = server
        self.ops = 0

    @property
    def now(self):
        return self._server.env.now

    def get(self, key):
        """Snapshot of one object's data (raises NotFoundError)."""
        self.ops += 1
        return self._server.op_get(key)

    def exists(self, key):
        self.ops += 1
        try:
            self._server.op_get(key)
            return True
        except NotFoundError:
            return False

    def list(self, key_prefix=""):
        self.ops += 1
        return self._server.op_list(key_prefix=key_prefix)

    def create(self, key, data):
        self.ops += 1
        return self._server.op_create(key=key, data=data)

    def update(self, key, data, resource_version=None):
        self.ops += 1
        return self._server.op_update(
            key=key, data=data, resource_version=resource_version
        )

    def patch(self, key, patch):
        self.ops += 1
        return self._server.op_patch(key=key, patch=patch)

    def delete(self, key):
        self.ops += 1
        return self._server.op_delete(key=key)


#: Overlay marker: the key was deleted inside the transaction.
_DELETED = object()


class TxnUDFContext(UDFContext):
    """Transactional variant: writes buffer, then commit as one ``txn``.

    A plain :class:`UDFContext` applies every write immediately, so a
    reconcile step that reads, computes, and writes can interleave with
    concurrent writers and commit half its effects.  This context gives
    the function snapshot-ish semantics instead:

    - **reads** pass through to the live store, and the revision seen at
      a key's *first* read is remembered;
    - **writes** buffer (in program order) and the function reads its
      own writes back through an overlay;
    - **commit** turns the buffer into one atomic ``op_txn`` batch, with
      the remembered read revision attached as a ``resource_version``
      precondition on the first buffered write to each read key.

    If any read key changed underneath the function, the whole batch
    aborts with a :class:`~repro.errors.ConflictError` and the caller
    (``op_fcall_txn``) re-runs the function against fresh state --
    optimistic concurrency at function granularity.
    """

    def __init__(self, server):
        super().__init__(server)
        self._read_versions = {}  # key -> revision at first live read
        self._buffer = []  # ops in program order
        self._overlay = {}  # key -> buffered data | _DELETED

    # -- reads: live store + read-your-writes overlay ------------------------

    def get(self, key):
        self.ops += 1
        staged = self._overlay.get(key)
        if staged is _DELETED:
            raise NotFoundError(f"object {key!r} not found (deleted in txn)")
        if staged is not None:
            return {"key": key, "data": copy.deepcopy(staged),
                    "revision": None, "buffered": True}
        view = self._server.op_get(key)
        self._read_versions.setdefault(key, view["revision"])
        return view

    def exists(self, key):
        self.ops += 1
        staged = self._overlay.get(key)
        if staged is _DELETED:
            return False
        if staged is not None:
            return True
        try:
            view = self._server.op_get(key)
        except NotFoundError:
            return False
        self._read_versions.setdefault(key, view["revision"])
        return True

    def list(self, key_prefix=""):
        self.ops += 1
        views = self._server.op_list(key_prefix=key_prefix)
        for view in views:
            self._read_versions.setdefault(view["key"], view["revision"])
        # Overlay wins: drop deletes, append buffered creates/updates.
        merged = [
            view for view in views
            if self._overlay.get(view["key"]) is None
        ]
        for key in sorted(self._overlay):
            staged = self._overlay[key]
            if staged is not _DELETED and key.startswith(key_prefix):
                merged.append({"key": key, "data": copy.deepcopy(staged),
                               "revision": None, "buffered": True})
        return merged

    # -- writes: buffered ----------------------------------------------------

    def create(self, key, data):
        self.ops += 1
        self._buffer.append(
            {"action": "create", "key": key, "data": copy.deepcopy(data)}
        )
        self._overlay[key] = copy.deepcopy(data)
        return {"key": key, "data": copy.deepcopy(data), "revision": None,
                "buffered": True}

    def update(self, key, data, resource_version=None):
        self.ops += 1
        op = {"action": "update", "key": key, "data": copy.deepcopy(data)}
        self._stamp_precondition(key, op, resource_version)
        self._buffer.append(op)
        self._overlay[key] = copy.deepcopy(data)
        return {"key": key, "data": copy.deepcopy(data), "revision": None,
                "buffered": True}

    def patch(self, key, patch):
        self.ops += 1
        op = {"action": "patch", "key": key, "patch": copy.deepcopy(patch)}
        self._stamp_precondition(key, op, None)
        self._buffer.append(op)
        base = self._overlay.get(key)
        if base is None or base is _DELETED:
            try:
                base = copy.deepcopy(self.get(key)["data"])
                self.ops -= 1  # get above already counted
            except NotFoundError:
                base = {}
        from repro.store.objectops import merge_patch

        self._overlay[key] = merge_patch(base, patch)
        return {"key": key, "data": copy.deepcopy(self._overlay[key]),
                "revision": None, "buffered": True}

    def delete(self, key):
        self.ops += 1
        op = {"action": "delete", "key": key}
        self._stamp_precondition(key, op, None)
        self._buffer.append(op)
        self._overlay[key] = _DELETED
        return None

    def _stamp_precondition(self, key, op, explicit):
        """Attach the read-version precondition to a key's first write."""
        if explicit is not None:
            op["resource_version"] = explicit
            return
        first_write = not any(b["key"] == key for b in self._buffer)
        read_at = self._read_versions.get(key)
        if first_write and read_at is not None:
            op["resource_version"] = read_at

    def build_ops(self):
        """The buffered writes as one atomic ``txn`` batch (may be empty)."""
        return [copy.deepcopy(op) for op in self._buffer]

    @property
    def dirty(self):
        return bool(self._buffer)
