"""A Redis-like in-memory k-v store.

This is the high-performance Object backend of the paper's ``K-redis``
configuration.  Compared to the apiserver backend:

- operations execute in microseconds-to-sub-millisecond (no persistence
  quorum on the write path),
- keyspace notifications play the role of watch events (delivered with
  negligible server overhead),
- server-side functions (:mod:`repro.store.udf`) enable integrator
  push-down (``K-redis-udf`` in Table 2).

The object-level operation surface (create/get/update/patch/delete/list/
txn) matches the apiserver client so the Object Data Exchange can host
data stores on either backend unchanged.  Optimistic concurrency is
emulated with per-key revisions (as one would with ``WATCH``/``MULTI`` or
a Lua compare-and-set in real Redis); transactions correspond to
``MULTI``/``EXEC``.  A small raw command surface (GET / SET / INCR / ...)
is also provided for code that wants Redis semantics directly.
"""

from repro.errors import StoreError
from repro.store.base import OpLatency, StoreClient, StoreServer
from repro.store.objectops import ObjectOpsMixin
from repro.store.udf import UDFContext, UDFRegistry

#: Redis-class latencies: in-memory, no fsync on the critical path.
DEFAULT_OPS = {
    "create": OpLatency(base=0.00035, per_byte=1.5e-9),
    "update": OpLatency(base=0.00035, per_byte=1.5e-9),
    "patch": OpLatency(base=0.00040, per_byte=1.5e-9),
    "delete": OpLatency(base=0.00030),
    "get": OpLatency(base=0.00020, per_byte=0.5e-9),
    "list": OpLatency(base=0.00060, per_byte=0.5e-9),
    "command": OpLatency(base=0.00015),
    "fcall": OpLatency(base=0.00030),
    "txn": OpLatency(base=0.00050, per_byte=1.5e-9),
}


class MemKV(ObjectOpsMixin, StoreServer):
    """The server side of the Redis-like store."""

    OPS = dict(DEFAULT_OPS)

    def __init__(
        self,
        env,
        network,
        location="memkv",
        workers=1,
        tracer=None,
        ops=None,
        watch_overhead=0.00015,
        local_access_cost=0.00005,
        watch_batch_window=0.0,
        zero_copy=True,
        delta_watch=False,
    ):
        super().__init__(env, network, location, workers=workers, tracer=tracer,
                         watch_batch_window=watch_batch_window,
                         zero_copy=zero_copy, delta_watch=delta_watch)
        if ops:
            self.OPS = {**self.OPS, **ops}
        self._objects = {}
        self._strings = {}
        self.functions = UDFRegistry()
        self.watch_overhead = watch_overhead
        self.local_access_cost = local_access_cost

    # -- raw command surface -------------------------------------------------

    def op_command(self, name, args=()):
        name = name.upper()
        if name == "SET":
            key, value = args
            self._strings[key] = value
            return "OK"
        if name == "GET":
            return self._strings.get(args[0])
        if name == "DEL":
            removed = 0
            for key in args:
                if self._strings.pop(key, None) is not None:
                    removed += 1
            return removed
        if name == "INCR":
            key = args[0]
            value = int(self._strings.get(key, 0)) + 1
            self._strings[key] = value
            return value
        if name == "KEYS":
            prefix = args[0] if args else ""
            return sorted(k for k in self._strings if k.startswith(prefix))
        if name == "EXISTS":
            return sum(1 for key in args if key in self._strings)
        raise StoreError(f"unknown command {name!r}")

    # -- server-side functions -------------------------------------------------

    def op_fcall(self, name, args=()):
        """Execute a registered UDF server-side.

        The caller pays one round trip; the function's state accesses are
        charged at local-memory cost.  Implemented as a sub-process so the
        execution + local-access time elapses on the virtual clock, and
        the execution cost elapses BEFORE the function's writes commit.
        """
        fn, cost = self.functions.get(name)

        def run(env):
            if cost > 0:
                yield env.timeout(cost)
            ctx = UDFContext(self)
            result = fn(ctx, *args)
            delay = ctx.ops * self.local_access_cost
            if delay > 0:
                yield env.timeout(delay)
            return result

        return run(self.env)

    # -- crash semantics -----------------------------------------------------

    def _on_crash(self):
        """In-memory store: a crash loses all state (no persistence path).

        The revision counter is intentionally *not* reset, so post-restart
        commits never reuse a revision that watchers already observed.
        """
        self._objects = {}
        self._strings = {}


class MemKVClient(StoreClient):
    """Typed convenience client for the Redis-like store."""

    def create(self, key, data, labels=None):
        return self.request("create", key=key, data=data, labels=labels)

    def update(self, key, data, resource_version=None):
        return self.request(
            "update", key=key, data=data, resource_version=resource_version
        )

    def delete(self, key):
        return self.request("delete", key=key)

    def list(self, key_prefix=""):
        return self.request("list", key_prefix=key_prefix)

    def txn(self, ops):
        return self.request("txn", ops=ops)

    def command(self, name, *args):
        return self.request("command", name=name, args=args)

    def fcall(self, name, *args):
        return self.request("fcall", name=name, args=args)
