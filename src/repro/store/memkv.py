"""A Redis-like in-memory k-v store.

This is the high-performance Object backend of the paper's ``K-redis``
configuration.  Compared to the apiserver backend:

- operations execute in microseconds-to-sub-millisecond (no persistence
  quorum on the write path),
- keyspace notifications play the role of watch events (delivered with
  negligible server overhead),
- server-side functions (:mod:`repro.store.udf`) enable integrator
  push-down (``K-redis-udf`` in Table 2).

The object-level operation surface (create/get/update/patch/delete/list/
txn) matches the apiserver client so the Object Data Exchange can host
data stores on either backend unchanged.  Optimistic concurrency is
emulated with per-key revisions (as one would with ``WATCH``/``MULTI`` or
a Lua compare-and-set in real Redis); transactions correspond to
``MULTI``/``EXEC``.  A small raw command surface (GET / SET / INCR / ...)
is also provided for code that wants Redis semantics directly.
"""

import copy

from repro.errors import ConflictError, StoreError
from repro.store.base import OpLatency, StoreClient, StoreServer
from repro.store.objectops import ObjectOpsMixin
from repro.store.udf import TxnUDFContext, UDFContext, UDFRegistry

#: Redis-class latencies: in-memory, no fsync on the critical path.
DEFAULT_OPS = {
    "create": OpLatency(base=0.00035, per_byte=1.5e-9),
    "update": OpLatency(base=0.00035, per_byte=1.5e-9),
    "patch": OpLatency(base=0.00040, per_byte=1.5e-9),
    "delete": OpLatency(base=0.00030),
    "get": OpLatency(base=0.00020, per_byte=0.5e-9),
    "list": OpLatency(base=0.00060, per_byte=0.5e-9),
    "command": OpLatency(base=0.00015),
    "fcall": OpLatency(base=0.00030),
    "fcall_txn": OpLatency(base=0.00035),
    "txn": OpLatency(base=0.00050, per_byte=1.5e-9),
    # Cross-shard 2PC participant ops (no fsync: in-memory hold).
    "txn_prepare": OpLatency(base=0.00050, per_byte=1.5e-9),
    "txn_commit": OpLatency(base=0.00040),
    "txn_abort": OpLatency(base=0.00020),
    "txn_status": OpLatency(base=0.00015),
    # Live-reshard migration plane: bulk state transfer between shards.
    "export": OpLatency(base=0.00060, per_byte=0.5e-9),
    "ingest": OpLatency(base=0.00060, per_byte=1.5e-9),
}


class MemKV(ObjectOpsMixin, StoreServer):
    """The server side of the Redis-like store."""

    OPS = dict(DEFAULT_OPS)

    def __init__(
        self,
        env,
        network,
        location="memkv",
        workers=1,
        tracer=None,
        ops=None,
        watch_overhead=0.00015,
        local_access_cost=0.00005,
        watch_batch_window=0.0,
        zero_copy=True,
        delta_watch=False,
    ):
        super().__init__(env, network, location, workers=workers, tracer=tracer,
                         watch_batch_window=watch_batch_window,
                         zero_copy=zero_copy, delta_watch=delta_watch)
        if ops:
            self.OPS = {**self.OPS, **ops}
        self._objects = {}
        self._strings = {}
        self.functions = UDFRegistry()
        self.watch_overhead = watch_overhead
        self.local_access_cost = local_access_cost
        self._fcall_effects = {}  # idempotence_key -> cached fcall result
        self.fcall_replays = 0  # dedup hits: retried/replayed fcall_txn
        self.fcall_conflicts = 0  # optimistic re-runs after a read moved

    # -- raw command surface -------------------------------------------------

    def op_command(self, name, args=()):
        name = name.upper()
        if name == "SET":
            key, value = args
            self._strings[key] = value
            return "OK"
        if name == "GET":
            return self._strings.get(args[0])
        if name == "DEL":
            removed = 0
            for key in args:
                if self._strings.pop(key, None) is not None:
                    removed += 1
            return removed
        if name == "INCR":
            key = args[0]
            value = int(self._strings.get(key, 0)) + 1
            self._strings[key] = value
            return value
        if name == "KEYS":
            prefix = args[0] if args else ""
            return sorted(k for k in self._strings if k.startswith(prefix))
        if name == "EXISTS":
            return sum(1 for key in args if key in self._strings)
        raise StoreError(f"unknown command {name!r}")

    # -- server-side functions -------------------------------------------------

    def op_fcall(self, name, args=()):
        """Execute a registered UDF server-side.

        The caller pays one round trip; the function's state accesses are
        charged at local-memory cost.  Implemented as a sub-process so the
        execution + local-access time elapses on the virtual clock, and
        the execution cost elapses BEFORE the function's writes commit.
        """
        fn, cost = self.functions.get(name)

        def run(env):
            if cost > 0:
                yield env.timeout(cost)
            ctx = UDFContext(self)
            result = fn(ctx, *args)
            delay = ctx.ops * self.local_access_cost
            if delay > 0:
                yield env.timeout(delay)
            return result

        return run(self.env)

    def op_fcall_txn(self, name, args=(), idempotence_key=None):
        """Execute a registered UDF as an in-store *transaction*.

        The function runs against a :class:`~repro.store.udf.TxnUDFContext`:
        reads hit live state (recording the revision each key was read
        at), writes buffer, and on return the buffer commits as one
        atomic ``txn`` batch with read-version preconditions.  If a read
        key moved underneath the function, the batch aborts and the
        function re-runs against fresh state (bounded optimistic retry).

        ``idempotence_key`` makes the call exactly-once: the first
        successful run caches its result under the key, and replays --
        client retries after a lost reply, DLQ re-deliveries -- return
        the cached result without re-running the function or its writes.
        """
        fn, cost = self.functions.get(name)

        def run(env):
            if idempotence_key is not None:
                cached = self._fcall_effects.get(idempotence_key)
                if cached is not None:
                    self.fcall_replays += 1
                    return copy.deepcopy(cached[0])
            attempts = 0
            while True:
                attempts += 1
                if cost > 0:
                    yield env.timeout(cost)
                ctx = TxnUDFContext(self)
                result = fn(ctx, *args)
                delay = ctx.ops * self.local_access_cost
                if delay > 0:
                    yield env.timeout(delay)
                ops = ctx.build_ops()
                if not ops:
                    break
                try:
                    # Synchronous within this instant: the validated
                    # batch applies with nothing interleaving.
                    self.op_txn(ops)
                    break
                except ConflictError:
                    self.fcall_conflicts += 1
                    if attempts >= 8:
                        raise
            if idempotence_key is not None:
                self._fcall_effects[idempotence_key] = (copy.deepcopy(result),)
            return result

        return run(self.env)

    # -- crash semantics -----------------------------------------------------

    def _on_crash(self):
        """In-memory store: a crash loses all state (no persistence path).

        The revision counter is intentionally *not* reset, so post-restart
        commits never reuse a revision that watchers already observed.
        The fcall idempotence cache is state too: it dies with the data
        it guards (a replay against an empty store must re-apply).
        """
        self._objects = {}
        self._strings = {}
        self._fcall_effects = {}


class MemKVClient(StoreClient):
    """Typed convenience client for the Redis-like store."""

    def create(self, key, data, labels=None):
        return self.request("create", key=key, data=data, labels=labels)

    def update(self, key, data, resource_version=None):
        return self.request(
            "update", key=key, data=data, resource_version=resource_version
        )

    def delete(self, key):
        return self.request("delete", key=key)

    def list(self, key_prefix=""):
        return self.request("list", key_prefix=key_prefix)

    def txn(self, ops):
        return self.request("txn", ops=ops)

    def command(self, name, *args):
        return self.request("command", name=name, args=args)

    def fcall(self, name, *args):
        return self.request("fcall", name=name, args=args)

    def fcall_txn(self, name, *args, idempotence_key=None):
        return self.request(
            "fcall_txn", name=name, args=args, idempotence_key=idempotence_key
        )
