"""Shared utilities: YAML-subset parsing, dotted paths, deep freezing."""

from repro.util.paths import delete_path, get_path, set_path, walk_leaves
from repro.util.yamlish import YamlishError, dumps, parse

__all__ = [
    "YamlishError",
    "delete_path",
    "dumps",
    "get_path",
    "parse",
    "set_path",
    "walk_leaves",
]
