"""A small YAML-subset parser for schema and DXG specifications.

PyYAML is not available offline, and the paper's configuration snippets
(Fig. 5 schema, Fig. 6 DXG) only need a small, predictable subset:

- block mappings (``key: value`` / ``key:`` with an indented body),
- block lists (``- item``),
- scalars: int, float, bool, null, single/double-quoted and bare strings,
- inline lists ``[a, b, c]``,
- folded blocks (``key: >`` joins following indented lines with spaces),
- comments (``# ...``), including *trailing annotation comments* which are
  reported to the caller (the schema system stores ``# +kr: external``
  annotations this way).

``parse`` returns ``(data, annotations)`` where ``annotations`` maps a
tuple path (e.g. ``("order", "shippingCost")``) to the trailing comment
text of that line, without the leading ``#``.
"""

import re

from repro.errors import ReproError


class YamlishError(ReproError):
    """The document is outside the supported subset or malformed."""


_BOOLS = {"true": True, "false": False, "yes": True, "no": False}


def _parse_scalar(text):
    """Parse a scalar token into a Python value."""
    text = text.strip()
    if text == "" or text in ("null", "~"):
        return None
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    lowered = text.lower()
    if lowered in _BOOLS:
        return _BOOLS[lowered]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in _split_inline(inner)]
    if text.startswith("{") and text.endswith("}"):
        inner = text[1:-1].strip()
        if not inner:
            return {}
        mapping = {}
        for part in _split_inline(inner):
            if ":" not in part:
                raise YamlishError(f"bad inline mapping entry {part!r}")
            key_text, value_text = part.split(":", 1)
            mapping[_parse_scalar(key_text)] = _parse_scalar(value_text)
        return mapping
    return text


def _split_inline(text):
    """Split an inline-list body on commas outside quotes/brackets."""
    parts = []
    depth = 0
    quote = None
    current = []
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "[({":
            depth += 1
            current.append(ch)
        elif ch in "])}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _strip_comment(line):
    """Split a line into (content, trailing-comment-text-or-None).

    A ``#`` inside quotes does not start a comment.  A comment must be
    preceded by whitespace or start the line (matching YAML).
    """
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i].rstrip(), line[i + 1 :].strip()
    return line.rstrip(), None


class _Line:
    __slots__ = ("number", "indent", "content", "comment")

    def __init__(self, number, indent, content, comment):
        self.number = number
        self.indent = indent
        self.content = content
        self.comment = comment


def _tokenize(text):
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlishError(f"line {number}: tabs are not allowed in indentation")
        content, comment = _strip_comment(raw)
        stripped = content.strip()
        if not stripped:
            continue
        indent = len(content) - len(content.lstrip(" "))
        lines.append(_Line(number, indent, stripped, comment))
    return lines


_KEY_RE = re.compile(r"^(?P<key>[^:]+?)\s*:(?:\s+(?P<value>.*))?$")


class _Parser:
    def __init__(self, lines):
        self.lines = lines
        self.pos = 0
        self.annotations = {}

    def peek(self):
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent, path):
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- "):
            return self.parse_list(indent, path)
        return self.parse_mapping(indent, path)

    def parse_list(self, indent, path):
        items = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlishError(
                    f"line {line.number}: unexpected indent in list"
                )
            if not line.content.startswith("- "):
                break
            body = line.content[2:].strip()
            item_path = path + (len(items),)
            if line.comment:
                self.annotations[item_path] = line.comment
            self.pos += 1
            if not body:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent, item_path))
                else:
                    items.append(None)
            elif _KEY_RE.match(body) and not body.startswith(("'", '"', "[", "{")):
                # "- key: value" starts an inline mapping item.
                items.append(self.parse_inline_map_item(body, line, indent, item_path))
            else:
                items.append(_parse_scalar(body))
        return items

    def parse_inline_map_item(self, body, line, indent, path):
        match = _KEY_RE.match(body)
        key = _parse_scalar(match.group("key"))
        value_text = match.group("value")
        mapping = {}
        if value_text is None or value_text == "":
            nxt = self.peek()
            if nxt is not None and nxt.indent > indent + 2:
                mapping[key] = self.parse_block(nxt.indent, path + (key,))
            else:
                mapping[key] = None
        else:
            mapping[key] = _parse_scalar(value_text)
        # Continuation keys aligned with the first key (indent + 2).
        while True:
            nxt = self.peek()
            if nxt is None or nxt.indent != indent + 2:
                break
            if nxt.content.startswith("- "):
                break
            mapping.update(self.parse_mapping(indent + 2, path, single_level=True))
            break
        return mapping

    def parse_mapping(self, indent, path, single_level=False):
        mapping = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlishError(
                    f"line {line.number}: unexpected indent (expected {indent})"
                )
            if line.content.startswith("- "):
                break
            match = _KEY_RE.match(line.content)
            if not match:
                raise YamlishError(
                    f"line {line.number}: expected 'key: value', got {line.content!r}"
                )
            key = _parse_scalar(match.group("key"))
            if key in mapping:
                raise YamlishError(f"line {line.number}: duplicate key {key!r}")
            value_text = match.group("value")
            key_path = path + (key,)
            if line.comment:
                self.annotations[key_path] = line.comment
            self.pos += 1
            if value_text is None or value_text == "":
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    mapping[key] = self.parse_block(nxt.indent, key_path)
                else:
                    mapping[key] = None
            elif value_text in (">", "|"):
                mapping[key] = self.parse_text_block(indent, value_text)
            else:
                mapping[key] = _parse_scalar(value_text)
        return mapping

    def parse_text_block(self, indent, style):
        pieces = []
        while True:
            line = self.peek()
            if line is None or line.indent <= indent:
                break
            pieces.append(line.content)
            self.pos += 1
        if not pieces:
            raise YamlishError("empty folded/literal block")
        joiner = " " if style == ">" else "\n"
        return joiner.join(pieces)


def parse(text, with_annotations=False):
    """Parse a YAML-subset document.

    Returns the parsed data, or ``(data, annotations)`` when
    ``with_annotations`` is true.
    """
    lines = _tokenize(text)
    parser = _Parser(lines)
    if not lines:
        data = {}
    else:
        data = parser.parse_block(lines[0].indent, ())
        leftover = parser.peek()
        if leftover is not None:
            raise YamlishError(
                f"line {leftover.number}: trailing content {leftover.content!r}"
            )
    if with_annotations:
        return data, parser.annotations
    return data


def dumps(data, indent=0):
    """Render nested dict/list/scalar data back into the subset syntax.

    Containers nested inside list items are rendered in inline form
    (``[a, b]`` / ``{k: v}``), which the parser round-trips.
    """
    pad = "  " * indent
    out = []
    if isinstance(data, dict):
        for key, value in data.items():
            rendered_key = _render_key(key)
            if isinstance(value, (dict, list)) and value:
                out.append(f"{pad}{rendered_key}:")
                out.append(dumps(value, indent + 1))
            else:
                out.append(f"{pad}{rendered_key}: {_render_scalar(value)}")
    elif isinstance(data, list):
        for item in data:
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}- {_render_inline(item)}")
            else:
                out.append(f"{pad}- {_render_scalar(item)}")
    else:
        out.append(f"{pad}{_render_scalar(data)}")
    return "\n".join(out)


def _render_key(key):
    """Keys that would not parse back as the same string get quoted."""
    if isinstance(key, str) and _parse_scalar(key) == key and key:
        return key
    if isinstance(key, str):
        return f"'{key}'"
    return _render_scalar(key)


def _render_inline(value):
    """Inline (flow-style) rendering for containers inside list items."""
    if isinstance(value, dict):
        parts = ", ".join(
            f"{_render_key(k)}: {_render_inline(v)}" for k, v in value.items()
        )
        return "{" + parts + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_inline(v) for v in value) + "]"
    if isinstance(value, str):
        if "'" in value or "\n" in value:
            raise YamlishError(
                f"string {value!r} cannot be rendered inline (quote chars)"
            )
        return f"'{value}'"
    return _render_scalar(value)


def _render_scalar(value):
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        needs_quoting = (
            value == ""
            or re.search(r"[:#\[\]{}]", value)
            or value != value.strip()
            or value.startswith(("'", '"', "- "))
            or _parse_scalar(value) != value  # "0", "true", "no", "null", ...
        )
        if needs_quoting:
            return f"'{value}'"
        return value
    if isinstance(value, list) and not value:
        return "[]"
    if isinstance(value, dict) and not value:
        return "{}"
    return str(value)
