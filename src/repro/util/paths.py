"""Dotted-path access into nested dict/list structures.

State objects in the data stores are plain nested dicts.  Schemas, DXG
expressions, and field-level access control all address fields with dotted
paths like ``"order.items"`` or ``"quote.price"``.
"""


class PathError(KeyError):
    """A dotted path did not resolve."""


_MISSING = object()


def split(path):
    """Split ``"a.b.c"`` into ``["a", "b", "c"]`` (accepts lists as-is)."""
    if isinstance(path, (list, tuple)):
        return list(path)
    if not path:
        raise PathError("empty path")
    return path.split(".")


def get_path(obj, path, default=_MISSING):
    """Resolve a dotted path; raise :class:`PathError` unless ``default``."""
    current = obj
    for part in split(path):
        if isinstance(current, dict):
            if part not in current:
                if default is _MISSING:
                    raise PathError(f"path {path!r}: missing key {part!r}")
                return default
            current = current[part]
        elif isinstance(current, (list, tuple)):
            try:
                current = current[int(part)]
            except (ValueError, IndexError):
                if default is _MISSING:
                    raise PathError(f"path {path!r}: bad index {part!r}")
                return default
        else:
            if default is _MISSING:
                raise PathError(
                    f"path {path!r}: cannot descend into {type(current).__name__}"
                )
            return default
    return current


def set_path(obj, path, value, create=True):
    """Set a dotted path, creating intermediate dicts when ``create``."""
    parts = split(path)
    current = obj
    for part in parts[:-1]:
        if isinstance(current, dict):
            if part not in current:
                if not create:
                    raise PathError(f"path {path!r}: missing key {part!r}")
                current[part] = {}
            current = current[part]
        elif isinstance(current, list):
            current = current[int(part)]
        else:
            raise PathError(
                f"path {path!r}: cannot descend into {type(current).__name__}"
            )
    leaf = parts[-1]
    if isinstance(current, dict):
        current[leaf] = value
    elif isinstance(current, list):
        current[int(leaf)] = value
    else:
        raise PathError(f"path {path!r}: cannot assign into {type(current).__name__}")


def delete_path(obj, path):
    """Delete the leaf of a dotted path; missing paths are ignored."""
    parts = split(path)
    try:
        parent = get_path(obj, parts[:-1]) if len(parts) > 1 else obj
    except PathError:
        return
    if isinstance(parent, dict):
        parent.pop(parts[-1], None)


def walk_leaves(obj, prefix=()):
    """Yield ``(path_tuple, value)`` for every non-dict leaf in ``obj``."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from walk_leaves(value, prefix + (key,))
    else:
        yield prefix, obj
