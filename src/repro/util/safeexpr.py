"""Safe evaluation of DXG / query expressions.

The paper's DXG specifications (Fig. 6) embed small expressions::

    currency_convert(S.quote.price, S.quote.currency, this.currency)
    [item.name for item in C.order.items]
    "air" if C.order.cost > 1000 else "ground"

These are parsed with :mod:`ast` and evaluated against a context of named
data-store states.  Only a whitelisted set of node types is allowed -- no
attribute access on arbitrary objects (attributes resolve to dict keys), no
imports, no dunder access, and calls may only target functions explicitly
registered by the integrator author.
"""

import ast

from repro.errors import ExpressionError

_ALLOWED_NODES = (
    ast.Expression,
    ast.Constant,
    ast.Name,
    ast.Load,
    ast.Store,  # comprehension targets bind names
    ast.Attribute,
    ast.Subscript,
    ast.Index if hasattr(ast, "Index") else ast.Constant,  # py<3.9 compat shim
    ast.Slice,
    ast.Tuple,
    ast.List,
    ast.Dict,
    ast.Set,
    ast.Call,
    ast.keyword,
    ast.IfExp,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.UnaryOp,
    ast.Not,
    ast.USub,
    ast.UAdd,
    ast.BinOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.Compare,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.In,
    ast.NotIn,
    ast.Is,
    ast.IsNot,
    ast.ListComp,
    ast.SetComp,
    ast.GeneratorExp,
    ast.comprehension,
)

#: Builtin functions available in every expression (pure, total-ish).
SAFE_BUILTINS = {
    "abs": abs,
    "len": len,
    "min": min,
    "max": max,
    "sum": sum,
    "round": round,
    "sorted": sorted,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "any": any,
    "all": all,
}


class _AttrView:
    """Read-only dict wrapper exposing keys as attributes.

    Deliberately NOT a dict subclass, and with no public methods at all:
    field names like ``items`` or ``keys`` must resolve to the *data*,
    not to dict methods (the paper's own Fig. 6 reads ``C.order.items``).
    Use :func:`unwrap` to get plain dicts back for interop.
    """

    __slots__ = ("_data",)

    def __init__(self, data):
        object.__setattr__(self, "_data", data)

    def __getattr__(self, name):
        if name.startswith("__"):
            raise AttributeError(name)
        try:
            return _wrap(self._data[name])
        except KeyError:
            raise ExpressionError(f"no field {name!r}") from None

    def __getitem__(self, key):
        try:
            return _wrap(self._data[key])
        except KeyError:
            raise ExpressionError(f"no field {key!r}") from None

    def __iter__(self):
        # Iterating an *object* yields its field VALUES (record semantics,
        # like Zed's `items[]`): Fig. 6's `[item.name for item in
        # C.order.items]` works with Fig. 5's `items: object`.
        return iter(_wrap(v) for v in self._data.values())

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def __eq__(self, other):
        if isinstance(other, _AttrView):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other):
        return not self.__eq__(other)

    def __bool__(self):
        return bool(self._data)

    def __repr__(self):
        return f"AttrView({self._data!r})"

    __hash__ = None


def _wrap(value):
    if isinstance(value, _AttrView):
        return value
    if isinstance(value, dict):
        return _AttrView(value)
    if isinstance(value, list):
        return [_wrap(v) for v in value]
    return value


def unwrap(value):
    """Deep-convert wrapped views back into plain dicts/lists."""
    if isinstance(value, _AttrView):
        return unwrap(value._data)
    if isinstance(value, dict):
        return {k: unwrap(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [unwrap(v) for v in value]
    return value


class SafeExpression:
    """A parsed, validated expression ready for repeated evaluation."""

    def __init__(self, source):
        if not isinstance(source, str) or not source.strip():
            raise ExpressionError(f"expression must be a non-empty string: {source!r}")
        self.source = source.strip()
        try:
            tree = ast.parse(self.source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"syntax error in {self.source!r}: {exc}") from exc
        self._validate(tree)
        self._tree = tree
        self._code = compile(tree, "<dxg-expr>", "eval")
        self.names = self._root_names(tree)
        self.paths = self._dependency_paths(tree)

    def _validate(self, tree):
        for node in ast.walk(tree):
            if not isinstance(node, _ALLOWED_NODES):
                raise ExpressionError(
                    f"disallowed syntax {type(node).__name__!r} in {self.source!r}"
                )
            if isinstance(node, ast.Attribute) and node.attr.startswith("__"):
                raise ExpressionError(f"dunder access forbidden in {self.source!r}")
            if isinstance(node, ast.Name) and node.id.startswith("__"):
                raise ExpressionError(f"dunder name forbidden in {self.source!r}")
            if isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Name):
                    raise ExpressionError(
                        f"only plain function calls are allowed in {self.source!r}"
                    )

    @staticmethod
    def _root_names(tree):
        """Free variable names (excluding comprehension-bound names)."""
        bound = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id not in bound:
                names.add(node.id)
        return frozenset(names)

    def _dependency_paths(self, tree):
        """Dotted paths the expression reads, e.g. ``{("S","quote","price")}``.

        Paths rooted at comprehension-bound names and at function names are
        excluded.  An attribute chain contributes its longest prefix of
        plain attribute accesses.
        """
        bound = set()
        called = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called.add(node.func.id)

        paths = set()

        def chain(node):
            parts = []
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                parts.append(node.id)
                return tuple(reversed(parts))
            return None

        class Visitor(ast.NodeVisitor):
            def visit_Attribute(self, node):
                path = chain(node)
                if path is not None and path[0] not in bound:
                    paths.add(path)
                else:
                    self.generic_visit(node)

            def visit_Name(self, node):
                if node.id not in bound and node.id not in called:
                    paths.add((node.id,))

        Visitor().visit(tree)
        # Drop paths shadowed by a longer recorded path with the same root:
        # 'S.quote.price' subsumes nothing here, but a bare ('S',) recorded
        # from a different sub-expression is kept -- it is a real read.
        return frozenset(paths)

    def evaluate(self, context, functions=None):
        """Evaluate against ``context`` (name -> state dict / scalar)."""
        table = dict(SAFE_BUILTINS)
        if functions:
            table.update(functions)
        scope = {name: _wrap(value) for name, value in context.items()}
        # Context (data) shadows functions, like local names shadow
        # builtins in Python: a record field named `max` is data.
        missing = self.names - set(scope) - set(table)
        if missing:
            raise ExpressionError(
                f"unbound name(s) {sorted(missing)} in {self.source!r}"
            )
        try:
            result = eval(  # noqa: S307 -- validated, whitelisted AST
                self._code, {"__builtins__": {}}, {**table, **scope}
            )
            return unwrap(result)
        except ExpressionError:
            raise
        except Exception as exc:
            raise ExpressionError(
                f"evaluation of {self.source!r} failed: {exc}"
            ) from exc

    def __repr__(self):
        return f"<SafeExpression {self.source!r}>"
