"""Synchronous RPC over the simulated network.

An :class:`RPCServer` registers service method handlers; an
:class:`RPCChannel` is a client-side connection that issues calls::

    def handler(request):          # plain value or generator
        yield env.timeout(0.446)   # service time
        return {"tracking_id": "trk-1"}

    server = RPCServer(env, net, "shipping")
    server.register("ShippingService", "ShipOrder", handler, idl=shipping_idl)

    channel = RPCChannel(env, server, client_location="checkout")
    response = yield channel.call("ShippingService", "ShipOrder", request)

Requests/responses are validated against the service's IDL on both sides
-- exactly the schema coupling the paper describes (a client *must* hold
the server's message definitions).
"""

from dataclasses import dataclass

from repro.errors import IDLError, RPCError, RPCStatusError
from repro.flow.policy import BLOCK, REJECT, SHED_NEWEST, check_overflow
from repro.obs.context import bind_generator, current_context, use
from repro.simnet.queue import Resource
from repro.store.base import estimate_size

#: gRPC-style status codes (subset).
OK = "OK"
NOT_FOUND = "NOT_FOUND"
INVALID_ARGUMENT = "INVALID_ARGUMENT"
UNIMPLEMENTED = "UNIMPLEMENTED"
INTERNAL = "INTERNAL"
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
UNAVAILABLE = "UNAVAILABLE"
RESOURCE_EXHAUSTED = "RESOURCE_EXHAUSTED"

#: Status codes the resilience layer treats as transient
#: (see :func:`repro.faults.retry.default_retryable`).
#: ``RESOURCE_EXHAUSTED`` (a full accept queue) is transient by
#: definition: the correct client response is backoff-and-retry.
RETRYABLE_CODES = (UNAVAILABLE, DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED)


@dataclass
class _Registration:
    handler: object
    idl: object
    request_message: str
    response_message: str


class RPCServer:
    """Hosts service method handlers at one network location.

    With ``workers`` set, handler execution runs through a bounded
    worker pool and ``accept_queue``/``overflow`` bound the callers
    waiting for a worker: ``block`` waits without bound (the legacy
    shape), while ``reject``/``shed_newest`` fail the overflowing call
    fast with ``RESOURCE_EXHAUSTED`` -- retryable, so a channel with a
    :class:`~repro.faults.RetryPolicy` backs off instead of piling on.
    ``workers=None`` keeps the pre-backpressure unlimited-concurrency
    behaviour.
    """

    #: Per-request server-side dispatch overhead (seconds) and
    #: serialization cost per byte.
    dispatch_overhead = 0.0002
    per_byte = 1e-9

    def __init__(self, env, network, location, workers=None,
                 accept_queue=64, overflow=REJECT):
        self.env = env
        self.network = network
        self.location = location
        self._methods = {}
        self.calls_served = 0
        self.available = True
        self.rejected_while_down = 0
        self.rejected_overload = 0
        # A synchronous caller cannot be evicted once parked, so the RPC
        # plane supports the policies that act on the *incoming* call.
        self.overflow = check_overflow(overflow,
                                       allowed=(BLOCK, REJECT, SHED_NEWEST))
        self.accept_queue = int(accept_queue)
        self._worker_pool = (
            Resource(env, capacity=int(workers)) if workers else None
        )

    @property
    def queued(self):
        """Calls currently waiting for a worker slot."""
        return self._worker_pool.queued if self._worker_pool else 0

    @property
    def peak_queued(self):
        return self._worker_pool.peak_queued if self._worker_pool else 0

    def set_available(self, available):
        """Transient outage window: calls fail fast with ``UNAVAILABLE``."""
        self.available = bool(available)

    def register(self, service, method, handler, idl=None):
        """Register ``handler`` for ``service/method``.

        With ``idl`` given, requests and responses are validated against
        the method's message definitions.
        """
        request_message = response_message = None
        if idl is not None:
            rpc = idl.service(service).method(method)
            request_message = rpc.request
            response_message = rpc.response
        self._methods[(service, method)] = _Registration(
            handler, idl, request_message, response_message
        )

    def unregister(self, service, method):
        self._methods.pop((service, method), None)

    def dispatch(self, service, method, payload, ctx=None):
        """Server-side execution; returns a simnet process event.

        The event's value is ``(status, response_or_message)``.  With
        ``ctx``, the handler runs with that causal context ambient, so
        store writes it makes chain onto the caller's rpc span.
        """
        return self.env.process(self._dispatch(service, method, payload, ctx))

    def _dispatch(self, service, method, payload, ctx=None):
        if not self.available:
            self.rejected_while_down += 1
            yield self.env.timeout(self.dispatch_overhead)
            return (UNAVAILABLE, f"server at {self.location!r} is down")
        registration = self._methods.get((service, method))
        if registration is None:
            yield self.env.timeout(self.dispatch_overhead)
            return (UNIMPLEMENTED, f"no handler for {service}/{method}")
        if self._worker_pool is None:
            return (yield from self._execute(registration, payload, ctx))
        pool = self._worker_pool
        if (pool.in_use >= pool.capacity
                and pool.queued >= self.accept_queue
                and self.overflow != BLOCK):
            self.rejected_overload += 1
            yield self.env.timeout(self.dispatch_overhead)
            return (RESOURCE_EXHAUSTED,
                    f"accept queue full at {self.location!r} "
                    f"({pool.queued}/{self.accept_queue})")
        yield pool.acquire()
        try:
            return (yield from self._execute(registration, payload, ctx))
        finally:
            pool.release()

    def _execute(self, registration, payload, ctx):
        delay = self.dispatch_overhead + self.per_byte * estimate_size(payload)
        yield self.env.timeout(delay)
        if registration.idl is not None:
            try:
                registration.idl.validate_payload(
                    registration.request_message, payload
                )
            except IDLError as exc:
                return (INVALID_ARGUMENT, str(exc))
        try:
            if ctx is not None:
                with use(ctx):
                    result = registration.handler(payload)
            else:
                result = registration.handler(payload)
            if hasattr(result, "send"):
                if ctx is not None:
                    result = bind_generator(result, ctx)
                result = yield self.env.process(result)
        except RPCStatusError as exc:
            return (exc.code, exc.message)
        except RPCError as exc:
            return (INTERNAL, str(exc))
        if registration.idl is not None and result is not None:
            try:
                registration.idl.validate_payload(
                    registration.response_message, result
                )
            except IDLError as exc:
                return (INTERNAL, f"bad response from handler: {exc}")
        self.calls_served += 1
        return (OK, result if result is not None else {})


class RPCChannel:
    """A client connection from one location to one server.

    With a :class:`repro.faults.RetryPolicy` (and optionally a
    :class:`repro.faults.CircuitBreaker`) attached, calls that fail with
    a retryable status -- ``UNAVAILABLE``, ``DEADLINE_EXCEEDED``, or a
    partitioned link -- are re-issued with seeded-jitter backoff, the
    same degradation contract the store clients get.
    """

    def __init__(self, env, server, client_location, default_deadline=None,
                 retry_policy=None, circuit_breaker=None):
        self.env = env
        self.server = server
        self.client_location = client_location
        self.default_deadline = default_deadline
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        self.calls_made = 0

    def call(self, service, method, payload=None, deadline=None):
        """Issue a synchronous call; returns a simnet process event.

        Raises :class:`RPCStatusError` for non-OK statuses (including
        DEADLINE_EXCEEDED when the deadline elapses first).
        """
        # Captured synchronously: every (possibly retried) attempt spans
        # off the caller's context even though attempts run unbound.
        parent = current_context()
        if self.retry_policy is None and self.circuit_breaker is None:
            return self.env.process(
                self._call(service, method, payload or {}, deadline, parent)
            )
        from repro.faults.retry import RetryPolicy

        policy = self.retry_policy
        if policy is None:  # breaker-only channel: gate but never retry
            policy = self.retry_policy = RetryPolicy(max_attempts=1)
        return policy.execute(
            self.env,
            lambda: self.env.process(
                self._call(service, method, payload or {}, deadline, parent)
            ),
            breaker=self.circuit_breaker,
        )

    def _call(self, service, method, payload, deadline, parent=None):
        deadline = deadline if deadline is not None else self.default_deadline
        self.calls_made += 1
        octx = None
        if parent is not None and parent.sink is not None:
            # One rpc span per attempt: retries show up as siblings.
            octx = parent.sink.start_span(
                f"rpc:{service}/{method}", service=self.client_location,
                parent=parent, server=self.server.location,
            )
        work = self.env.process(self._roundtrip(service, method, payload, octx))
        try:
            if deadline is None:
                status, value = yield work
            else:
                timer = self.env.timeout(deadline,
                                         value=(DEADLINE_EXCEEDED, None))
                first = yield self.env.any_of([work, timer])
                status, value = next(iter(first.values()))
        except Exception as exc:  # partitioned link, server crash, ...
            if octx is not None:
                octx.sink.end_span(octx, status=type(exc).__name__)
            raise
        if deadline is not None and status == DEADLINE_EXCEEDED:
            if octx is not None:
                octx.sink.end_span(octx, status=DEADLINE_EXCEEDED)
            raise RPCStatusError(
                DEADLINE_EXCEEDED, f"{service}/{method} after {deadline}s"
            )
        if octx is not None:
            octx.sink.end_span(octx, status=status)
        if status != OK:
            raise RPCStatusError(status, str(value))
        return value

    def _roundtrip(self, service, method, payload, ctx=None):
        net = self.server.network
        yield net.transfer(self.client_location, self.server.location)
        status, value = yield self.server.dispatch(service, method, payload, ctx)
        yield net.transfer(self.server.location, self.client_location)
        return (status, value)
