"""Client stub code generation from IDL files.

Real RPC stacks generate client code from the service's IDL; the client
imports and compiles against it.  This module does both jobs:

- :func:`generate_client_stub` emits the stub as **source text** -- the
  concrete artifact the composition-cost benchmark (Table 1) counts,
- :func:`build_client_class` builds the equivalent class at run time for
  the baseline applications to actually call.

The generated source mirrors what ``protoc`` + ``grpcio`` emit in shape:
one ``<Service>Stub`` class per service, one method per rpc, plus message
constructor helpers with per-field keyword arguments.
"""

from repro.errors import IDLError


def generate_client_stub(idl, service_name=None):
    """Emit Python stub source for ``idl`` (optionally one service)."""
    services = (
        [idl.service(service_name)] if service_name else list(idl.services.values())
    )
    if not services:
        raise IDLError("IDL defines no services")
    lines = [
        '"""Generated client stubs. DO NOT EDIT.',
        "",
        f"source package: {idl.package or '(default)'}",
        '"""',
        "",
        "",
    ]
    for message in idl.messages.values():
        params = ", ".join(f"{f.name}=None" for f in message.fields)
        lines.append(f"def make_{_snake(message.name)}({params}):")
        lines.append(f'    """Constructor for message {message.name}."""')
        lines.append("    payload = {}")
        for f in message.fields:
            lines.append(f"    if {f.name} is not None:")
            lines.append(f"        payload[{f.name!r}] = {f.name}")
        lines.append("    return payload")
        lines.append("")
        lines.append("")
    for service in services:
        lines.append(f"class {service.name}Stub:")
        lines.append(f'    """Client stub for {service.name}."""')
        lines.append("")
        lines.append("    def __init__(self, channel):")
        lines.append("        self._channel = channel")
        lines.append("")
        for method in service.methods:
            lines.append(f"    def {_snake(method.name)}(self, request, deadline=None):")
            lines.append(
                f'        """Call {service.name}.{method.name} '
                f"({method.request} -> {method.response})." + '"""'
            )
            lines.append(
                f"        return self._channel.call({service.name!r}, "
                f"{method.name!r}, request, deadline=deadline)"
            )
            lines.append("")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def build_client_class(idl, service_name):
    """Build a callable stub class bound to ``idl``'s message schemas.

    Methods validate the request against the IDL before sending --
    exactly what compiled stubs enforce via their typed constructors.
    """
    service = idl.service(service_name)

    def make_method(method):
        def rpc_method(self, request, deadline=None):
            idl.validate_payload(method.request, request)
            return self._channel.call(
                service.name, method.name, request, deadline=deadline
            )

        rpc_method.__name__ = _snake(method.name)
        rpc_method.__doc__ = (
            f"Call {service.name}.{method.name} "
            f"({method.request} -> {method.response})."
        )
        return rpc_method

    namespace = {
        "__doc__": f"Runtime client stub for {service.name}.",
        "__init__": lambda self, channel: setattr(self, "_channel", channel),
    }
    for method in service.methods:
        namespace[_snake(method.name)] = make_method(method)
    return type(f"{service.name}Stub", (), namespace)


def _snake(name):
    import keyword

    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0 and (not name[i - 1].isupper()):
            out.append("_")
        out.append(ch.lower())
    result = "".join(out)
    # 'Pass' -> 'pass_' etc.: generated methods must stay valid Python.
    if keyword.iskeyword(result):
        result += "_"
    return result
