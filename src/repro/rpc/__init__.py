"""The RPC baseline: a gRPC/Protobuf-like stack built from scratch.

This is the *API-centric* composition mechanism the paper compares
against.  It deliberately reproduces the coupling artifacts of real RPC
stacks, because Table 1 counts them:

- services define ``.proto``-style IDL files (:mod:`repro.rpc.idl`),
- clients generate stub code from those files (:mod:`repro.rpc.codegen`)
  -- real source text, counted by the SLOC benchmarks,
- calls are synchronous request/response over the simulated network
  (:mod:`repro.rpc.channel`), with status codes and deadlines.
"""

from repro.rpc.idl import IDLFile, Message, MessageField, RPCMethod, Service, parse_idl
from repro.rpc.codegen import build_client_class, generate_client_stub
from repro.rpc.channel import RPCChannel, RPCServer
from repro.errors import IDLError, RPCError, RPCStatusError

__all__ = [
    "IDLError",
    "IDLFile",
    "Message",
    "MessageField",
    "RPCChannel",
    "RPCError",
    "RPCMethod",
    "RPCServer",
    "RPCStatusError",
    "Service",
    "build_client_class",
    "generate_client_stub",
    "parse_idl",
]
