"""A Protobuf-like interface definition language.

Supports the proto3 subset the example applications need::

    syntax = "proto3";
    package onlineretail.shipping.v1;

    message Item {
      string name = 1;
    }

    message ShipOrderRequest {
      repeated Item items = 1;
      string address = 2;
      string method = 3;
    }

    message ShipOrderResponse {
      string tracking_id = 1;
      double shipping_cost = 2;
    }

    service ShippingService {
      rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
    }

Scalar types: string, double, float, int32, int64, uint32, uint64, bool,
bytes.  Labels: ``repeated`` and ``optional``.  Messages may reference
other messages (including forward references).  Comments: ``//``.
"""

import re
from dataclasses import dataclass, field

from repro.errors import IDLError

SCALAR_TYPES = {
    "string": str,
    "bytes": str,
    "double": (int, float),
    "float": (int, float),
    "int32": int,
    "int64": int,
    "uint32": int,
    "uint64": int,
    "bool": bool,
}


@dataclass(frozen=True)
class MessageField:
    """One field in a message: ``[label] type name = tag;``"""

    name: str
    type: str
    tag: int
    label: str = ""  # "", "repeated", "optional"

    @property
    def repeated(self):
        return self.label == "repeated"


@dataclass
class Message:
    """A message definition."""

    name: str
    fields: list = field(default_factory=list)

    def field_by_name(self, name):
        for f in self.fields:
            if f.name == name:
                return f
        raise IDLError(f"message {self.name} has no field {name!r}")

    def field_names(self):
        return [f.name for f in self.fields]


@dataclass(frozen=True)
class RPCMethod:
    """``rpc Name(Request) returns (Response);``"""

    name: str
    request: str
    response: str


@dataclass
class Service:
    """A service definition with its rpc methods."""

    name: str
    methods: list = field(default_factory=list)

    def method(self, name):
        for m in self.methods:
            if m.name == name:
                return m
        raise IDLError(f"service {self.name} has no method {name!r}")


@dataclass
class IDLFile:
    """A parsed .proto-style file."""

    package: str = ""
    syntax: str = "proto3"
    messages: dict = field(default_factory=dict)
    services: dict = field(default_factory=dict)
    source_text: str = ""

    def message(self, name):
        try:
            return self.messages[name]
        except KeyError:
            raise IDLError(f"unknown message {name!r}") from None

    def service(self, name):
        try:
            return self.services[name]
        except KeyError:
            raise IDLError(f"unknown service {name!r}") from None

    def validate_payload(self, message_name, payload, _depth=0):
        """Check a dict payload against a message definition.

        Unknown fields are rejected (proto3 clients cannot set fields the
        schema does not define); missing fields default (proto3 default
        semantics), so they are allowed.
        """
        message = self.message(message_name)
        if not isinstance(payload, dict):
            raise IDLError(
                f"{message_name} payload must be a dict, "
                f"got {type(payload).__name__}"
            )
        known = {f.name: f for f in message.fields}
        for key, value in payload.items():
            if key not in known:
                raise IDLError(f"{message_name} has no field {key!r}")
            self._check_field(known[key], value, message_name)

    def _check_field(self, fld, value, message_name):
        if value is None:
            return
        if fld.repeated:
            if not isinstance(value, list):
                raise IDLError(
                    f"{message_name}.{fld.name} is repeated; expected a list"
                )
            for item in value:
                self._check_scalar_or_message(fld, item, message_name)
        else:
            self._check_scalar_or_message(fld, value, message_name)

    def _check_scalar_or_message(self, fld, value, message_name):
        if fld.type in SCALAR_TYPES:
            expected = SCALAR_TYPES[fld.type]
            if fld.type != "bool" and isinstance(value, bool):
                raise IDLError(
                    f"{message_name}.{fld.name}: bool is not a {fld.type}"
                )
            if not isinstance(value, expected):
                raise IDLError(
                    f"{message_name}.{fld.name}: expected {fld.type}, "
                    f"got {type(value).__name__}"
                )
        else:
            self.validate_payload(fld.type, value)


_FIELD_RE = re.compile(
    r"^(?:(repeated|optional)\s+)?(\w+)\s+(\w+)\s*=\s*(\d+)\s*;$"
)
_RPC_RE = re.compile(r"^rpc\s+(\w+)\s*\(\s*(\w+)\s*\)\s+returns\s*\(\s*(\w+)\s*\)\s*;$")


def parse_idl(text):
    """Parse IDL text into an :class:`IDLFile`."""
    idl = IDLFile(source_text=text)
    current = None  # ("message", Message) | ("service", Service)
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith("syntax"):
            match = re.match(r'syntax\s*=\s*"(\w+)"\s*;', line)
            if not match:
                raise IDLError(f"bad syntax line: {raw_line!r}")
            idl.syntax = match.group(1)
        elif line.startswith("package"):
            match = re.match(r"package\s+([\w.]+)\s*;", line)
            if not match:
                raise IDLError(f"bad package line: {raw_line!r}")
            idl.package = match.group(1)
        elif line.startswith("message"):
            match = re.match(r"message\s+(\w+)\s*\{", line)
            if not match:
                raise IDLError(f"bad message line: {raw_line!r}")
            name = match.group(1)
            if name in idl.messages:
                raise IDLError(f"duplicate message {name!r}")
            current = ("message", Message(name))
            idl.messages[name] = current[1]
        elif line.startswith("service"):
            match = re.match(r"service\s+(\w+)\s*\{", line)
            if not match:
                raise IDLError(f"bad service line: {raw_line!r}")
            name = match.group(1)
            if name in idl.services:
                raise IDLError(f"duplicate service {name!r}")
            current = ("service", Service(name))
            idl.services[name] = current[1]
        elif line == "}":
            current = None
        elif current is not None and current[0] == "message":
            match = _FIELD_RE.match(line)
            if not match:
                raise IDLError(f"bad field line: {raw_line!r}")
            label, type_name, field_name, tag = match.groups()
            message = current[1]
            if any(f.tag == int(tag) for f in message.fields):
                raise IDLError(
                    f"message {message.name}: duplicate tag {tag}"
                )
            message.fields.append(
                MessageField(field_name, type_name, int(tag), label or "")
            )
        elif current is not None and current[0] == "service":
            match = _RPC_RE.match(line)
            if not match:
                raise IDLError(f"bad rpc line: {raw_line!r}")
            current[1].methods.append(RPCMethod(*match.groups()))
        else:
            raise IDLError(f"unexpected line outside a block: {raw_line!r}")
    if current is not None:
        raise IDLError("unterminated block (missing '}')")
    _check_references(idl)
    return idl


def _check_references(idl):
    for message in idl.messages.values():
        for fld in message.fields:
            if fld.type not in SCALAR_TYPES and fld.type not in idl.messages:
                raise IDLError(
                    f"message {message.name}.{fld.name}: "
                    f"unknown type {fld.type!r}"
                )
    for service in idl.services.values():
        for method in service.methods:
            for ref in (method.request, method.response):
                if ref not in idl.messages:
                    raise IDLError(
                        f"service {service.name}.{method.name}: "
                        f"unknown message {ref!r}"
                    )
