"""Central latency calibration for the Table 2 reproduction.

All the magic numbers that place each setup in its latency regime live
here, so the benchmarks and the docs point at one place.  Values are
seconds of virtual time.

Calibration targets (paper Table 2, online retail shipment request):

======================  =====  =====  =====  =====  ======  =======
Setup                    C-I     I     I-S     S     Prop.   Total
======================  =====  =====  =====  =====  ======  =======
RPC                       -      -      -     446     1.8    447.8
K-apiserver             20.6   0.01   12.5    453    33.1    486.1
K-redis                  3.2   0.06    2.7    444     5.8    449.8
K-redis-udf              2.1   0.7     0.1    450     2.9    452.9
======================  =====  =====  =====  =====  ======  =======

We do not chase the absolute values (the authors measured a real
Kubernetes cluster); we calibrate so the *shape* holds: apiserver
propagation is several times redis propagation, push-down collapses the
integrator-to-Shipping stage by an order of magnitude, and shipment
processing dominates Total in every setup.
"""

from dataclasses import dataclass

from repro.simnet import FixedLatency, LogNormalLatency
from repro.store.base import OpLatency

#: One-way network latency between two pods in the cluster.
NETWORK_HOP = FixedLatency(0.00035)

#: Shipment-processing service time (the FedEx API call): the paper
#: measures 444-453 ms across setups; we model the median at 446 ms.
SHIPMENT_PROCESSING = dict(median=0.446, sigma=0.01)


@dataclass(frozen=True)
class StoreCalibration:
    """Per-backend op latencies + watch fan-out overhead."""

    ops: dict
    watch_overhead: float


#: Kubernetes-apiserver-class backend: etcd quorum writes, watch-cache
#: fan-out measured in the tens of milliseconds.
APISERVER = StoreCalibration(
    ops={
        "create": OpLatency(base=0.0045, per_byte=4e-9),
        "update": OpLatency(base=0.0045, per_byte=4e-9),
        "patch": OpLatency(base=0.0050, per_byte=4e-9),
        "delete": OpLatency(base=0.0045),
        "get": OpLatency(base=0.0012, per_byte=1e-9),
        "list": OpLatency(base=0.0025, per_byte=1e-9),
    },
    watch_overhead=0.0100,
)

#: Redis-class backend: in-memory ops, keyspace notifications.
MEMKV = StoreCalibration(
    ops={
        "create": OpLatency(base=0.00035, per_byte=1.5e-9),
        "update": OpLatency(base=0.00035, per_byte=1.5e-9),
        "patch": OpLatency(base=0.00040, per_byte=1.5e-9),
        "delete": OpLatency(base=0.00030),
        "get": OpLatency(base=0.00020, per_byte=0.5e-9),
        "list": OpLatency(base=0.00060, per_byte=0.5e-9),
        "command": OpLatency(base=0.00015),
        "fcall": OpLatency(base=0.00030),
    },
    watch_overhead=0.0003,
)

#: Cost of one pushed-down DXG evaluation per assignment (the paper's
#: K-redis-udf shows ~0.7 ms of in-store integrator execution).
UDF_COST_PER_ASSIGNMENT = 4.5e-5

#: RPC stack dispatch overhead (server-side, per call).
RPC_DISPATCH_OVERHEAD = 0.0009

# -- reconciler resilience defaults (see repro.core.reconciler) -----------
#
# Conflict/unavailable retries within one reconcile pass, the base backoff
# between them, the +/- fraction of seeded jitter applied to each backoff
# (desynchronizes retry storms under contention), and how many failed
# passes a key gets before it is dead-lettered.

RECONCILER_MAX_RETRIES = 5
RECONCILER_BACKOFF = 0.005
RECONCILER_BACKOFF_JITTER = 0.5
RECONCILER_MAX_REQUEUES = 3


def shipment_latency_model(seed=None):
    """The simulated FedEx-call service time distribution."""
    return LogNormalLatency(seed=seed, **SHIPMENT_PROCESSING)


def zero_calibration(base=None):
    """A :class:`StoreCalibration` with every infrastructure cost zeroed.

    The realtime backend paces the schedule on the wall clock, so
    simulated store-op costs and watch fan-out overhead would
    double-count real execution time.  The op-name surface of ``base``
    (default :data:`APISERVER`) is preserved so backends that validate
    op names (``command``/``fcall`` on MemKV) keep working.
    """
    base = base if base is not None else APISERVER
    return StoreCalibration(
        ops={name: OpLatency(base=0.0) for name in base.ops},
        watch_overhead=0.0,
    )
