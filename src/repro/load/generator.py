"""Open-loop load driving: :class:`TrafficClass` + :class:`LoadGenerator`.

The generator composes a scenario (an app adapter from
:mod:`repro.load.scenarios`) with one or more traffic classes.  Each
class gets its own pair of seeded streams -- one for the arrival
schedule, one for request content (keys, payload sizes) -- so adding a
class never perturbs another class's draws, and the same ``seed``
reproduces the exact offered load on either backend.

Arrivals are open loop: a request is launched at its scheduled instant
whether or not earlier requests have completed.  Outcomes are recorded
into the scenario's obs registry as ``request_latency_seconds`` (with
the request's causal trace id attached as an exemplar) and
``requests_total`` labeled by outcome, which is exactly the surface the
:mod:`repro.obs.slo` objectives evaluate.
"""

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, OverloadedError


@dataclass
class TrafficClass:
    """One composable slice of offered load.

    ``arrivals`` shapes *when* requests land; ``keys`` shapes *what* they
    touch (pass a :class:`~repro.load.sampling.ZipfKeys`, or None for
    scenarios that pick their own keys); ``service_times`` is an optional
    sampler the scenario may consult for request weight; ``principal``
    names the flow-plane identity the scenario should submit under.
    """

    name: str
    arrivals: object
    keys: object = None
    service_times: object = None
    principal: str = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("traffic class needs a name")


@dataclass
class _ClassTrace:
    """Everything one class did during a run (for determinism tests)."""

    arrival_times: list = field(default_factory=list)
    keys: list = field(default_factory=list)
    latencies: list = field(default_factory=list)
    outcomes: dict = field(default_factory=dict)
    trace_ids: list = field(default_factory=list)


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


@dataclass
class LoadResult:
    """Outcome of one :meth:`LoadGenerator.run`."""

    scenario: str
    seed: int
    duration: float
    started_at: float
    finished_at: float
    classes: dict = field(default_factory=dict)

    def offered(self, cls=None):
        """Requests launched (for one class, or total)."""
        if cls is not None:
            return len(self.classes[cls].arrival_times)
        return sum(len(t.arrival_times) for t in self.classes.values())

    def outcome_counts(self, cls=None):
        """``{outcome: count}`` for one class or summed across classes."""
        totals = {}
        for name, trace in self.classes.items():
            if cls is not None and name != cls:
                continue
            for outcome, count in trace.outcomes.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    def latencies(self, cls=None):
        if cls is not None:
            return list(self.classes[cls].latencies)
        merged = []
        for trace in self.classes.values():
            merged.extend(trace.latencies)
        return merged

    def percentile(self, q, cls=None):
        return _percentile(self.latencies(cls), q)

    def fingerprint(self):
        """A digest of the *offered* load: schedule + key sequence.

        Two runs with the same seed must produce the same fingerprint on
        any machine and either backend -- this is the determinism
        contract the load tests pin.
        """
        payload = {
            name: {
                "arrivals": [round(t, 9) for t in trace.arrival_times],
                "keys": trace.keys,
            }
            for name, trace in sorted(self.classes.items())
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def summary(self):
        counts = self.outcome_counts()
        total = sum(counts.values())
        window = self.finished_at - self.started_at
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration_s": self.duration,
            "offered": self.offered(),
            "completed": counts.get("ok", 0),
            "rejected": counts.get("rejected", 0),
            "failed": counts.get("failed", 0),
            "reject_rate": counts.get("rejected", 0) / total if total else 0.0,
            "throughput_rps": counts.get("ok", 0) / window if window else 0.0,
            "p50_s": self.percentile(0.50),
            "p99_s": self.percentile(0.99),
            "fingerprint": self.fingerprint(),
            "classes": {
                name: {
                    "offered": len(trace.arrival_times),
                    "outcomes": dict(trace.outcomes),
                    "p99_s": _percentile(trace.latencies, 0.99),
                }
                for name, trace in sorted(self.classes.items())
            },
        }


class LoadGenerator:
    """Drives one scenario with a set of traffic classes, open loop."""

    def __init__(self, scenario, classes, duration, seed=0):
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ConfigurationError("traffic class names must be unique")
        if not classes:
            raise ConfigurationError("need at least one traffic class")
        self.scenario = scenario
        self.classes = list(classes)
        self.duration = float(duration)
        self.seed = seed

    # Stream naming: one independent Random per (class, purpose), keyed
    # by a readable path.  Adding a class, or drawing more from one
    # stream, can never shift another stream's sequence.
    def _rng(self, cls, purpose):
        return random.Random(
            f"{self.seed}/{self.scenario.name}/{cls.name}/{purpose}"
        )

    def schedule(self, cls):
        """The class's full arrival schedule, without running anything."""
        return list(
            cls.arrivals.times(self._rng(cls, "arrivals"), self.duration)
        )

    def key_sequence(self, cls, count):
        """The first ``count`` keys the class would draw, without running."""
        if cls.keys is None:
            return [None] * count
        rng = self._rng(cls, "requests")
        return [cls.keys.sample(rng) for _ in range(count)]

    def run(self):
        env = self.scenario.env
        result = LoadResult(
            scenario=self.scenario.name,
            seed=self.seed,
            duration=self.duration,
            started_at=env.now,
            finished_at=env.now,
        )
        in_flight = []
        drivers = [
            env.process(self._drive(env, cls, result, in_flight))
            for cls in self.classes
        ]
        env.run(until=env.all_of(drivers))
        if in_flight:
            env.run(until=env.all_of(in_flight))
        quiesce = getattr(self.scenario, "quiesce", None)
        if quiesce is not None:
            quiesce()
        result.finished_at = env.now
        return result

    def _drive(self, env, cls, result, in_flight):
        trace = result.classes.setdefault(cls.name, _ClassTrace())
        arrival_rng = self._rng(cls, "arrivals")
        request_rng = self._rng(cls, "requests")
        start = env.now
        for when in cls.arrivals.times(arrival_rng, self.duration, start):
            delay = when - env.now
            if delay > 0:
                yield env.timeout(delay)
            key = cls.keys.sample(request_rng) if cls.keys is not None else None
            trace.arrival_times.append(when - start)
            trace.keys.append(key)
            in_flight.append(
                env.process(self._request(env, cls, key, request_rng, trace))
            )

    def _request(self, env, cls, key, rng, trace):
        registry = self.scenario.registry
        labels = {"scenario": self.scenario.name, "cls": cls.name}
        started = env.now
        trace_id = None
        try:
            submission = self.scenario.submit(cls, key, rng)
            if isinstance(submission, tuple):
                event, trace_id = submission
            else:
                event = submission
            if event is not None:
                yield event
        except OverloadedError:
            outcome = "rejected"
        except Exception:
            outcome = "failed"
        else:
            outcome = "ok"
            latency = env.now - started
            trace.latencies.append(latency)
            if registry is not None:
                registry.histogram(
                    "request_latency_seconds", **labels
                ).observe(latency, exemplar=trace_id)
        trace.outcomes[outcome] = trace.outcomes.get(outcome, 0) + 1
        trace.trace_ids.append(trace_id)
        if registry is not None:
            registry.counter(
                "requests_total", outcome=outcome, **labels
            ).inc()
