"""Load-scenario adapters: one uniform surface over every app.

A scenario owns a built app and answers the small protocol the
:class:`~repro.load.generator.LoadGenerator` drives:

- ``name`` / ``env`` / ``registry`` -- identity, clock, and the metric
  sink (the app's obs-plane registry when it has one, a standalone
  :class:`~repro.obs.registry.Registry` otherwise);
- ``submit(cls, key, rng)`` -- launch one request, returning the event
  to wait on plus the causal trace id (or ``None``);
- ``quiesce()`` -- drain in-flight work after the last arrival;
- ``slos()`` -- the scenario's default objectives, ready for
  :func:`repro.obs.slo.evaluate`.

Thresholds are per-scenario class attributes so a benchmark can
tighten or relax them without subclassing.
"""

import zlib

from repro.errors import ConfigurationError
from repro.obs.registry import Registry
from repro.obs.slo import AvailabilitySLO, FreshnessSLO, LatencySLO

_ITEM_CATALOG = [
    ("mesh-chair", 429.0),
    ("desk-mat", 19.0),
    ("usb-hub", 39.0),
    ("notebook", 9.5),
    ("monitor-arm", 129.0),
    ("keycap-set", 59.0),
    ("webcam", 89.0),
    ("floor-lamp", 74.0),
]

_CURRENCIES = ["USD", "EUR", "JPY"]


class LoadScenario:
    """Base adapter; subclasses build the app and implement ``submit``."""

    name = None
    #: Default objective knobs; subclasses override per app.
    latency_threshold_s = 0.25
    latency_percentile = 0.99
    availability_target = 0.995
    freshness_threshold_s = None

    def __init__(self):
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        self.env = None
        self.registry = None

    def _wire(self, env, runtime=None):
        """Adopt the app's clock and registry (standalone if no obs)."""
        self.env = env
        obs = getattr(runtime, "obs", None) if runtime is not None else None
        self.obs = obs
        self.registry = obs.registry if obs is not None else Registry(env)

    def submit(self, cls, key, rng):
        raise NotImplementedError

    def quiesce(self):
        pass

    def _labels(self):
        return {"scenario": self.name}

    def slos(self):
        specs = [
            LatencySLO(
                f"{self.name}-latency-p{self.latency_percentile * 100:g}",
                labels=self._labels(),
                percentile=self.latency_percentile,
                threshold_seconds=self.latency_threshold_s,
            ),
            AvailabilitySLO(
                f"{self.name}-availability",
                target=self.availability_target,
                total=[("requests_total", self._labels())],
                bad=[
                    ("requests_total",
                     {**self._labels(), "outcome": "rejected"}),
                    ("requests_total",
                     {**self._labels(), "outcome": "failed"}),
                ],
                exemplar_metric="request_latency_seconds",
                exemplar_labels=self._labels(),
            ),
        ]
        if self.freshness_threshold_s is not None:
            specs.append(
                FreshnessSLO(
                    f"{self.name}-freshness",
                    threshold_seconds=self.freshness_threshold_s,
                )
            )
        return specs


class RetailLoadScenario(LoadScenario):
    """Concurrent order placement against the retail Knactor app.

    The Zipf ``key`` selects the *product* (hot items dominate carts);
    order keys are sequential, since Checkout creates must be unique.
    """

    name = "retail"
    latency_threshold_s = 0.25
    freshness_threshold_s = 0.5

    def __init__(self, mode=None, flow=None, seed=7, **build_kwargs):
        super().__init__()
        from repro.apps.retail.knactor_app import RetailKnactorApp

        self.app = RetailKnactorApp.build(
            mode=mode, seed=seed, obs=True, flow=flow, **build_kwargs
        )
        self._orders = 0
        self._wire(self.app.env, self.app.runtime)

    def submit(self, cls, key, rng):
        self._orders += 1
        # Stable across processes (unlike hash()): determinism tests pin
        # the exact payload sequence per seed.
        index = (
            zlib.crc32(key.encode()) % len(_ITEM_CATALOG)
            if key is not None else 0
        )
        item, price = _ITEM_CATALOG[index]
        data = {
            "items": {item: {"name": item, "priceUSD": price}},
            "address": f"{rng.randint(1, 99)} Main St",
            "cost": price,
            "totalCost": price,
            "currency": rng.choice(_CURRENCIES),
            "status": "placed",
            "cardToken": f"tok-{rng.randint(10**6, 10**7 - 1)}",
        }
        event = self.app.place_order(f"order/load{self._orders:06d}", data)
        return event, self.app.last_trace_id

    def quiesce(self):
        self.app.run_until_quiet(max_seconds=120.0)


class SmartHomeLoadScenario(LoadScenario):
    """Motion readings pouring into the smart home's sensor pipeline.

    The Zipf ``key`` is the reporting device; each submission loads one
    reading into Motion's own Log store, which ``sensor-sync`` then
    ingests into the House.
    """

    name = "smarthome"
    latency_threshold_s = 0.1
    freshness_threshold_s = 0.5

    def __init__(self, mode=None, **build_kwargs):
        super().__init__()
        from repro.apps.smarthome.knactor_app import SmartHomeKnactorApp

        self.app = SmartHomeKnactorApp.build(
            mode=mode, obs=True, **build_kwargs
        )
        self._wire(self.app.env, self.app.runtime)
        self._motion_log = self.app.runtime.handle_of("motion", "log")

    def submit(self, cls, key, rng):
        from repro.obs.context import use

        record = {"triggered": rng.random() < 0.5, "device": key or "dev-0"}
        if self.obs is None:
            return self._motion_log.load([record]), None
        root = self.obs.causal.new_trace(
            "motion-reading", service="motion-sensor",
            baggage={"device": record["device"]}, key=record["device"],
        )
        with use(root):
            proc = self._motion_log.load([record])
        proc.callbacks.append(
            lambda _evt: self.obs.causal.end_span(root, outcome="ok")
        )
        return proc, root.trace_id

    def quiesce(self):
        env = self.env
        deadline = env.now + 60.0
        while env.peek() <= deadline:
            env.run(until=min(env.peek() + 0.5, deadline))


class SocialNetworkLoadScenario(LoadScenario):
    """Compose-post fan-out across the 14-service RPC social network.

    The RPC app has no data plane to trace through, which is the point:
    it is the scattered baseline the data-centric apps are measured
    against.  Latency lands in the standalone registry; trace exemplars
    are absent by construction.
    """

    name = "socialnetwork"
    latency_threshold_s = 0.25

    def __init__(self, mode=None, **build_kwargs):
        super().__init__()
        from repro.apps.socialnetwork.rpc_app import SocialNetworkRpcApp

        self.app = SocialNetworkRpcApp.build(mode=mode, **build_kwargs)
        self._posts = 0
        self._wire(self.app.env)

    def submit(self, cls, key, rng):
        self._posts += 1
        return self.app.compose_post(req_id=f"load-{self._posts:06d}"), None


class SensorFleetLoadScenario(LoadScenario):
    """The DataX-scale fleet: Zipf-hot devices reporting through Sync.

    ``key`` is the device id (draw from a
    :class:`~repro.load.sampling.ZipfKeys` sized to the fleet); the
    traffic class's ``principal`` rides on the load so admission control
    can tell device populations apart.
    """

    name = "sensorfleet"
    latency_threshold_s = 0.05
    freshness_threshold_s = 0.25

    def __init__(self, mode=None, devices=None, flow=None, **build_kwargs):
        super().__init__()
        from repro.load.sensorfleet import FLEET_DEVICES, SensorFleetApp

        self.app = SensorFleetApp.build(
            mode=mode,
            devices=devices if devices is not None else FLEET_DEVICES,
            flow=flow, **build_kwargs,
        )
        self._wire(self.app.env, self.app.runtime)

    def submit(self, cls, key, rng):
        return self.app.ingest(
            key or "device-000000",
            temp_c=round(15.0 + 15.0 * rng.random(), 2),
            battery=round(rng.random(), 3),
            principal=cls.principal,
        )

    def quiesce(self):
        self.app.run_until_quiet(max_seconds=120.0)
