"""The DataX-style sensor fleet: 10^5 devices feeding a Log exchange.

A deliberately simple two-knactor pipeline, scaled wide instead of deep:

- **gateway** hosts a Log store that the simulated device fleet loads
  raw readings into (``device``, ``temp_c``, ``battery``);
- **analytics** hosts a Log store fed by the ``fleet-sync`` Sync
  integrator, which renames ``temp_c`` to ``temperature`` and cuts the
  battery field on the way through -- the paper's data-centric
  composition, at fleet cardinality.

The fleet itself is *virtual*: devices exist only as the Zipf-skewed id
space the load generator draws from (hot devices report often, the long
tail rarely), so the scenario supports 10^5 devices without 10^5
processes.  An analytics watcher subscribes to the derived store, which
populates the ``watch_lag_seconds`` histogram the freshness SLO reads.
"""

from dataclasses import dataclass, field, replace

from repro.core import (
    Flow,
    Knactor,
    KnactorRuntime,
    Pipeline,
    StoreBinding,
    Sync,
    create_environment,
)
from repro import config
from repro.exchange import LogDE
from repro.faults import RetryPolicy
from repro.flow import INTEGRATOR, FlowConfig
from repro.obs.context import use
from repro.simnet import FixedLatency, Network, Tracer
from repro.store import LogLake

GATEWAY_LOG = """\
schema: SensorFleet/v1/Gateway/Readings
device: string
temp_c: number
battery: number
"""

ANALYTICS_LOG = """\
schema: SensorFleet/v1/Analytics/Readings
device: string # +kr: ingest
temperature: number # +kr: ingest
"""

#: Default fleet cardinality (the DataX scale point).
FLEET_DEVICES = 100_000


@dataclass
class SensorFleetApp:
    env: object
    runtime: KnactorRuntime
    log_de: LogDE
    fleet_sync: Sync
    devices: int
    tracer: Tracer = None
    flow: FlowConfig = None
    analytics_seen: list = field(default_factory=list)
    _watch: object = None
    _handles: dict = field(default_factory=dict)

    @classmethod
    def build(cls, env=None, mode=None, devices=FLEET_DEVICES, obs=True,
              flow=None, shape_latency=None):
        """``mode``/``shape_latency`` as in the other app builders; the
        fleet defaults to an attached obs plane because the SLO layer is
        its reason to exist.  ``flow`` (True or a FlowConfig) arms
        admission control on the lake so flash crowds shed instead of
        queueing without bound."""
        if env is None:
            env = create_environment(mode if mode is not None else "sim")
        if shape_latency is None:
            shape_latency = getattr(env, "backend", "sim") == "sim"
        hop = config.NETWORK_HOP if shape_latency else FixedLatency(0.0)
        network = Network(env, default_latency=hop)
        tracer = Tracer(env)
        runtime = KnactorRuntime(
            env, network=network, tracer=tracer, obs=obs, mode=mode
        )
        lake = LogLake(
            env, network, location="fleet-lake", tracer=tracer,
            watch_overhead=0.0003 if shape_latency else 0.0,
        )
        flow_cfg = None
        if flow:
            flow_cfg = flow if isinstance(flow, FlowConfig) else FlowConfig()
            # The Sync's own loads outrank device traffic at the front
            # door -- shedding the integrator would stall the derived
            # store, not protect it.  Explicit overrides win.
            principals = {"fleet-sync": INTEGRATOR}
            principals.update(flow_cfg.principals)
            flow_cfg = replace(flow_cfg, principals=principals)
            lake.admission = flow_cfg.build_admission(env)
        # The DE-level policy backs the Sync and analytics handles: an
        # integrator shed during a flash crowd must back off and drain
        # the backlog, not crash the pipeline.  Device handles opt out
        # (max_attempts=1 below) so *their* rejections stay visible to
        # the availability SLO.
        log_de = LogDE(env, lake, retry_policy=RetryPolicy(
            max_attempts=12, base_backoff=0.02, max_backoff=1.0,
        ))
        runtime.add_exchange("log", log_de)

        runtime.add_knactor(
            Knactor("gateway", [StoreBinding("log", "log", GATEWAY_LOG)])
        )
        runtime.add_knactor(
            Knactor("analytics", [StoreBinding("log", "log", ANALYTICS_LOG)])
        )

        log_de.grant("fleet-sync", "knactor-gateway-log", role="reader")
        log_de.grant("fleet-sync", "knactor-analytics-log", role="integrator")
        fleet_sync = Sync(
            "fleet-sync",
            flows=[
                Flow(
                    source="knactor-gateway-log",
                    target="knactor-analytics-log",
                    pipeline=Pipeline()
                    .rename("temp_c", "temperature")
                    .cut("device", "temperature"),
                )
            ],
        )
        runtime.add_integrator(fleet_sync)
        runtime.start()

        app = cls(
            env=env, runtime=runtime, log_de=log_de, fleet_sync=fleet_sync,
            devices=devices, tracer=tracer, flow=flow_cfg,
        )
        # The analytics consumer: its watch stream is what gives the
        # freshness SLO a watch-lag histogram to read.
        log_de.grant("fleet-analytics", "knactor-analytics-log", role="reader")
        analytics = log_de.handle(
            "knactor-analytics-log", principal="fleet-analytics",
        )
        app._watch = analytics.watch(
            lambda event: app.analytics_seen.extend(
                record.get("device")
                for record in (event.object or {}).get("records", ())
            )
        )
        return app

    # -- driving ------------------------------------------------------------

    def gateway_handle(self, principal=None):
        """A load handle on the gateway store for ``principal``.

        Each distinct principal gets a one-time grant and a cached
        handle, so traffic classes are distinguishable to admission
        control.  ``None`` uses the store owner's handle.
        """
        if principal is None:
            return self.runtime.handle_of("gateway", "log")
        handle = self._handles.get(principal)
        if handle is None:
            self.log_de.grant(
                principal, "knactor-gateway-log",
                verbs={"load"}, note="fleet device gateway",
            )
            handle = self.log_de.handle(
                "knactor-gateway-log", principal=principal,
                retry_policy=RetryPolicy(max_attempts=1),
            )
            self._handles[principal] = handle
        return handle

    def ingest(self, device, temp_c, battery=1.0, principal=None):
        """One device reading; returns ``(event, trace_id)``.

        With the obs plane attached the reading opens a root causal
        trace (baggage: the device id), which the Sync exchange and the
        analytics watch extend -- the exemplar chain the SLO report
        links to.
        """
        handle = self.gateway_handle(principal)
        record = {"device": device, "temp_c": temp_c, "battery": battery}
        obs = self.runtime.obs
        if obs is None:
            return handle.load([record]), None
        root = obs.causal.new_trace(
            "ingest-reading", service="device-fleet",
            baggage={"device": device}, key=device,
        )
        with use(root):
            proc = handle.load([record])
        proc.callbacks.append(
            lambda _evt: obs.causal.end_span(root, outcome="ok")
        )
        return proc, root.trace_id

    def analytics_report(self):
        """Fleet-wide aggregate over the derived analytics store."""
        handle = self.runtime.handle_of("analytics", "log")
        return handle.query(
            ops=[{"op": "agg", "aggs": {"readings": "count()",
                                        "mean_temp": "avg(temperature)"}}]
        )

    def run_until_quiet(self, max_seconds=120.0, settle=0.5):
        deadline = self.env.now + max_seconds
        while self.env.peek() <= deadline:
            horizon = min(self.env.peek() + settle, deadline)
            self.env.run(until=horizon)
        return self.env.now
