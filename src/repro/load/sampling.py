"""Key-popularity and service-time distributions for the load fleet.

Real access patterns are skewed: a handful of hot keys absorb most of
the traffic (Zipf), and a handful of slow requests dominate the latency
tail (bounded Pareto).  Both samplers here are driven purely by the
``random.Random`` the caller passes in, so a seeded run reproduces the
exact key sequence and service-time draw order.
"""

import bisect

from repro.errors import ConfigurationError


class ZipfKeys:
    """Zipf-distributed draws over a fixed key population.

    Key ``i`` (rank ``i + 1``) has weight ``1 / (i + 1) ** alpha``.
    Sampling inverts the cumulative weight table with ``bisect`` --
    O(log n) per draw, fine up to the 10^5-device fleets the sensor
    scenario uses.  ``alpha=0`` degenerates to uniform.
    """

    def __init__(self, population, alpha=1.1, key_format="key-{:06d}"):
        if population <= 0:
            raise ConfigurationError("population must be positive")
        if alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        self.population = population
        self.alpha = alpha
        self.key_format = key_format
        self._cumulative = []
        total = 0.0
        for rank in range(1, population + 1):
            total += rank ** -alpha
            self._cumulative.append(total)

    def sample_index(self, rng):
        """Draw one key index (0-based rank order: 0 is the hottest)."""
        target = rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, target)

    def sample(self, rng):
        """Draw one key name."""
        return self.key_format.format(self.sample_index(rng))


class HeavyTailedServiceTimes:
    """Bounded-Pareto service times: most fast, a heavy slow tail.

    Inverse-CDF sampling of a Pareto truncated to
    ``[minimum, maximum]`` with tail index ``alpha``.  ``alpha`` near 1
    gives a very heavy tail; larger values concentrate near the minimum.
    """

    def __init__(self, minimum, maximum, alpha=1.5):
        if not 0 < minimum < maximum:
            raise ConfigurationError("need 0 < minimum < maximum")
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.minimum = minimum
        self.maximum = maximum
        self.alpha = alpha
        self._ratio = (minimum / maximum) ** alpha

    def sample(self, rng):
        u = rng.random()
        denom = 1.0 - u * (1.0 - self._ratio)
        return self.minimum / denom ** (1.0 / self.alpha)

    def mean(self):
        """Analytic mean of the bounded Pareto (for sizing runs)."""
        a, lo, hi = self.alpha, self.minimum, self.maximum
        if a == 1.0:
            import math

            return math.log(hi / lo) * lo / (1.0 - lo / hi)
        return (
            lo ** a / (1.0 - (lo / hi) ** a)
            * (a / (a - 1.0))
            * (lo ** (1.0 - a) - hi ** (1.0 - a))
        )


class ServiceTimeMix:
    """A weighted mixture of service-time components.

    ``components`` is a list of ``(weight, sampler)`` pairs where each
    sampler answers ``sample(rng)`` -- mix a fast bounded-Pareto bulk
    with a rare slow component to model cache miss / cold path splits.
    """

    def __init__(self, components):
        if not components:
            raise ConfigurationError("mix needs at least one component")
        self.components = list(components)
        self._cumulative = []
        total = 0.0
        for weight, _ in self.components:
            if weight <= 0:
                raise ConfigurationError("weights must be positive")
            total += weight
            self._cumulative.append(total)

    def sample(self, rng):
        target = rng.random() * self._cumulative[-1]
        index = bisect.bisect_left(self._cumulative, target)
        return self.components[index][1].sample(rng)
