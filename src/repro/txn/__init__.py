"""Cross-shard transactional plane: deterministic 2PC, sagas, and
exactly-once transactional functions.  See ``docs/transactions.md``.
"""

from repro.txn.coordinator import PHASES, TxnCoordinator
from repro.txn.functions import TxnFunctionIntegrator

__all__ = [
    "PHASES",
    "TxnCoordinator",
    "TxnFunctionIntegrator",
]
