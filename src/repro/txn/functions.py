"""Integrators as in-store transactional functions (Apiary-style).

The paper's push-down optimization moves integrator logic into the data
store to erase per-access round trips; Apiary goes further and makes the
pushed-down function *transactional*.  This module composes the two:
a :class:`TxnFunctionIntegrator` registers its reconcile step as a UDF on
the backing store and drives it from a watch, but every invocation runs
through ``op_fcall_txn`` -- reads record their versions, writes buffer,
and the whole read-modify-write commits as ONE atomic batch (or re-runs
on conflict).  Each invocation carries an idempotence key derived from
the triggering event (``name:key:revision``), so retries, DLQ replays,
and crash-recovery re-deliveries of the same event are exactly-once.
"""

from repro.errors import ConfigurationError, StoreError
from repro.core.integrator import Integrator
from repro.store.base import DELETED


class TxnFunctionIntegrator(Integrator):
    """A level-triggered integrator whose reconcile step is a store txn.

    ``fn(ctx, key)`` receives a
    :class:`~repro.store.udf.TxnUDFContext` and the key of the object
    that changed; whatever it reads and writes through ``ctx`` commits
    atomically when it returns.  The function must be level-triggered
    (derive everything from current state): a re-run after a conflict or
    a replay after a crash sees fresh state and must converge.
    """

    def __init__(self, name, client, fn, key_prefix="", cost=0.0002):
        super().__init__(name)
        server = client.server
        if getattr(server, "functions", None) is None:
            raise ConfigurationError(
                f"store {server.location!r} does not support server-side "
                "functions (use the MemKV backend)"
            )
        if not callable(getattr(client, "fcall_txn", None)):
            raise ConfigurationError(
                f"client for {server.location!r} has no fcall_txn surface"
            )
        self.client = client
        self.fn = fn
        self.key_prefix = key_prefix
        self.cost = cost
        self._watch = None
        self.invocations = 0
        self.commits = 0
        self.failures = []  # (key, exception) -- conflicts that stuck, etc.

    @property
    def env(self):
        return self.client.env

    def bind(self, runtime=None):
        """Attach; standalone use (no runtime) binds to the store client."""
        return super().bind(runtime if runtime is not None else self.client)

    # -- Integrator hooks ----------------------------------------------------

    def _on_bind(self):
        self.client.server.functions.register(self.name, self.fn,
                                              cost=self.cost)

    def _on_start(self):
        self._watch = self.client.watch(
            self._on_event, key_prefix=self.key_prefix,
            on_close=self._on_watch_close,
        )

    def _on_stop(self):
        if self._watch is not None:
            self._watch.cancel()
            self._watch = None

    def _apply_configuration(self, fn=None, cost=None):
        """Swap the pushed-down function at run time (no redeploys)."""
        if fn is not None:
            self.fn = fn
        if cost is not None:
            self.cost = cost
        self.client.server.functions.register(self.name, self.fn,
                                              cost=self.cost)
        return f"function {self.name} swapped"

    # -- the reconcile drive -------------------------------------------------

    def _on_watch_close(self):
        if self.started:
            self._on_start()  # re-watch: level-triggered, nothing is lost

    def _on_event(self, event):
        if event.type == DELETED:
            return
        idem = f"{self.name}:{event.key}:{event.revision}"
        self.env.process(self._invoke(event.key, idem))

    def _invoke(self, key, idempotence_key):
        self.invocations += 1
        try:
            yield self.client.fcall_txn(
                self.name, key, idempotence_key=idempotence_key
            )
            self.commits += 1
        except StoreError as exc:
            self.failures.append((key, exc))

    def status(self):
        base = super().status()
        base.update(
            invocations=self.invocations,
            commits=self.commits,
            failures=len(self.failures),
        )
        return base
