"""The cross-shard transaction coordinator: deterministic 2PC + sagas.

A :class:`ShardedStore` has no global commit order -- each shard is its
own server with its own revision counter -- so a batch whose keys span
shards needs a protocol, not a lie.  :class:`TxnCoordinator` offers two:

**Two-phase commit** (``mode="2pc"``): every participant shard validates
and *prepares* the sub-batch it owns (locking the keys and -- on the
durable backend -- persisting a WAL marker), then the coordinator appends
a commit decision to its own durable log and drives each participant's
commit.  The decision append is the commit point: a coordinator killed
before it recovers by presumed abort; killed after, by re-driving the
(idempotent) participant commits.  Atomic, but in-doubt participants
block conflicting writers until a decision lands -- the classic 2PC
availability trade.

**Saga** (``mode="saga"``): per-shard sub-batches commit eagerly, one
shard at a time, and a failure (or coordinator crash) rolls the applied
shards back with *compensating* transactions derived from pre-images (or
registered per-action compensators).  No locks held across shards, so no
blocking -- but intermediate states are visible and "atomicity" means
*eventually all-or-nothing*, the saga literature's usual contract.

**Exactly-once**: callers tag a transaction with an ``idempotence_key``.
The first submission owns the key; duplicates -- client retries after a
lost reply, DLQ replays, crash-recovery re-submissions -- either wait for
the in-flight original or return its recorded outcome without touching
any shard.  A key whose transaction *aborted* (zero effects) is released,
so a retry can run fresh.

Determinism: shard groups are visited in sorted order, txn ids come from
a counter, retry jitter comes from a seeded RNG, and phase-targeted kills
(:meth:`arm_phase_kill`, used by ``FaultPlan.kill_during_txn``) trigger
at protocol points rather than at wall-clock times -- the same seed
replays the same interleaving, including the chaos.
"""

import random

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    NotFoundError,
    ShardMovedError,
    StoreError,
    UnavailableError,
)
from repro.obs.context import current_context
from repro.simnet import Interrupt

#: How long a duplicate submission polls an in-flight original before
#: giving up retryably (virtual seconds).
_WAIT_TIMEOUT = 5.0
_WAIT_TICK = 0.002

#: Phases a chaos plan can target with an armed kill.
PHASES = ("prepare", "commit", "abort", "compensate")


class _Killed(Exception):
    """Internal: an armed phase kill fired inside this coordination."""


def _default_compensation(op, pre_image):
    """The derived inverse of one applied op, from its pre-image view.

    create -> delete; delete -> re-create the old data; update/patch ->
    restore the old data.  ``pre_image`` is the object view captured
    *before* the saga step applied (None when the key did not exist).
    """
    action = op["action"]
    key = op["key"]
    if action == "create":
        return {"action": "delete", "key": key}
    if pre_image is None:
        # update/patch/delete of a key that did not pre-exist can only
        # have been create-then-X within the same sub-batch: delete it.
        return {"action": "delete", "key": key}
    if action == "delete":
        return {"action": "create", "key": key, "data": pre_image["data"]}
    return {"action": "update", "key": key, "data": pre_image["data"]}


class TxnCoordinator:
    """Cross-shard transactions over one :class:`ShardedStore`.

    The coordinator is a killable *process* (register it with a
    :class:`~repro.faults.FaultInjector` to chaos-test it): ``kill()``
    loses every in-flight coordination but keeps the decision log and
    idempotence table (its "disk"); ``restart()`` runs recovery, which
    re-drives decided commits, presumed-aborts undecided prepares, and
    compensates unfinished sagas -- draining every participant's
    in-doubt set.
    """

    def __init__(self, store, location=None, tracer=None, seed=0,
                 max_attempts=200):
        self.store = store
        self.env = store.env
        self.location = location or f"{store.name}-txncoord"
        self.tracer = tracer
        self.max_attempts = max_attempts
        self._rng = random.Random(seed)
        # Per-shard clients, minted on demand: the shard set is live
        # (resharding adds and retires members), so clients key off the
        # shard server, not a positional index.
        self._clients = {}
        self.ring_regroups = 0  # prepare rounds restarted by a ring flip
        # -- durable state (the coordinator's "disk"): survives kill() --
        self._log = {}  # txn_id -> record dict
        self._order = []  # txn ids in admission order
        self._idem = {}  # idempotence_key -> txn_id
        self._seq = 0
        # -- volatile state: lost on kill() --
        self._inflight = {}  # txn_id -> simnet process
        self.alive = True
        self._phase_kill = None  # (phase, restart_after) or None
        # -- registered compensations (saga mode) --
        self._compensations = {}  # action -> fn(op, pre_image) -> op | None
        # -- counters (scraped by the obs plane) --
        self.prepared_total = 0
        self.committed_total = 0
        self.aborted_total = 0
        self.compensations_total = 0
        self.idempotent_replays = 0
        self.unknown_participants = 0
        self.kill_count = 0
        self.recoveries = 0

    # -- public surface ------------------------------------------------------

    def txn(self, ops, mode="2pc", idempotence_key=None):
        """Run ``ops`` atomically across shards; returns a simnet process.

        The caller's ambient trace context is captured synchronously, so
        the transaction's span tree chains onto the request that issued
        it.  Raises through the process event:
        :class:`~repro.errors.UnavailableError` (retryable -- coordinator
        down or killed mid-flight; retry with the same
        ``idempotence_key`` for exactly-once), or the participant's
        validation error on abort.
        """
        if mode not in ("2pc", "saga"):
            raise ConfigurationError(
                f"unknown txn mode {mode!r} (use '2pc' or 'saga')"
            )
        parent = current_context()
        return self.env.process(self._submit(ops, mode, idempotence_key,
                                             parent))

    def register_compensation(self, action, fn):
        """Override the derived saga inverse for one op ``action``.

        ``fn(op, pre_image) -> compensation op dict | None`` (None: no
        compensation needed for this op).
        """
        if action not in ("create", "update", "patch", "delete"):
            raise ConfigurationError(f"unknown txn action {action!r}")
        if not callable(fn):
            raise ConfigurationError("compensation must be callable")
        self._compensations[action] = fn

    def txn_stats(self):
        return {
            "prepared": self.prepared_total,
            "committed": self.committed_total,
            "aborted": self.aborted_total,
            "compensations": self.compensations_total,
            "idempotent_replays": self.idempotent_replays,
            "unknown_participants": self.unknown_participants,
            "recoveries": self.recoveries,
            "in_flight": len(self._inflight),
        }

    @property
    def decision_log_length(self):
        return len(self._log)

    def outcome(self, txn_id):
        record = self._log.get(txn_id)
        return record["state"] if record else None

    # -- process fault surface (repro.faults) --------------------------------

    def kill(self):
        """Crash the coordinator: in-flight coordinations die mid-phase.

        Callers see a retryable :class:`~repro.errors.UnavailableError`;
        participants are left prepared (in-doubt) or half-applied (saga)
        until :meth:`restart` runs recovery.  The decision log and
        idempotence table survive -- they are the protocol's disk.
        """
        if not self.alive:
            return
        self.alive = False
        self.kill_count += 1
        self._phase_kill = None
        inflight, self._inflight = self._inflight, {}
        for proc in inflight.values():
            if proc.is_alive and proc is not self.env.active_process:
                self._orphan_target(proc)
                proc.interrupt("txn coordinator killed")

    def restart(self):
        """Recover after :meth:`kill`: resolve every undecided record."""
        if self.alive:
            return
        self.alive = True
        self.env.process(self._recover())

    def arm_phase_kill(self, phase, restart_after=None):
        """Kill the coordinator when the NEXT coordination enters ``phase``.

        Deterministic chaos: instead of racing a timer against the
        protocol, the kill lands exactly at the phase boundary --
        ``"commit"`` means "immediately after the durable commit
        decision, before any participant commit lands", the classic
        in-doubt window.  With ``restart_after`` the coordinator
        schedules its own restart; a :class:`~repro.faults.FaultInjector`
        passes None and restarts it at the fault window's end instead.
        """
        if phase not in PHASES:
            raise ConfigurationError(
                f"unknown txn phase {phase!r} (use one of {PHASES})"
            )
        self._phase_kill = (phase, restart_after)

    def disarm_phase_kill(self):
        self._phase_kill = None

    def _maybe_phase_kill(self, phase):
        armed = self._phase_kill
        if armed is None or armed[0] != phase or not self.alive:
            return
        self._phase_kill = None
        restart_after = armed[1]
        # Kill every OTHER in-flight coordination; this one dies by
        # raising (interrupting the currently-running process from
        # inside itself is not a thing).
        self.alive = False
        self.kill_count += 1
        inflight, self._inflight = self._inflight, {}
        for proc in inflight.values():
            # Every OTHER coordination gets interrupted at its current
            # yield; we (the active process) die by raising below.
            if proc.is_alive and proc is not self.env.active_process:
                self._orphan_target(proc)
                proc.interrupt("txn coordinator killed")
        if restart_after is not None:
            timer = self.env.timeout(restart_after)
            timer.callbacks.append(lambda _evt: self.restart())
        raise _Killed(phase)

    @staticmethod
    def _orphan_target(proc):
        """Abandon whatever participant call ``proc`` is waiting on.

        The interrupted coordination will never collect the reply; if
        the abandoned request later fails (NotFound on a pre-image get,
        a conflict...), that answer must evaporate with its asker, not
        crash the event loop as an unhandled failure.
        """
        target = proc.target
        if target is not None:
            target._defused = True

    # -- submission / idempotence --------------------------------------------

    def _submit(self, ops, mode, idempotence_key, parent):
        if not self.alive:
            raise UnavailableError("txn coordinator is down")
        if idempotence_key is not None:
            known = self._idem.get(idempotence_key)
            if known is not None:
                result = yield from self._await_duplicate(known)
                if result is not _RETRY_FRESH:
                    return result
                # Prior owner aborted with zero effects: run fresh.
        txn_id = self._next_txn_id()
        record = {
            "id": txn_id,
            "mode": mode,
            "ops": [dict(op) for op in ops],
            "state": "preparing" if mode == "2pc" else "saga",
            "views": None,
            "error": None,
            "idempotence_key": idempotence_key,
            "pre_images": {},  # saga: object key -> pre-image view | None
            "applied": [],  # saga: ring members applied, in order
        }
        self._log[txn_id] = record
        self._order.append(txn_id)
        if idempotence_key is not None:
            self._idem[idempotence_key] = txn_id
        result = yield from self._coordinate(txn_id, record, parent)
        return result

    def _await_duplicate(self, txn_id):
        """Second submission under a taken idempotence key.

        Waits out an in-flight original, then maps the terminal state:
        committed -> its recorded views (exactly-once: nothing re-runs);
        aborted/compensated -> ``_RETRY_FRESH`` (zero effects happened,
        the key is released and the duplicate may run as a new txn).
        """
        record = self._log[txn_id]
        waited = 0.0
        while record["state"] in ("preparing", "commit", "saga",
                                  "aborting", "compensating"):
            if waited >= _WAIT_TIMEOUT:
                raise UnavailableError(
                    f"transaction {txn_id} is still undecided; retry"
                )
            yield self.env.timeout(_WAIT_TICK)
            waited += _WAIT_TICK
        if record["state"] == "committed":
            self.idempotent_replays += 1
            return record["views"]
        return _RETRY_FRESH

    def _next_txn_id(self):
        self._seq += 1
        return f"txn-{self._seq:06d}"

    # -- the coordination process --------------------------------------------

    def _coordinate(self, txn_id, record, parent):
        self._inflight[txn_id] = self.env.active_process
        ctx = self._start_span("txn", parent, txn=txn_id,
                               mode=record["mode"])
        try:
            if record["mode"] == "2pc":
                views = yield from self._run_2pc(txn_id, record, ctx)
            else:
                views = yield from self._run_saga(txn_id, record, ctx)
        except Interrupt:
            self._end_span(ctx, outcome="killed")
            raise UnavailableError(
                f"txn coordinator killed while coordinating {txn_id}; "
                "retry with the same idempotence key"
            ) from None
        except _Killed as killed:
            self._end_span(ctx, outcome=f"killed-at-{killed.args[0]}")
            raise UnavailableError(
                f"txn coordinator killed at {killed.args[0]} of {txn_id}; "
                "retry with the same idempotence key"
            ) from None
        except StoreError as exc:
            record["error"] = exc
            self._end_span(ctx, outcome=type(exc).__name__)
            raise
        finally:
            self._inflight.pop(txn_id, None)
        self._end_span(ctx, outcome="ok")
        return views

    def _groups(self, ops):
        """Deterministic shard grouping: sorted ring member -> sub-batch.

        Groups key off stable ring member ids (the live ring's ownership
        at call time), not positional indices -- a reshard between
        grouping and recovery still resolves the same participants.
        """
        ring = self.store.ring
        groups = {}
        for op in ops:
            member = ring.owner_of(str(op.get("key") or ""))
            groups.setdefault(member, []).append(op)
        return [(member, groups[member]) for member in sorted(groups)]

    def _client_for_shard(self, member, sub=None):
        """Typed client for ring ``member``; falls back to the current
        owner of the sub-batch's first key when the member has retired
        (its prepared state, if any, answers ``"unknown"`` harmlessly).
        """
        from repro.store.sharded import _shard_client

        store = self.store
        if member in store.shard_ids:
            shard = store.shard_by_id(member)
        else:
            key = str(sub[0].get("key") or "") if sub else ""
            shard = store.shard_for(key)
        client = self._clients.get(shard)
        if client is None:
            client = self._clients[shard] = _shard_client(
                shard, self.location
            )
        return client

    # -- 2PC -----------------------------------------------------------------

    #: Prepare rounds a 2PC retries when the ring flips under it before
    #: surfacing a retryable error.  Two covers one full reshard step.
    RING_REGROUP_ATTEMPTS = 8

    def _run_2pc(self, txn_id, record, ctx):
        # Ring-version fencing: the shard grouping is only valid at the
        # ring version it was computed against.  A prepare that lands on
        # a sealed range (ShardMovedError) means the batch raced a
        # reshard cutover -- undo this round's prepares under the
        # round-scoped wire id, re-group against the live ring, and try
        # again with a fresh wire id (participants have already recorded
        # a terminal "aborted" outcome for the old one).
        for regroup in range(self.RING_REGROUP_ATTEMPTS):
            record["wire_id"] = txn_id if regroup == 0 else (
                f"{txn_id}.r{regroup}"
            )
            record["ring_version"] = self.store.ring.version
            groups = self._groups(record["ops"])
            record["groups"] = groups  # durable: recovery re-targets these
            # Phase 1: prepare every participant, in shard order.
            self._maybe_phase_kill("prepare")
            span = self._start_span("txn-prepare", ctx, txn=txn_id,
                                    participants=len(groups),
                                    ring_version=record["ring_version"])
            try:
                for member, sub in groups:
                    yield from self._call(
                        lambda: self._client_for_shard(member, sub)
                        .txn_prepare(record["wire_id"], sub)
                    )
            except ShardMovedError:
                self._end_span(span, outcome="ring-moved")
                self.ring_regroups += 1
                yield from self._drive_aborts(txn_id, record, groups, ctx,
                                              terminal=False)
                # Growing backoff: later rounds must outlast a full
                # cutover seal window (drain + reconcile), not just the
                # instant of the flip.
                yield self.env.timeout(0.01 * (regroup + 1))
                continue
            except (UnavailableError, DeadlineExceededError):
                # Could not reach a participant at all: presumed abort.
                self._end_span(span, outcome="unreachable")
                yield from self._drive_aborts(txn_id, record, groups, ctx)
                raise
            except StoreError as exc:
                # Validation failed on some shard: abort the others.
                self._end_span(span, outcome=type(exc).__name__)
                yield from self._drive_aborts(txn_id, record, groups, ctx)
                raise
            self._end_span(span, outcome="ok")
            self.prepared_total += len(groups)
            # The commit point: one durable append to the decision log.
            record["state"] = "commit"
            if ctx is not None:
                ctx.sink.annotate(ctx, "decision", decision="commit")
            self._maybe_phase_kill("commit")
            # Phase 2: drive every participant commit (idempotent;
            # retried through unavailability until it lands).
            views = yield from self._drive_commits(txn_id, record, groups,
                                                   ctx)
            return views
        # The ring kept moving for longer than any single reshard step
        # can take: give up retryably with nothing applied.
        yield from self._drive_aborts(txn_id, record,
                                      self._groups(record["ops"]), ctx)
        raise UnavailableError(
            f"txn {txn_id}: ring membership kept changing during prepare "
            f"({self.RING_REGROUP_ATTEMPTS} rounds); retry"
        )

    def _drive_commits(self, txn_id, record, groups, ctx):
        span = self._start_span("txn-commit", ctx, txn=txn_id)
        wire_id = record.get("wire_id") or txn_id
        views = []
        for member, sub in groups:
            reply = yield from self._call(
                lambda: self._client_for_shard(member, sub)
                .txn_commit(wire_id)
            )
            if reply["state"] == "unknown":
                # The participant lost its prepared state (non-durable
                # backend crash): its keyspace is gone wholesale, so
                # atomicity is vacuously preserved.  Count it -- chaos
                # runs assert this only happens to memkv shards.
                self.unknown_participants += 1
            if reply.get("views"):
                views.extend(reply["views"])
        record["state"] = "committed"
        record["views"] = views
        self.committed_total += 1
        self._end_span(span, outcome="ok")
        return views

    def _drive_aborts(self, txn_id, record, groups, ctx, terminal=True):
        """Abort ``groups``; ``terminal=False`` is the ring-regroup
        path, which clears this round's prepares without recording a
        transaction-level abort (a fresh round follows)."""
        record["state"] = "aborting"
        self._maybe_phase_kill("abort")
        span = self._start_span("txn-abort", ctx, txn=txn_id)
        wire_id = record.get("wire_id") or txn_id
        for member, sub in groups:
            yield from self._call(
                lambda: self._client_for_shard(member, sub)
                .txn_abort(wire_id)
            )
        if terminal:
            record["state"] = "aborted"
            self.aborted_total += 1
            self._release_idem(record)
        else:
            record["state"] = "preparing"
        self._end_span(span, outcome="ok")

    # -- saga ----------------------------------------------------------------

    def _run_saga(self, txn_id, record, ctx):
        groups = self._groups(record["ops"])
        record["groups"] = groups  # durable: compensation re-targets these
        record["ring_version"] = self.store.ring.version
        views = []
        try:
            for member, sub in groups:
                # Capture pre-images first: compensation must know what
                # to restore, and must know it durably (the record is
                # the coordinator's disk) before the step applies.
                # Keyed by object key, not participant: the compensating
                # write routes to whoever owns the key at rollback time.
                for op in sub:
                    key = op["key"]
                    if key in record["pre_images"]:
                        continue
                    try:
                        view = yield from self._call(
                            lambda: self._client_for_shard(member, sub)
                            .get(key)
                        )
                        record["pre_images"][key] = view
                    except NotFoundError:
                        record["pre_images"][key] = None
                # Each step is a single-shard mini-2PC: prepare+commit
                # gives the participant a durable, idempotent outcome,
                # so a replayed step never double-applies.
                step_id = f"{txn_id}.s{member}"
                self._maybe_phase_kill("prepare")
                yield from self._call(
                    lambda: self._client_for_shard(member, sub)
                    .txn_prepare(step_id, sub)
                )
                self._maybe_phase_kill("commit")
                reply = yield from self._call(
                    lambda: self._client_for_shard(member, sub)
                    .txn_commit(step_id)
                )
                record["applied"].append(member)
                if ctx is not None:
                    ctx.sink.annotate(ctx, "saga-step", shard=member)
                if reply.get("views"):
                    views.extend(reply["views"])
        except ShardMovedError:
            # The ring flipped mid-saga: roll back what applied and
            # surface retryably -- the retry re-groups on the live ring.
            self.ring_regroups += 1
            yield from self._compensate(txn_id, record, ctx)
            raise UnavailableError(
                f"txn {txn_id}: ring membership changed during saga; "
                "retry with the same idempotence key"
            ) from None
        except (UnavailableError, DeadlineExceededError):
            yield from self._compensate(txn_id, record, ctx)
            raise
        except StoreError:
            yield from self._compensate(txn_id, record, ctx)
            raise
        record["state"] = "committed"
        record["views"] = views
        self.committed_total += 1
        return views

    def _compensate(self, txn_id, record, ctx):
        """Roll back every applied saga step, newest first."""
        record["state"] = "compensating"
        self._maybe_phase_kill("compensate")
        span = self._start_span("txn-compensate", ctx, txn=txn_id,
                                steps=len(record["applied"]))
        # Roll back against the grouping the saga ACTUALLY ran with (it
        # is durable in the record): recomputing from the live ring
        # would mis-target participants if a reshard landed in between.
        groups = dict(record.get("groups") or self._groups(record["ops"]))
        # A step prepared but never committed (killed between the two)
        # is in-doubt on its shard: abort it so the locks drain.  No-op
        # ("unknown") on shards the saga never reached.  One twist: the
        # participant may have COMMITTED the step but the coordinator
        # died before the reply landed -- the abort then answers
        # "committed", and the step must join the rollback set.
        for member in sorted(groups):
            if member not in record["applied"]:
                reply = yield from self._call(
                    lambda: self._client_for_shard(member, groups[member])
                    .txn_abort(f"{txn_id}.s{member}")
                )
                if reply["state"] == "committed":
                    record["applied"].append(member)
        for member in reversed(record["applied"]):
            sub = groups[member]
            comp_ops = []
            for op in reversed(sub):
                fn = self._compensations.get(op["action"],
                                             _default_compensation)
                inverse = fn(op, record["pre_images"].get(op["key"]))
                if inverse is not None:
                    comp_ops.append(inverse)
            if not comp_ops:
                continue
            # Compensations are themselves mini-2PC steps: idempotent
            # under recovery replay.
            comp_id = f"{txn_id}.c{member}"
            yield from self._call(
                lambda: self._client_for_shard(member, sub)
                .txn_prepare(comp_id, comp_ops)
            )
            yield from self._call(
                lambda: self._client_for_shard(member, sub)
                .txn_commit(comp_id)
            )
            self.compensations_total += 1
        record["state"] = "compensated"
        self.aborted_total += 1
        self._release_idem(record)
        self._end_span(span, outcome="ok")

    # -- recovery ------------------------------------------------------------

    def _recover(self):
        """Resolve every non-terminal record after a restart.

        Decided 2PC transactions re-drive their participant commits
        (idempotent); undecided ones are presumed abort; unfinished
        sagas roll back.  When this drains, no participant holds an
        in-doubt prepare from this coordinator.
        """
        self.recoveries += 1
        ctx = self._start_span("txn-recovery", None,
                               coordinator=self.location)
        resolved = 0
        for txn_id in list(self._order):
            record = self._log[txn_id]
            state = record["state"]
            if state in ("committed", "aborted", "compensated"):
                continue
            resolved += 1
            groups = record.get("groups") or self._groups(record["ops"])
            try:
                if record["mode"] == "2pc":
                    if state == "commit":
                        # Decision was durable: finish the commit.
                        yield from self._drive_commits(
                            txn_id, record, groups, ctx
                        )
                    else:
                        # No decision: presumed abort.
                        yield from self._drive_aborts(
                            txn_id, record, groups, ctx
                        )
                else:
                    yield from self._compensate(txn_id, record, ctx)
            except (Interrupt, _Killed):
                # Killed again mid-recovery: the next restart resumes.
                self._end_span(ctx, outcome="killed", resolved=resolved)
                return
            except StoreError:
                # A participant stayed unreachable past the retry
                # budget; the record stays non-terminal for the next
                # recovery pass.
                continue
        self._end_span(ctx, outcome="ok", resolved=resolved)

    def recover(self):
        """Run one recovery pass explicitly; returns the process."""
        return self.env.process(self._recover())

    # -- plumbing ------------------------------------------------------------

    def _call(self, factory):
        """Drive one participant call, retrying through unavailability.

        Bounded (``max_attempts``) capped exponential backoff with
        seeded jitter -- deterministic for a given coordinator seed.
        Store-level errors (validation, conflicts) propagate
        immediately: they are answers, not outages.
        """
        attempts = 0
        while True:
            attempts += 1
            if not self.alive:
                raise UnavailableError("txn coordinator is down")
            try:
                result = yield factory()
                return result
            except (UnavailableError, DeadlineExceededError):
                if attempts >= self.max_attempts:
                    raise
                delay = min(0.2, 0.004 * (2 ** min(attempts, 6)))
                yield self.env.timeout(delay * (0.5 + self._rng.random()))

    def _release_idem(self, record):
        """An aborted txn had zero effects: free its idempotence key."""
        key = record.get("idempotence_key")
        if key is not None and self._idem.get(key) == record["id"]:
            del self._idem[key]

    def _start_span(self, name, parent, **attrs):
        sink = self.tracer
        if parent is not None and parent.sink is not None:
            sink = parent.sink
        if sink is None:
            return None
        return sink.start_span(name, self.location, parent=parent, **attrs)

    def _end_span(self, ctx, **attrs):
        if ctx is not None:
            ctx.sink.end_span(ctx, **attrs)


#: Sentinel: the duplicate may run as a fresh transaction.
_RETRY_FRESH = object()
