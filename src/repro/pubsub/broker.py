"""Topic broker with MQTT-style semantics.

Features modelled: topic hierarchy with ``+``/``#`` wildcards, retained
messages, per-subscriber FIFO delivery over the simulated network, and a
per-message broker forwarding overhead.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.context import current_context, use
from repro.store.base import estimate_size


def topic_matches(pattern, topic):
    """MQTT wildcard match: ``+`` one level, ``#`` all remaining levels."""
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    for i, part in enumerate(pattern_parts):
        if part == "#":
            return True
        if i >= len(topic_parts):
            return False
        if part != "+" and part != topic_parts[i]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass
class Subscription:
    """One client's subscription to a topic pattern."""

    pattern: str
    handler: object
    location: str
    active: bool = True
    delivered: int = 0

    def cancel(self):
        self.active = False


@dataclass
class _Retained:
    topic: str
    payload: bytes
    retained_at: float = 0.0
    ctx: object = None  # causal context of the retaining publish


class Broker:
    """The broker process: receives publishes, fans out to subscribers."""

    #: Broker-side forwarding overhead per message (seconds) + per byte.
    forward_overhead = 0.0003
    per_byte = 2e-9

    def __init__(self, env, network, location="broker"):
        self.env = env
        self.network = network
        self.location = location
        self._subscriptions = []
        self._retained = {}
        self.published = 0
        self.delivered = 0
        self.dropped = 0

    def subscribe(self, pattern, handler, location):
        """Register a subscriber; retained messages replay immediately."""
        if not pattern:
            raise ConfigurationError("topic pattern must be non-empty")
        subscription = Subscription(pattern, handler, location)
        self._subscriptions.append(subscription)
        for topic, retained in self._retained.items():
            if topic_matches(pattern, topic):
                self._deliver(subscription, topic, retained.payload,
                              retained.ctx)
        return subscription

    def publish(self, topic, payload, publisher_location, retain=False):
        """Publish; returns a process event (fires when broker accepted).

        Delivery to subscribers continues asynchronously after accept,
        matching QoS-0/1 behaviour.  The publisher's ambient trace
        context (captured synchronously here) rides the message: each
        delivery runs the subscriber's handler under a publish span, so
        even fire-and-forget messaging joins the causal DAG.
        """
        if "+" in topic or "#" in topic:
            raise ConfigurationError(f"cannot publish to wildcard topic {topic!r}")
        ctx = current_context()
        if ctx is not None and ctx.sink is not None:
            ctx = ctx.sink.point(
                "publish", service=publisher_location, parent=ctx, topic=topic,
            )
        return self.env.process(self._publish(topic, payload, publisher_location,
                                              retain, ctx))

    def _publish(self, topic, payload, publisher_location, retain, ctx=None):
        yield self.network.transfer(publisher_location, self.location)
        delay = self.forward_overhead + self.per_byte * estimate_size(payload)
        yield self.env.timeout(delay)
        self.published += 1
        if retain:
            self._retained[topic] = _Retained(topic, payload, self.env.now,
                                              ctx=ctx)
        for subscription in list(self._subscriptions):
            if subscription.active and topic_matches(subscription.pattern, topic):
                self._deliver(subscription, topic, payload, ctx)

    def _deliver(self, subscription, topic, payload, ctx=None):
        """Fire-and-forget delivery (QoS 0): a faulted link loses the
        message, and the broker only counts the drop -- exactly the
        at-most-once gap the data-centric substrate closes with
        replayable watch history."""
        link = self.network.link(self.location, subscription.location)

        def on_arrival(msg):
            if ctx is not None:
                with use(ctx):
                    subscription.handler(*msg)
            else:
                subscription.handler(*msg)

        arrival = link.send(on_arrival, (topic, payload))
        if arrival is None:
            self.dropped += 1
            return
        subscription.delivered += 1
        self.delivered += 1

    def subscriptions_for(self, topic):
        return [
            s
            for s in self._subscriptions
            if s.active and topic_matches(s.pattern, topic)
        ]
