"""Topic broker with MQTT-style semantics.

Features modelled: topic hierarchy with ``+``/``#`` wildcards, retained
messages, per-subscriber FIFO delivery over the simulated network, and a
per-message broker forwarding overhead.

Backpressure (``repro.flow``): a subscription may carry a bounded
in-flight delivery window (``max_inflight``) with a typed overflow
policy.  A slow consumer -- one whose deliveries pile up on the wire
faster than it absorbs them -- is shed per policy instead of queueing
without bound, and every per-subscription drop (shed *or* faulted link)
invokes the subscription's ``on_lag`` callback so the consumer can
observe its gap and resync; ``reject`` evicts the subscription outright
(``on_close`` fires), the broker-side analogue of a forced watch resync.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.flow.policy import BLOCK, REJECT, SHED_NEWEST, check_overflow
from repro.obs.context import current_context, use
from repro.store.base import estimate_size


def topic_matches(pattern, topic):
    """MQTT wildcard match: ``+`` one level, ``#`` all remaining levels."""
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    for i, part in enumerate(pattern_parts):
        if part == "#":
            return True
        if i >= len(topic_parts):
            return False
        if part != "+" and part != topic_parts[i]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass
class Subscription:
    """One client's subscription to a topic pattern.

    ``max_inflight``/``overflow`` bound the deliveries concurrently on
    the wire to this subscriber; ``on_lag(topic, count)`` fires for
    every message this subscription loses (shed by the bound or dropped
    by a faulted link), ``on_close()`` when the broker evicts the
    subscription (``reject`` policy).
    """

    pattern: str
    handler: object
    location: str
    active: bool = True
    delivered: int = 0
    max_inflight: int = None
    overflow: str = SHED_NEWEST
    on_lag: object = None
    on_close: object = None
    inflight: int = field(default=0, repr=False)
    dropped: int = 0
    shed: int = 0
    peak_inflight: int = 0

    def cancel(self):
        self.active = False

    def _lost(self, topic, shed=False):
        """Account one lost delivery and tell the subscriber about it."""
        self.dropped += 1
        if shed:
            self.shed += 1
        if self.on_lag is not None:
            self.on_lag(topic, 1)


@dataclass
class _Retained:
    topic: str
    payload: bytes
    retained_at: float = 0.0
    ctx: object = None  # causal context of the retaining publish


class Broker:
    """The broker process: receives publishes, fans out to subscribers."""

    #: Broker-side forwarding overhead per message (seconds) + per byte.
    forward_overhead = 0.0003
    per_byte = 2e-9

    def __init__(self, env, network, location="broker", max_inflight=None,
                 overflow=SHED_NEWEST):
        self.env = env
        self.network = network
        self.location = location
        #: Broker-wide default delivery window applied to subscriptions
        #: that do not set their own (``None`` = unbounded, QoS-0
        #: fire-and-forget exactly as before).
        self.max_inflight = max_inflight
        self.overflow = check_overflow(overflow)
        self._subscriptions = []
        self._retained = {}
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.shed = 0
        self.evicted = 0

    def subscribe(self, pattern, handler, location, *, max_inflight=None,
                  overflow=None, on_lag=None, on_close=None):
        """Register a subscriber; retained messages replay immediately.

        ``max_inflight``/``overflow`` override the broker-wide delivery
        bound for this subscription; ``on_lag``/``on_close`` observe its
        drops and eviction (see :class:`Subscription`).
        """
        if not pattern:
            raise ConfigurationError("topic pattern must be non-empty")
        limit = max_inflight if max_inflight is not None else self.max_inflight
        policy = check_overflow(overflow if overflow is not None
                                else self.overflow)
        if policy == BLOCK:
            limit = None  # a broker cannot block its publishers: unbounded
        subscription = Subscription(
            pattern, handler, location,
            max_inflight=limit, overflow=policy,
            on_lag=on_lag, on_close=on_close,
        )
        self._subscriptions.append(subscription)
        for topic, retained in self._retained.items():
            if topic_matches(pattern, topic):
                self._deliver(subscription, topic, retained.payload,
                              retained.ctx)
        return subscription

    def publish(self, topic, payload, publisher_location, retain=False):
        """Publish; returns a process event (fires when broker accepted).

        Delivery to subscribers continues asynchronously after accept,
        matching QoS-0/1 behaviour.  The publisher's ambient trace
        context (captured synchronously here) rides the message: each
        delivery runs the subscriber's handler under a publish span, so
        even fire-and-forget messaging joins the causal DAG.
        """
        if "+" in topic or "#" in topic:
            raise ConfigurationError(f"cannot publish to wildcard topic {topic!r}")
        ctx = current_context()
        if ctx is not None and ctx.sink is not None:
            ctx = ctx.sink.point(
                "publish", service=publisher_location, parent=ctx, topic=topic,
            )
        return self.env.process(self._publish(topic, payload, publisher_location,
                                              retain, ctx))

    def _publish(self, topic, payload, publisher_location, retain, ctx=None):
        yield self.network.transfer(publisher_location, self.location)
        delay = self.forward_overhead + self.per_byte * estimate_size(payload)
        yield self.env.timeout(delay)
        self.published += 1
        if retain:
            self._retained[topic] = _Retained(topic, payload, self.env.now,
                                              ctx=ctx)
        for subscription in list(self._subscriptions):
            if subscription.active and topic_matches(subscription.pattern, topic):
                self._deliver(subscription, topic, payload, ctx)

    def _deliver(self, subscription, topic, payload, ctx=None):
        """Fire-and-forget delivery (QoS 0) under the in-flight bound.

        A faulted link loses the message; the broker counts the drop AND
        tells the subscription (``on_lag``), so consumers can detect
        at-most-once gaps instead of discovering them from silence --
        the gap the data-centric substrate closes with replayable watch
        history.  A full in-flight window sheds per the subscription's
        overflow policy before the message ever reaches the wire.
        """
        if (subscription.max_inflight is not None
                and subscription.inflight >= subscription.max_inflight):
            self.shed += 1
            if subscription.overflow == REJECT:
                # A consumer this far behind is evicted: cancel + notify,
                # the broker-side analogue of a forced watch resync.
                self.evicted += 1
                subscription._lost(topic, shed=True)
                subscription.cancel()
                if subscription.on_close is not None:
                    subscription.on_close()
                return
            # shed_oldest cannot recall bytes already on the wire, so
            # both shed policies drop the incoming message; they differ
            # only on queues that still hold their items.
            subscription._lost(topic, shed=True)
            return
        link = self.network.link(self.location, subscription.location)

        def on_arrival(msg):
            subscription.inflight -= 1
            if ctx is not None:
                with use(ctx):
                    subscription.handler(*msg)
            else:
                subscription.handler(*msg)

        subscription.inflight += 1
        subscription.peak_inflight = max(subscription.peak_inflight,
                                         subscription.inflight)
        arrival = link.send(on_arrival, (topic, payload))
        if arrival is None:
            subscription.inflight -= 1
            self.dropped += 1
            subscription._lost(topic)
            return
        subscription.delivered += 1
        self.delivered += 1

    def subscriptions_for(self, topic):
        return [
            s
            for s in self._subscriptions
            if s.active and topic_matches(s.pattern, topic)
        ]
