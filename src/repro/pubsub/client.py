"""Client-side convenience wrapper over the broker."""

from repro.pubsub.codec import MessageCodec


class PubSubClient:
    """A service's connection to the broker, bound to its location.

    Publishing/subscribing with codecs reproduces the real workflow:
    the payload on the wire is bytes; both ends must hold the codec.

    With a :class:`repro.faults.RetryPolicy` (and optionally a
    :class:`repro.faults.CircuitBreaker`) attached, *publishes* ride
    through partitioned links to the broker with backoff.  Downstream
    delivery stays QoS 0 (the broker may drop it) -- subscribers wanting
    more must use the data-centric substrate.
    """

    def __init__(self, broker, location, retry_policy=None,
                 circuit_breaker=None):
        self.broker = broker
        self.env = broker.env
        self.location = location
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        self.subscriptions = []

    def publish(self, topic, message, codec=None, retain=False):
        """Publish a message (encoded when ``codec`` given); process event."""
        payload = codec.encode(message) if codec is not None else message
        if self.retry_policy is None and self.circuit_breaker is None:
            return self.broker.publish(topic, payload, self.location,
                                       retain=retain)
        from repro.faults.retry import RetryPolicy

        policy = self.retry_policy
        if policy is None:  # breaker-only client: gate but never retry
            policy = self.retry_policy = RetryPolicy(max_attempts=1)
        return policy.execute(
            self.env,
            lambda: self.broker.publish(topic, payload, self.location,
                                        retain=retain),
            breaker=self.circuit_breaker,
        )

    def subscribe(self, pattern, handler, codec=None):
        """Subscribe; ``handler(topic, message)`` gets decoded messages.

        Decoding failures are delivered as ``handler(topic, CodecError)``
        so subscribers can observe (and count) breakage rather than
        silently dropping it.
        """
        if codec is None:
            wrapped = handler
        else:
            def wrapped(topic, payload):
                from repro.errors import ReproError

                try:
                    message = codec.decode(payload)
                except ReproError as exc:
                    handler(topic, exc)
                    return
                handler(topic, message)

        subscription = self.broker.subscribe(pattern, wrapped, self.location)
        self.subscriptions.append(subscription)
        return subscription

    def disconnect(self):
        for subscription in self.subscriptions:
            subscription.cancel()
        self.subscriptions = []


__all__ = ["MessageCodec", "PubSubClient"]
