"""Client-side convenience wrapper over the broker."""

from repro.pubsub.codec import MessageCodec


class PubSubClient:
    """A service's connection to the broker, bound to its location.

    Publishing/subscribing with codecs reproduces the real workflow:
    the payload on the wire is bytes; both ends must hold the codec.
    """

    def __init__(self, broker, location):
        self.broker = broker
        self.env = broker.env
        self.location = location
        self.subscriptions = []

    def publish(self, topic, message, codec=None, retain=False):
        """Publish a message (encoded when ``codec`` given); process event."""
        payload = codec.encode(message) if codec is not None else message
        return self.broker.publish(topic, payload, self.location, retain=retain)

    def subscribe(self, pattern, handler, codec=None):
        """Subscribe; ``handler(topic, message)`` gets decoded messages.

        Decoding failures are delivered as ``handler(topic, CodecError)``
        so subscribers can observe (and count) breakage rather than
        silently dropping it.
        """
        if codec is None:
            wrapped = handler
        else:
            def wrapped(topic, payload):
                from repro.errors import ReproError

                try:
                    message = codec.decode(payload)
                except ReproError as exc:
                    handler(topic, exc)
                    return
                handler(topic, message)

        subscription = self.broker.subscribe(pattern, wrapped, self.location)
        self.subscriptions.append(subscription)
        return subscription

    def disconnect(self):
        for subscription in self.subscriptions:
            subscription.cancel()
        self.subscriptions = []


__all__ = ["MessageCodec", "PubSubClient"]
