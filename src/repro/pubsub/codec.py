"""Message codecs: the schema-sharing coupling of Pub/Sub composition.

In the paper's smart home example, "for each service, the developer uses
Protobuf to define schemas for the messages exchanged among devices.  For
example, H uses the schema of M and L to deserialize the messages from
the two and vice versa."  A :class:`MessageCodec` is that artifact: the
publisher defines it; every subscriber must hold a compatible copy, and a
schema change breaks decoding (which is what task T3 exploits).
"""

import json

from repro.errors import ReproError


class CodecError(ReproError):
    """Encoding/decoding failed (schema mismatch)."""


class MessageCodec:
    """A versioned, typed message schema with byte-level encode/decode.

    ``fields`` maps field name -> python type (or tuple of types).
    Encoding embeds the schema name + version; decoding verifies both,
    so mismatched codec versions fail loudly -- like a Protobuf wire
    format change does.
    """

    def __init__(self, name, version, fields):
        if not name or not isinstance(version, int):
            raise CodecError("codec needs a name and an integer version")
        self.name = name
        self.version = version
        self.fields = dict(fields)

    def encode(self, message):
        """Validate and serialize a message dict to bytes."""
        if not isinstance(message, dict):
            raise CodecError(f"message must be a dict, got {type(message).__name__}")
        unknown = set(message) - set(self.fields)
        if unknown:
            raise CodecError(f"{self.name} v{self.version}: unknown fields {sorted(unknown)}")
        for field_name, expected in self.fields.items():
            if field_name in message and message[field_name] is not None:
                value = message[field_name]
                if expected in (int, float) and isinstance(value, bool):
                    raise CodecError(
                        f"{self.name}.{field_name}: bool is not {expected.__name__}"
                    )
                if not isinstance(value, expected):
                    raise CodecError(
                        f"{self.name}.{field_name}: expected "
                        f"{getattr(expected, '__name__', expected)}, "
                        f"got {type(value).__name__}"
                    )
        envelope = {"_schema": self.name, "_v": self.version, "body": message}
        return json.dumps(envelope, sort_keys=True).encode()

    def decode(self, data):
        """Deserialize and verify schema name + version."""
        try:
            envelope = json.loads(data.decode())
        except (ValueError, AttributeError, UnicodeDecodeError) as exc:
            raise CodecError(f"undecodable message: {exc}") from exc
        if envelope.get("_schema") != self.name:
            raise CodecError(
                f"schema mismatch: expected {self.name!r}, "
                f"got {envelope.get('_schema')!r}"
            )
        if envelope.get("_v") != self.version:
            raise CodecError(
                f"{self.name}: version mismatch (have v{self.version}, "
                f"message is v{envelope.get('_v')})"
            )
        return envelope["body"]

    def compatible_with(self, other):
        """True if messages encoded by ``other`` decode under this codec."""
        return self.name == other.name and self.version == other.version
