"""The Pub/Sub baseline: an EMQX/MQTT-like topic broker built from scratch.

The smart home app's API-centric variant composes House, Motion, and Lamp
through this broker: each service publishes to / subscribes on topics and
(de)serializes messages with schemas *defined by the other services* --
the coupling the Knactor variant removes.
"""

from repro.pubsub.broker import Broker, Subscription
from repro.pubsub.client import PubSubClient
from repro.pubsub.codec import CodecError, MessageCodec

__all__ = [
    "Broker",
    "CodecError",
    "MessageCodec",
    "PubSubClient",
    "Subscription",
]
