"""RPC wiring of the social network: 36 handlers across 14 servers.

``compose_post`` exercises the real fan-out: one user action traverses
ten services.  The scattering benchmark measures both the static count
(handlers per service) and the dynamic one (services touched per
request).
"""

from dataclasses import dataclass, field

from repro import config
from repro.apps.socialnetwork.services import (
    COMPOSE_POST_CALL_GRAPH,
    SERVICE_METHODS,
    build_idls,
)
from repro.core import create_environment
from repro.rpc import RPCChannel, RPCServer
from repro.simnet import Environment, FixedLatency, Network


@dataclass
class SocialNetworkRpcApp:
    env: Environment
    network: Network
    servers: dict
    channels: dict = field(default_factory=dict)
    calls_traced: list = field(default_factory=list)

    @classmethod
    def build(cls, env=None, mode=None, shape_latency=None):
        """``mode`` / ``shape_latency`` as in ``RetailKnactorApp.build``."""
        if env is None:
            env = create_environment(mode if mode is not None else "sim")
        if shape_latency is None:
            shape_latency = getattr(env, "backend", "sim") == "sim"
        hop = config.NETWORK_HOP if shape_latency else FixedLatency(0.0)
        network = Network(env, default_latency=hop)
        idls = build_idls()
        servers = {}
        app = cls(env=env, network=network, servers=servers)

        for service, methods in SERVICE_METHODS.items():
            server = RPCServer(env, network, location=service.lower())
            servers[service] = server
            for method in methods:
                server.register(
                    service, method, app._make_handler(service, method),
                    idl=idls[service],
                )
        return app

    def _make_handler(self, service, method):
        def handler(request):
            self.calls_traced.append((service, method))
            result = f"{service}.{method}:ok"
            # Fan out along the compose-post call graph.
            targets = COMPOSE_POST_CALL_GRAPH.get(service, [])
            if method.startswith(("Compose", "Upload", "Fanout")) and targets:
                for target_service, target_method in targets:
                    yield self.channel(service, target_service).call(
                        target_service, target_method,
                        {"req_id": request.get("req_id", ""), "payload": ""},
                    )
            else:
                yield self.env.timeout(0.0002)  # local work
            return {"req_id": request.get("req_id", ""), "result": result}

        return handler

    def channel(self, client_service, target_service):
        key = (client_service, target_service)
        if key not in self.channels:
            self.channels[key] = RPCChannel(
                self.env,
                self.servers[target_service],
                client_location=client_service.lower(),
            )
        return self.channels[key]

    def compose_post(self, req_id="r1"):
        """One user action: compose a post (returns a process event)."""
        channel = self.channel("Frontend", "ComposePostService")
        return channel.call(
            "ComposePostService", "UploadText", {"req_id": req_id, "payload": "hi"}
        )

    # -- scattering metrics ------------------------------------------------------

    def handler_count(self):
        return sum(len(s._methods) for s in self.servers.values())

    def service_count(self):
        return len(self.servers)

    def services_touched_by_compose(self):
        """Dynamic scattering: distinct services in one compose-post."""
        before = len(self.calls_traced)
        self.env.run(until=self.compose_post())
        touched = {service for service, _m in self.calls_traced[before:]}
        return touched
