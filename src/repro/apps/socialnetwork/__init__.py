"""A DeathStarBench-like social network (API-centric wiring only).

The paper (§2, Problem 2) counts composition scattering in "another
well-studied social networking app": **36 methods handling API
invocations across 14 services**.  This package reproduces that app's
RPC surface so the scattering benchmark can *measure* the count from a
real service graph rather than quote it.
"""

from repro.apps.socialnetwork.services import SERVICE_METHODS, build_idls
from repro.apps.socialnetwork.rpc_app import SocialNetworkRpcApp

__all__ = ["SERVICE_METHODS", "SocialNetworkRpcApp", "build_idls"]
