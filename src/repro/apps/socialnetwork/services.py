"""Service/method inventory of the social network app.

Mirrors the DeathStarBench socialNetwork service graph: 14 services, 36
rpc methods.  IDL texts are generated from the inventory (uniform
request/response messages) and are real inputs to the RPC stack.
"""

from repro.rpc import parse_idl

#: 14 services, 36 methods -- the numbers the paper reports for this app.
SERVICE_METHODS = {
    "UniqueIdService": ["ComposeUniqueId"],
    "TextService": ["ComposeText"],
    "UserMentionService": ["ComposeUserMentions"],
    "UrlShortenService": ["ComposeUrls", "GetExtendedUrls", "RemoveUrls"],
    "MediaService": ["ComposeMedia", "GetMedia"],
    "UserService": [
        "RegisterUser",
        "RegisterUserWithId",
        "Login",
        "ComposeCreatorWithUserId",
        "GetUserId",
    ],
    "ComposePostService": [
        "UploadText",
        "UploadMedia",
        "UploadUniqueId",
        "UploadCreator",
        "UploadUrls",
        "UploadUserMentions",
    ],
    "PostStorageService": ["StorePost", "ReadPost", "ReadPosts"],
    "UserTimelineService": ["WriteUserTimeline", "ReadUserTimeline"],
    "HomeTimelineService": ["ReadHomeTimeline", "FanoutHomeTimeline"],
    "SocialGraphService": [
        "GetFollowers",
        "GetFollowees",
        "Follow",
        "Unfollow",
        "FollowWithUsername",
        "UnfollowWithUsername",
        "InsertUser",
    ],
    "MediaFilterService": ["UploadMedia"],
    "SearchService": ["IndexPost"],
    "RecommendationService": ["GetRecommendations"],
}

#: Who calls whom when a post is composed (the fan-out of one user action).
COMPOSE_POST_CALL_GRAPH = {
    "ComposePostService": [
        ("UniqueIdService", "ComposeUniqueId"),
        ("TextService", "ComposeText"),
        ("MediaService", "ComposeMedia"),
        ("UserService", "ComposeCreatorWithUserId"),
        ("PostStorageService", "StorePost"),
        ("UserTimelineService", "WriteUserTimeline"),
        ("HomeTimelineService", "FanoutHomeTimeline"),
    ],
    "TextService": [
        ("UrlShortenService", "ComposeUrls"),
        ("UserMentionService", "ComposeUserMentions"),
    ],
    "HomeTimelineService": [
        ("SocialGraphService", "GetFollowers"),
    ],
}


def _proto_for(service, methods):
    lines = ['syntax = "proto3";', f"package socialnetwork.{service.lower()};", ""]
    for method in methods:
        lines += [
            f"message {method}Request {{",
            "  string req_id = 1;",
            "  string payload = 2;",
            "}",
            "",
            f"message {method}Response {{",
            "  string req_id = 1;",
            "  string result = 2;",
            "}",
            "",
        ]
    lines.append(f"service {service} {{")
    for method in methods:
        lines.append(
            f"  rpc {method}({method}Request) returns ({method}Response);"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def proto_texts():
    """IDL source text per service."""
    return {
        service: _proto_for(service, methods)
        for service, methods in SERVICE_METHODS.items()
    }


def build_idls():
    """Parsed IDL per service."""
    return {service: parse_idl(text) for service, text in proto_texts().items()}


def total_methods():
    return sum(len(m) for m in SERVICE_METHODS.values())


def total_services():
    return len(SERVICE_METHODS)
