"""Example applications from the paper.

- :mod:`repro.apps.retail`        -- the online retail web app (11
  knactors; gRPC-style baseline), the subject of Tables 1 and 2,
- :mod:`repro.apps.smarthome`     -- the House/Motion/Lamp IoT app
  (MQTT-broker baseline; Fig. 4 in Knactor form),
- :mod:`repro.apps.socialnetwork` -- a DeathStarBench-like social network
  (RPC wiring only; reproduces §2's scattering count).
"""
