"""The data-centric smart home (paper Fig. 4).

Three knactors, each with an Object store and a Log store, composed by:

- ``sensor-sync`` (Sync): Motion's readings -> House's log, with the
  paper's rename (``triggered`` -> ``motion``),
- ``energy-sync`` (Sync): Lamp's energy reports -> House's log
  (``energy`` -> ``kwh``),
- ``control-cast`` (Cast): House's desired ``intensity`` -> Lamp's
  ``brightness``.

House never sees a Lamp topic or a Motion schema; swapping the lamp
vendor is an integrator reconfiguration.
"""

from dataclasses import dataclass, field

from repro import config
from repro.apps.smarthome import knactors as home
from repro.apps.smarthome.devices import LampDevice, MotionSensorDevice
from repro.apps.smarthome.workload import MotionTrace
from repro.core import (
    Cast,
    Flow,
    Knactor,
    KnactorRuntime,
    Pipeline,
    Rollup,
    RollupRule,
    StoreBinding,
    Sync,
    create_environment,
)
from repro.exchange import LogDE, ObjectDE
from repro.simnet import Environment, FixedLatency, Network, Tracer
from repro.store import ApiServer, LogLake

CONTROL_DXG = """\
Input:
  H: SmartHome/v1/House/knactor-house
  L: SmartHome/v1/Lamp/knactor-lamp
DXG:
  L:
    brightness: H.intensity
"""


@dataclass
class SmartHomeKnactorApp:
    env: Environment
    runtime: KnactorRuntime
    object_de: ObjectDE
    log_de: LogDE
    house: home.HouseReconciler
    lamp: home.LampReconciler
    motion: home.MotionReconciler
    lamp_device: LampDevice
    motion_sensor: MotionSensorDevice
    control_cast: Cast
    sensor_sync: Sync
    energy_sync: Sync
    tracer: Tracer = None
    processes: list = field(default_factory=list)

    @classmethod
    def build(cls, env=None, trace=None, mode=None, shape_latency=None,
              obs=None):
        """``mode`` / ``shape_latency`` as in ``RetailKnactorApp.build``:
        select the execution backend and keep/zero the simulated
        infrastructure latencies (defaults: shaped on sim, unshaped on
        realtime).  Device schedules (motion trace, lamp energy ticks)
        live on the schedule clock either way.  ``obs=True`` attaches an
        observability plane, as in the retail app."""
        if env is None:
            env = create_environment(mode if mode is not None else "sim")
        if shape_latency is None:
            shape_latency = getattr(env, "backend", "sim") == "sim"
        hop = config.NETWORK_HOP if shape_latency else FixedLatency(0.0)
        ops = config.MEMKV.ops if shape_latency else config.zero_calibration(
            config.MEMKV).ops
        network = Network(env, default_latency=hop)
        tracer = Tracer(env)
        runtime = KnactorRuntime(
            env, network=network, tracer=tracer, obs=obs, mode=mode
        )
        object_backend = ApiServer(
            env, network, location="object-backend",
            ops=ops, watch_overhead=0.0005 if shape_latency else 0.0,
            tracer=tracer,
        )
        object_de = ObjectDE(env, object_backend)
        log_de = LogDE(
            env, LogLake(env, network, location="log-backend", tracer=tracer)
        )
        runtime.add_exchange("object", object_de)
        runtime.add_exchange("log", log_de)

        house = home.HouseReconciler()
        lamp = home.LampReconciler()
        motion = home.MotionReconciler()
        runtime.add_knactor(
            Knactor("house", [
                StoreBinding("default", "object", home.HOUSE_OBJECT),
                StoreBinding("log", "log", home.HOUSE_LOG),
            ], reconciler=house)
        )
        runtime.add_knactor(
            Knactor("lamp", [
                StoreBinding("default", "object", home.LAMP_OBJECT),
                StoreBinding("log", "log", home.LAMP_LOG),
            ], reconciler=lamp)
        )
        runtime.add_knactor(
            Knactor("motion", [
                StoreBinding("default", "object", home.MOTION_OBJECT),
                StoreBinding("log", "log", home.MOTION_LOG),
            ], reconciler=motion)
        )

        # -- devices bridge hardware to the knactor's OWN stores ----------
        lamp_log = runtime.handle_of("lamp", "log")
        lamp_device = LampDevice(
            env, on_energy=lambda kwh: lamp_log.load([{"energy": kwh}])
        )
        lamp.device = lamp_device
        motion_log = runtime.handle_of("motion", "log")
        trace = trace if trace is not None else MotionTrace()
        motion_sensor = MotionSensorDevice(
            env,
            trace,
            on_reading=lambda event: motion_log.load(
                [{"triggered": event.triggered, "device": event.device}]
            ),
        )

        # -- integrators: ALL the composition logic ------------------------
        log_de.grant("sensor-sync", "knactor-motion-log", role="reader")
        log_de.grant("sensor-sync", "knactor-house-log", role="integrator")
        sensor_sync = Sync(
            "sensor-sync",
            flows=[
                Flow(
                    source="knactor-motion-log",
                    target="knactor-house-log",
                    pipeline=Pipeline().rename("triggered", "motion").cut("motion"),
                )
            ],
        )
        runtime.add_integrator(sensor_sync)

        log_de.grant("energy-sync", "knactor-lamp-log", role="reader")
        log_de.grant("energy-sync", "knactor-house-log", role="integrator")
        energy_sync = Sync(
            "energy-sync",
            flows=[
                Flow(
                    source="knactor-lamp-log",
                    target="knactor-house-log",
                    pipeline=Pipeline().rename("energy", "kwh").cut("kwh"),
                )
            ],
        )
        runtime.add_integrator(energy_sync)

        object_de.grant("control-cast", "knactor-house", role="reader")
        object_de.grant("control-cast", "knactor-lamp", role="integrator")
        control_cast = Cast("control-cast", CONTROL_DXG)
        runtime.add_integrator(control_cast)

        # A Rollup keeps a live energy gauge on the House's Object store,
        # aggregated from its own Log store.
        log_de.grant("energy-rollup", "knactor-house-log", role="reader")
        object_de.grant("energy-rollup", "knactor-house", role="integrator")
        energy_rollup = Rollup("energy-rollup", rules=[
            RollupRule(
                source="knactor-house-log",
                target="knactor-house",
                target_key="main",
                aggs={"totalKwh": "sum(kwh)"},
                where="kwh != None",
            )
        ])
        runtime.add_integrator(energy_rollup)

        runtime.start()
        app = cls(
            env=env, runtime=runtime, object_de=object_de, log_de=log_de,
            house=house, lamp=lamp, motion=motion,
            lamp_device=lamp_device, motion_sensor=motion_sensor,
            control_cast=control_cast, sensor_sync=sensor_sync,
            energy_sync=energy_sync, tracer=tracer,
        )
        app.processes.append(motion_sensor.start())
        app.processes.append(lamp_device.start())
        return app

    def run(self, until):
        self.env.run(until=until)
        return self

    def energy_report(self):
        """Analytics over the House's own log: total ingested kWh."""
        handle = self.runtime.handle_of("house", "log")
        return handle.query(
            ops=[{"op": "agg", "aggs": {"total_kwh": "sum(kwh)",
                                        "motion_events": "count()"}}]
        )
