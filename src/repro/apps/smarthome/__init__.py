"""The smart home application (paper §2 example 2, Fig. 4).

Three services from three vendors -- House (platform), Motion (sensor
vendor), Lamp (light vendor) -- that adjust lamp brightness from occupancy
while monitoring energy use.  Two complete variants:

- :mod:`repro.apps.smarthome.pubsub_app`  -- API-centric: composed through
  an MQTT-style broker with shared message codecs,
- :mod:`repro.apps.smarthome.knactor_app` -- data-centric: each knactor
  has an Object store (configuration) and a Log store (readings), composed
  by Sync integrators (sensor dataflows) and a Cast integrator (the
  intensity -> brightness control edge).
"""

from repro.apps.smarthome.knactor_app import SmartHomeKnactorApp
from repro.apps.smarthome.pubsub_app import SmartHomePubSubApp
from repro.apps.smarthome.workload import MotionTrace

__all__ = ["MotionTrace", "SmartHomeKnactorApp", "SmartHomePubSubApp"]
