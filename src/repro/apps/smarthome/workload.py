"""Seeded motion-event traces (the simulated occupant)."""

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class MotionEvent:
    time: float
    triggered: bool
    device: str = "motion-1"


class MotionTrace:
    """A day of occupancy: presence periods separated by idle gaps."""

    def __init__(self, seed=11, duration=120.0, mean_gap=12.0, mean_presence=6.0):
        self.seed = seed
        self.duration = duration
        self.mean_gap = mean_gap
        self.mean_presence = mean_presence

    def events(self):
        """Alternating triggered=True / triggered=False events."""
        rng = random.Random(self.seed)
        events = []
        now = rng.expovariate(1.0 / self.mean_gap)
        while now < self.duration:
            events.append(MotionEvent(round(now, 3), True))
            leave = now + rng.expovariate(1.0 / self.mean_presence)
            if leave >= self.duration:
                break
            events.append(MotionEvent(round(leave, 3), False))
            now = leave + rng.expovariate(1.0 / self.mean_gap)
        return events
