"""The API-centric smart home: composed through an MQTT-style broker.

The coupling the paper describes is explicit here: the House service
imports BOTH vendors' message codecs (it must deserialize Motion's
readings and serialize Lamp's commands), and the topic names are wired
into every service.
"""

from dataclasses import dataclass, field

from repro import config
from repro.apps.smarthome.devices import LampDevice, MotionSensorDevice
from repro.apps.smarthome.workload import MotionTrace
from repro.pubsub import Broker, MessageCodec, PubSubClient
from repro.simnet import Environment, Network, Tracer

#: Vendor Z's (motion sensor) message schema -- House must hold a copy.
MOTION_CODEC = MessageCodec(
    "motion.Reading", 1, {"triggered": bool, "device": str}
)
#: Vendor Y's (lamp) command schema -- House must hold a copy.
LAMP_COMMAND_CODEC = MessageCodec(
    "lamp.SetBrightness", 1, {"brightness": int}
)
LAMP_ENERGY_CODEC = MessageCodec(
    "lamp.EnergyReport", 1, {"kwh": (int, float)}
)

MOTION_TOPIC = "home/motion"
LAMP_COMMAND_TOPIC = "home/lamp/set"
LAMP_ENERGY_TOPIC = "home/lamp/energy"


class HouseService:
    """Subscribes to Motion, commands the Lamp, tracks energy."""

    def __init__(self, client, on_brightness=70, off_brightness=0):
        self.client = client
        self.on_brightness = on_brightness
        self.off_brightness = off_brightness
        self.kwh_total = 0.0
        self.motion_log = []
        self.decode_errors = 0
        client.subscribe(MOTION_TOPIC, self._on_motion, codec=MOTION_CODEC)
        client.subscribe(LAMP_ENERGY_TOPIC, self._on_energy, codec=LAMP_ENERGY_CODEC)

    def _on_motion(self, topic, message):
        if isinstance(message, Exception):
            self.decode_errors += 1
            return
        self.motion_log.append((self.client.env.now, message["triggered"]))
        level = self.on_brightness if message["triggered"] else self.off_brightness
        self.client.publish(
            LAMP_COMMAND_TOPIC, {"brightness": level}, codec=LAMP_COMMAND_CODEC
        )

    def _on_energy(self, topic, message):
        if isinstance(message, Exception):
            self.decode_errors += 1
            return
        self.kwh_total += message["kwh"]


class LampService:
    """Bridges the lamp device onto the broker."""

    def __init__(self, env, client):
        self.client = client
        self.device = LampDevice(env, on_energy=self._report_energy)
        client.subscribe(LAMP_COMMAND_TOPIC, self._on_command,
                         codec=LAMP_COMMAND_CODEC)

    def _on_command(self, topic, message):
        if isinstance(message, Exception):
            return
        self.device.set_brightness(message["brightness"])

    def _report_energy(self, kwh):
        self.client.publish(LAMP_ENERGY_TOPIC, {"kwh": kwh},
                            codec=LAMP_ENERGY_CODEC)


class MotionService:
    """Bridges the occupancy sensor onto the broker."""

    def __init__(self, env, client, trace):
        self.client = client
        self.sensor = MotionSensorDevice(env, trace, on_reading=self._publish)

    def _publish(self, event):
        self.client.publish(
            MOTION_TOPIC,
            {"triggered": event.triggered, "device": event.device},
            codec=MOTION_CODEC,
        )


@dataclass
class SmartHomePubSubApp:
    env: Environment
    broker: Broker
    house: HouseService
    lamp: LampService
    motion: MotionService
    tracer: Tracer = None
    processes: list = field(default_factory=list)

    @classmethod
    def build(cls, env=None, trace=None):
        env = env if env is not None else Environment()
        network = Network(env, default_latency=config.NETWORK_HOP)
        tracer = Tracer(env)
        broker = Broker(env, network)
        trace = trace if trace is not None else MotionTrace()
        house = HouseService(PubSubClient(broker, "house"))
        lamp = LampService(env, PubSubClient(broker, "lamp"))
        motion = MotionService(env, PubSubClient(broker, "motion"), trace)
        app = cls(env=env, broker=broker, house=house, lamp=lamp,
                  motion=motion, tracer=tracer)
        app.processes.append(motion.sensor.start())
        app.processes.append(lamp.device.start())
        return app

    def run(self, until):
        self.env.run(until=until)
        return self
