"""Knactors for the smart home app (Fig. 4).

Each knactor has two data stores -- Object for configuration state, Log
for readings -- and its reconciler touches only its own stores.  The
House decides *intensity* from readings that integrators ingest into its
own Log store; it has no idea a Lamp or a Motion sensor exists.
"""

from repro.core import Reconciler

#: Schemas per Fig. 4's store contents.
HOUSE_OBJECT = """\
schema: SmartHome/v1/House/Config
intensity: number
mode: string
totalKwh: number # +kr: external
"""

HOUSE_LOG = """\
schema: SmartHome/v1/House/Readings
kwh: number # +kr: ingest
motion: boolean # +kr: ingest
"""

MOTION_OBJECT = """\
schema: SmartHome/v1/Motion/Config
sensitivity: number # +kr: external
"""

MOTION_LOG = """\
schema: SmartHome/v1/Motion/Readings
triggered: boolean
device: string
"""

LAMP_OBJECT = """\
schema: SmartHome/v1/Lamp/Config
brightness: number # +kr: external
"""

LAMP_LOG = """\
schema: SmartHome/v1/Lamp/Readings
energy: number
"""


class HouseReconciler(Reconciler):
    """Policy: occupied -> bright; empty -> off.  Reads ONLY its own log."""

    log_subscriptions = ("log",)
    on_brightness = 70
    off_brightness = 0

    def __init__(self):
        super().__init__("house")
        self.kwh_total = 0.0
        self.motion_log = []

    def on_log_batch(self, ctx, local_name, records):
        intensity = None
        for record in records:
            if "motion" in record:
                self.motion_log.append((record["_ts"], record["motion"]))
                intensity = (
                    self.on_brightness if record["motion"] else self.off_brightness
                )
            if record.get("kwh") is not None:
                self.kwh_total += record["kwh"]
        if intensity is None:
            return
        try:
            yield ctx.store.patch("main", {"intensity": intensity})
        except Exception:
            yield ctx.store.create("main", {"intensity": intensity, "mode": "auto"})


class LampReconciler(Reconciler):
    """Applies externally-set brightness to the physical lamp device."""

    def __init__(self):
        super().__init__("lamp")
        self.device = None  # attached by the app builder

    def reconcile(self, ctx, key, obj):
        if obj is None or self.device is None:
            return
        level = obj.get("brightness")
        if level is not None and level != self.device.brightness:
            self.device.set_brightness(level)
            ctx.trace("lamp-brightness", level=level)


class MotionReconciler(Reconciler):
    """Configuration endpoint for the sensor (sensitivity is external)."""

    def __init__(self):
        super().__init__("motion")
        self.sensitivity = 50

    def reconcile(self, ctx, key, obj):
        if obj is not None and obj.get("sensitivity") is not None:
            self.sensitivity = obj["sensitivity"]
