"""Simulated devices: the occupancy sensor and the smart lamp.

The paper's prototype used an IoT app *simulator* (Digibox) rather than
physical hardware; these classes play the same role.  They are transport-
agnostic: both app variants (Pub/Sub and Knactor) drive the same device
models through different plumbing.
"""

from repro.errors import ConfigurationError


class MotionSensorDevice:
    """Replays a motion trace, invoking ``on_reading(triggered)``."""

    def __init__(self, env, trace, on_reading):
        self.env = env
        self.trace = trace
        self.on_reading = on_reading
        self.emitted = 0

    def start(self):
        return self.env.process(self._run(self.env))

    def _run(self, env):
        last = 0.0
        for event in self.trace.events():
            gap = event.time - last
            if gap > 0:
                yield env.timeout(gap)
            last = event.time
            self.emitted += 1
            result = self.on_reading(event)
            if hasattr(result, "send"):
                yield env.process(result)


class LampDevice:
    """Integrates brightness over time into energy (kWh).

    ``set_brightness`` changes the level (0-100); the device periodically
    reports the energy consumed since the last report via
    ``on_energy(kwh)``.
    """

    #: Power draw at full brightness, in watts.
    max_watts = 9.0
    #: Seconds of simulated time per modelled hour (time compression:
    #: a 120 s trace covers a "day" of lamp operation).
    seconds_per_hour = 5.0

    def __init__(self, env, on_energy, report_interval=10.0):
        if report_interval <= 0:
            raise ConfigurationError("report_interval must be positive")
        self.env = env
        self.on_energy = on_energy
        self.report_interval = report_interval
        self.brightness = 0
        self._last_change = 0.0
        self._accumulated_wh = 0.0
        self.changes = []

    def set_brightness(self, level):
        level = max(0, min(100, int(level)))
        self._accumulate()
        self.brightness = level
        self.changes.append((self.env.now, level))

    def _accumulate(self):
        elapsed_hours = (self.env.now - self._last_change) / self.seconds_per_hour
        self._accumulated_wh += self.max_watts * (self.brightness / 100.0) * elapsed_hours
        self._last_change = self.env.now

    def start(self):
        return self.env.process(self._report_loop(self.env))

    def _report_loop(self, env):
        while True:
            yield env.timeout(self.report_interval)
            self._accumulate()
            kwh = round(self._accumulated_wh / 1000.0, 9)
            self._accumulated_wh = 0.0
            result = self.on_energy(kwh)
            if hasattr(result, "send"):
                yield env.process(result)
