"""Reconcilers for the retail knactors.

Note what is *absent* here: no reconciler imports another service's
schema, stub, or store.  Each acts only on its own externalized state;
the Cast integrator (see :mod:`repro.apps.retail.knactor_app`) does all
cross-service composition.
"""

from repro.core import Reconciler
from repro.config import shipment_latency_model

#: Carrier quotes by shipment method (USD).
SHIPPING_RATES = {"ground": 7.9, "air": 24.5}


class CheckoutReconciler(Reconciler):
    """Completes orders once their external fields have been filled."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("status") == "fulfilled":
            return
        filled = all(
            obj.get(field) is not None
            for field in ("shippingCost", "paymentID", "trackingID")
        )
        if not filled:
            return
        total = round(obj.get("cost", 0.0) + obj["shippingCost"], 4)
        ctx.trace("order-fulfilled", key=key)
        yield ctx.store.patch(
            key, {"status": "fulfilled", "totalCost": total}
        )


class ShippingReconciler(Reconciler):
    """Processes shipments: calls the carrier, posts id + quote.

    The carrier call (FedEx API in the paper) dominates Table 2's
    latency; its service time is a calibrated log-normal (~446 ms).
    """

    def __init__(self, seed=None):
        super().__init__("shipping")
        self._carrier = shipment_latency_model(seed=seed)
        self.shipments_processed = 0

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("id") or obj.get("addr") is None:
            return
        ctx.trace("fedex.begin", key=key)
        yield ctx.env.timeout(self._carrier.sample())
        self.shipments_processed += 1
        method = obj.get("method", "ground")
        price = SHIPPING_RATES.get(method, SHIPPING_RATES["ground"])
        ctx.trace("fedex.done", key=key)
        yield ctx.store.patch(
            key,
            {
                "id": f"trk-{key}",
                "quote": {"price": price, "currency": "USD"},
                "status": "shipped",
            },
        )


class PaymentReconciler(Reconciler):
    """Charges the processor once amount + currency are present."""

    processor_time = 0.032

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("id") or obj.get("amount") is None:
            return
        yield ctx.env.timeout(self.processor_time)
        yield ctx.store.patch(
            key, {"id": f"ch-{key}", "status": "charged"}
        )


class EmailReconciler(Reconciler):
    """Sends queued notifications."""

    smtp_time = 0.012

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("sent") or obj.get("to") is None:
            return
        yield ctx.env.timeout(self.smtp_time)
        ctx.trace("email-sent", key=key)
        yield ctx.store.patch(key, {"sent": True})


class CartReconciler(Reconciler):
    """Clears carts after checkout."""

    def reconcile(self, ctx, key, obj):
        if obj is None or not obj.get("checkedOut") or not obj.get("items"):
            return
        yield ctx.store.patch(key, {"items": {}})


class ProductCatalogReconciler(Reconciler):
    """Owns the catalog; nothing to reconcile beyond presence."""


class CurrencyReconciler(Reconciler):
    """Seeds the conversion-rate table into its own store."""

    RATES = {"USD": 1.0, "EUR": 0.9259, "GBP": 0.7874, "CAD": 1.3699}

    def setup(self, ctx):
        for code, rate in self.RATES.items():
            yield ctx.store.create(f"rate/{code}", {"code": code, "ratePerUSD": rate})


class RecommendationReconciler(Reconciler):
    """Fills suggestions for any session that asks."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("productIDs") or obj.get("userID") is None:
            return
        yield ctx.store.patch(
            key, {"productIDs": ["mug", "notebook", "desk-lamp"]}
        )


class AdReconciler(Reconciler):
    """Chooses a creative for each placement context."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("creative") or obj.get("context") is None:
            return
        yield ctx.store.patch(key, {"creative": f"ad-for-{obj['context']}"})


class FrontendReconciler(Reconciler):
    """Tracks sessions; presentation only."""


class LoadGenReconciler(Reconciler):
    """Bookkeeping for workload runs."""
