"""Deterministic order workload generation."""

import random
from dataclasses import dataclass, field

_CATALOG = [
    ("espresso-machine", 679.0),
    ("mug", 8.5),
    ("pen", 2.2),
    ("notebook", 12.0),
    ("desk-lamp", 39.9),
    ("monitor", 329.0),
    ("keyboard", 89.0),
    ("standing-desk", 899.0),
    ("headphones", 199.0),
    ("webcam", 59.0),
]

_STREETS = ["Elm St", "Oak Ave", "Birch Rd", "Cedar Ln", "Maple Dr"]
_CURRENCIES = ["USD", "EUR", "GBP", "CAD"]


@dataclass
class OrderWorkload:
    """Seeded generator of order payloads for the Checkout store."""

    seed: int = 7
    big_order_fraction: float = 0.2  # orders priced above the air threshold
    _rng: random.Random = field(init=False, repr=False)
    _count: int = field(init=False, default=0)

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def next_order(self):
        """One order payload (key, data) for the Checkout schema."""
        self._count += 1
        key = f"order/o{self._count:05d}"
        rng = self._rng
        if rng.random() < self.big_order_fraction:
            names = ["standing-desk", "espresso-machine"]
        else:
            names = rng.sample([n for n, _p in _CATALOG], k=rng.randint(1, 3))
        prices = dict(_CATALOG)
        items = {name: {"name": name, "priceUSD": prices[name]} for name in names}
        cost = round(sum(prices[n] for n in names), 2)
        data = {
            "items": items,
            "address": f"{rng.randint(1, 99)} {rng.choice(_STREETS)}",
            "cost": cost,
            "totalCost": cost,  # shipping added later by the integrator
            "currency": rng.choice(_CURRENCIES),
            "status": "placed",
            "cardToken": f"tok-{rng.randint(10**6, 10**7 - 1)}",
        }
        return key, data

    def orders(self, count):
        return [self.next_order() for _ in range(count)]

    @property
    def issued(self):
        return self._count
