"""The API-centric (RPC) variant of the online retail app.

This is Fig. 3a: Checkout holds *client stubs for four other services*
(Currency, Payment, Shipping, Email) and orchestrates an order as a
sequence of synchronous calls.  The coupling the paper criticizes is
visible in the constructor: Checkout imports every downstream IDL.
"""

from dataclasses import dataclass, field

from repro import config
from repro.apps.retail import protos
from repro.apps.retail.knactors import SHIPPING_RATES
from repro.errors import RPCStatusError
from repro.rpc import RPCChannel, RPCServer, build_client_class, parse_idl
from repro.simnet import Environment, Network, Tracer


class ShippingServiceImpl:
    """Server-side Shipping: quotes and carrier calls."""

    def __init__(self, env, tracer, seed=None):
        self.env = env
        self.tracer = tracer
        self._carrier = config.shipment_latency_model(seed=seed)
        self._counter = 0

    def get_quote(self, request):
        items = request.get("items", [])
        return {"cost_usd": SHIPPING_RATES["ground"] * max(1, len(items)) / 2}

    def ship_order(self, request):
        self.tracer.record("rpc", "fedex.begin", order=request.get("address", ""))
        yield self.env.timeout(self._carrier.sample())
        self.tracer.record("rpc", "fedex.done", order=request.get("address", ""))
        self._counter += 1
        method = request.get("method", "ground")
        return {
            "tracking_id": f"trk-{self._counter:05d}",
            "shipping_cost": SHIPPING_RATES.get(method, SHIPPING_RATES["ground"]),
            "currency": "USD",
        }


class PaymentServiceImpl:
    processor_time = 0.032

    def __init__(self, env):
        self.env = env
        self._counter = 0

    def charge(self, request):
        yield self.env.timeout(self.processor_time)
        if not request.get("card_token"):
            raise RPCStatusError("INVALID_ARGUMENT", "missing card token")
        self._counter += 1
        return {"transaction_id": f"ch-{self._counter:05d}"}


class CurrencyServiceImpl:
    RATES = {"USD": 1.0, "EUR": 0.9259, "GBP": 0.7874, "CAD": 1.3699}

    def convert(self, request):
        source = request.get("from", {})
        amount = source.get("amount", 0.0)
        from_code = source.get("currency_code", "USD")
        to_code = request.get("to_code", "USD")
        usd = amount / self.RATES[from_code]
        return {
            "amount": round(usd * self.RATES[to_code], 4),
            "currency_code": to_code,
        }

    def get_supported_currencies(self, request):
        return {"currency_codes": sorted(self.RATES)}


class EmailServiceImpl:
    smtp_time = 0.012

    def __init__(self, env):
        self.env = env
        self.sent = []

    def send_order_confirmation(self, request):
        yield self.env.timeout(self.smtp_time)
        self.sent.append(request)
        return {}


class ProductCatalogServiceImpl:
    CATALOG = [
        {"id": "mug", "name": "mug", "price_usd": 8.5, "categories": ["kitchen"]},
        {"id": "pen", "name": "pen", "price_usd": 2.2, "categories": ["office"]},
        {"id": "monitor", "name": "monitor", "price_usd": 329.0,
         "categories": ["office", "electronics"]},
    ]

    def list_products(self, request):
        size = request.get("page_size") or len(self.CATALOG)
        return {"products": self.CATALOG[:size]}

    def get_product(self, request):
        for product in self.CATALOG:
            if product["id"] == request.get("id"):
                return product
        raise RPCStatusError("NOT_FOUND", f"no product {request.get('id')!r}")

    def search_products(self, request):
        query = request.get("query", "")
        return {"results": [p for p in self.CATALOG if query in p["name"]]}


class CartServiceImpl:
    def __init__(self):
        self._carts = {}

    def add_item(self, request):
        cart = self._carts.setdefault(request["user_id"], [])
        cart.append(request["item"])
        return {}

    def get_cart(self, request):
        return {
            "user_id": request["user_id"],
            "items": self._carts.get(request["user_id"], []),
        }

    def empty_cart(self, request):
        self._carts.pop(request["user_id"], None)
        return {}


class RecommendationServiceImpl:
    def list_recommendations(self, request):
        exclude = set(request.get("product_ids", []))
        picks = [p for p in ("mug", "notebook", "desk-lamp") if p not in exclude]
        return {"product_ids": picks}


class AdServiceImpl:
    def get_ads(self, request):
        keys = request.get("context_keys", ["default"])
        return {
            "ads": [
                {"redirect_url": f"/shop/{k}", "text": f"Deals on {k}!"}
                for k in keys
            ]
        }


class CheckoutServiceImpl:
    """THE coupling artifact: Checkout orchestrates four downstreams.

    Compare with :class:`repro.apps.retail.knactors.CheckoutReconciler`,
    which holds zero stubs.
    """

    def __init__(self, env, tracer, currency_stub, payment_stub, shipping_stub,
                 email_stub):
        self.env = env
        self.tracer = tracer
        self.currency = currency_stub
        self.payment = payment_stub
        self.shipping = shipping_stub
        self.email = email_stub
        self._counter = 0

    def place_order(self, request):
        self._counter += 1
        order_id = f"o{self._counter:05d}"
        items = request.get("items", [])
        cost = sum(item.get("price_usd", 0.0) for item in items)
        currency_code = request.get("currency_code", "USD")

        # 1. Convert the cart total into the user's currency.
        money = yield self.currency.convert(
            {"from": {"amount": cost, "currency_code": "USD"},
             "to_code": currency_code}
        )
        # 2. Charge the card.
        charge = yield self.payment.charge(
            {"amount": money["amount"], "currency_code": currency_code,
             "card_token": request.get("card_token", "")}
        )
        # 3. Create the shipment (the measured sub-request of Table 2).
        method = "air" if cost > 1000 else "ground"
        self.tracer.record("rpc", "shiporder.begin", order=order_id)
        shipment = yield self.shipping.ship_order(
            {"items": [{"name": item["name"]} for item in items],
             "address": request.get("address", ""),
             "method": method}
        )
        self.tracer.record("rpc", "shiporder.end", order=order_id)
        # 4. Send the confirmation email (fire-and-forget tolerated).
        try:
            yield self.email.send_order_confirmation(
                {"email": request.get("email", ""), "order_id": order_id,
                 "tracking_id": shipment["tracking_id"]}
            )
        except RPCStatusError:
            pass
        total = round(money["amount"] + shipment["shipping_cost"], 4)
        return {
            "order_id": order_id,
            "tracking_id": shipment["tracking_id"],
            "transaction_id": charge["transaction_id"],
            "total_cost": total,
        }


@dataclass
class RetailRpcApp:
    """A built instance of the RPC retail app."""

    env: Environment
    network: Network
    tracer: Tracer
    servers: dict
    idls: dict
    checkout_stub: object
    impls: dict = field(default_factory=dict)

    @classmethod
    def build(cls, env=None, seed=7):
        env = env if env is not None else Environment()
        network = Network(env, default_latency=config.NETWORK_HOP)
        tracer = Tracer(env)
        idls = {
            name: parse_idl(text)
            for name, (_file, text) in protos.ALL_PROTOS.items()
        }
        servers = {}

        def server_for(service, location):
            server = RPCServer(env, network, location)
            server.dispatch_overhead = config.RPC_DISPATCH_OVERHEAD
            servers[service] = server
            return server

        def stub_for(service, client_location):
            channel = RPCChannel(env, servers[service], client_location)
            return build_client_class(idls[service], service)(channel)

        shipping_impl = ShippingServiceImpl(env, tracer, seed=seed)
        shipping_server = server_for("ShippingService", "shipping")
        shipping_server.register(
            "ShippingService", "GetQuote", shipping_impl.get_quote,
            idl=idls["ShippingService"],
        )
        shipping_server.register(
            "ShippingService", "ShipOrder", shipping_impl.ship_order,
            idl=idls["ShippingService"],
        )

        payment_impl = PaymentServiceImpl(env)
        server_for("PaymentService", "payment").register(
            "PaymentService", "Charge", payment_impl.charge,
            idl=idls["PaymentService"],
        )

        currency_impl = CurrencyServiceImpl()
        currency_server = server_for("CurrencyService", "currency")
        currency_server.register(
            "CurrencyService", "Convert", currency_impl.convert,
            idl=idls["CurrencyService"],
        )
        currency_server.register(
            "CurrencyService", "GetSupportedCurrencies",
            currency_impl.get_supported_currencies,
            idl=idls["CurrencyService"],
        )

        email_impl = EmailServiceImpl(env)
        server_for("EmailService", "email").register(
            "EmailService", "SendOrderConfirmation",
            email_impl.send_order_confirmation,
            idl=idls["EmailService"],
        )

        catalog_impl = ProductCatalogServiceImpl()
        catalog_server = server_for("ProductCatalogService", "productcatalog")
        for method, handler in (
            ("ListProducts", catalog_impl.list_products),
            ("GetProduct", catalog_impl.get_product),
            ("SearchProducts", catalog_impl.search_products),
        ):
            catalog_server.register(
                "ProductCatalogService", method, handler,
                idl=idls["ProductCatalogService"],
            )

        cart_impl = CartServiceImpl()
        cart_server = server_for("CartService", "cart")
        for method, handler in (
            ("AddItem", cart_impl.add_item),
            ("GetCart", cart_impl.get_cart),
            ("EmptyCart", cart_impl.empty_cart),
        ):
            cart_server.register(
                "CartService", method, handler, idl=idls["CartService"]
            )

        recommendation_impl = RecommendationServiceImpl()
        server_for("RecommendationService", "recommendation").register(
            "RecommendationService", "ListRecommendations",
            recommendation_impl.list_recommendations,
            idl=idls["RecommendationService"],
        )

        ad_impl = AdServiceImpl()
        server_for("AdService", "ad").register(
            "AdService", "GetAds", ad_impl.get_ads, idl=idls["AdService"]
        )

        checkout_impl = CheckoutServiceImpl(
            env,
            tracer,
            currency_stub=stub_for("CurrencyService", "checkout"),
            payment_stub=stub_for("PaymentService", "checkout"),
            shipping_stub=stub_for("ShippingService", "checkout"),
            email_stub=stub_for("EmailService", "checkout"),
        )
        checkout_server = server_for("CheckoutService", "checkout")
        checkout_server.register(
            "CheckoutService", "PlaceOrder", checkout_impl.place_order,
            idl=idls["CheckoutService"],
        )

        frontend_checkout_stub = stub_for("CheckoutService", "frontend")
        return cls(
            env=env,
            network=network,
            tracer=tracer,
            servers=servers,
            idls=idls,
            checkout_stub=frontend_checkout_stub,
            impls={
                "shipping": shipping_impl,
                "payment": payment_impl,
                "currency": currency_impl,
                "email": email_impl,
                "checkout": checkout_impl,
                "productcatalog": catalog_impl,
                "cart": cart_impl,
                "recommendation": recommendation_impl,
                "ad": ad_impl,
            },
        )

    def place_order(self, order_data):
        """Frontend places an order through the Checkout API."""
        items = [
            {"name": item["name"], "price_usd": item["priceUSD"]}
            for item in order_data["items"].values()
        ]
        request = {
            "user_id": "u-1",
            "email": order_data.get("email", "user@example.com"),
            "address": order_data["address"],
            "currency_code": order_data["currency"],
            "card_token": order_data.get("cardToken", "tok"),
            "items": items,
        }
        self.tracer.record("request", "start", key="rpc")
        return self.checkout_stub.place_order(request)

    def rpc_method_count(self):
        """Composition surface: registered rpc methods across services."""
        return sum(len(s._methods) for s in self.servers.values())
