"""The storefront read path: an order-details page as a composed view.

The retail app writes through three knactors -- Checkout owns the
order, Shipping the shipment, Payment the charge -- all keyed by the
same order id.  The storefront's "order details" page needs all three
*composed*: under an RPC-composition architecture that is 3 sequential
round trips per order (and a page listing N orders pays 3N), which is
exactly the read-side fan-out the paper's data-centric composition
argument targets.

This module declares that page as a :class:`~repro.federation.ComposedView`
(``storefront-orders``) over the three stores, registers it on the
app's exchange, and exposes the page read through the unified
``de.query`` API -- so the federation planner serves it from the
incrementally maintained materialized copy whenever its staleness is
within the page's freshness bound, and falls back to scatter-gather
federated reads when it is not.

:func:`rpc_order_details` implements the RPC-composition baseline
against the *same* stores and masks -- the benchmark's control arm.
"""

from repro.errors import NotFoundError
from repro.federation import ComposedView, ViewSource

#: The composed view: order root, shipment and charge joined by order id.
STOREFRONT_VIEW_NAME = "storefront-orders"

#: The page principal every storefront read acts as.
STOREFRONT_PRINCIPAL = "storefront"


def storefront_view(freshness=0.25):
    """The order-details page spec (checkout |x| shipping |x| payment)."""
    return ComposedView(
        name=STOREFRONT_VIEW_NAME,
        sources=(
            ViewSource(alias="order", store="knactor-checkout"),
            ViewSource(alias="shipment", store="knactor-shipping"),
            ViewSource(alias="charge", store="knactor-payment"),
        ),
        freshness=freshness,
        description="storefront order-details page",
    )


def attach_storefront(app, *, freshness=0.25, materialize=True,
                      principal=STOREFRONT_PRINCIPAL):
    """Register the storefront view on a built retail app.

    Wires the obs plane (per-view metrics + ``view_*`` spans) when the
    app was built with ``obs=True``, and grants ``principal`` the
    ``viewer`` role on the view.  Returns the
    :class:`~repro.federation.RegisteredView`.
    """
    obs = app.runtime.obs
    registered = app.de.register_view(
        storefront_view(freshness),
        materialize=materialize,
        registry=obs.registry if obs is not None else None,
        tracer=obs.causal if obs is not None else None,
    )
    app.de.grant(principal, STOREFRONT_VIEW_NAME, role="viewer")
    return registered


def order_details(app, keys=None, *, principal=STOREFRONT_PRINCIPAL,
                  freshness=None, consistency=None, ops=(), strategy=None):
    """One page read through the unified query API; process event."""
    return app.de.query(
        STOREFRONT_VIEW_NAME, ops=ops, freshness=freshness,
        consistency=consistency, principal=principal, keys=keys,
        strategy=strategy,
    )


def rpc_order_details(app, keys, *, principal=STOREFRONT_PRINCIPAL):
    """The RPC-composition baseline: 3 sequential GETs per order.

    Reads the same three stores through reader handles bound to the
    same principal (so the same secret masks apply) and composes the
    same record shape as the view -- but the way a service-oriented
    storefront would: order, then shipment, then charge, per key, no
    fan-out parallelism and no reuse across page loads.  Returns a
    process event yielding the composed records.
    """
    de = app.de
    handles = {
        "order": de.handle("knactor-checkout", principal=principal),
        "shipment": de.handle("knactor-shipping", principal=principal),
        "charge": de.handle("knactor-payment", principal=principal),
    }

    def page(env):
        records = []
        for key in keys:
            try:
                order = yield handles["order"].get(key)
            except NotFoundError:
                continue
            row = {**order["data"], "_key": key}
            for alias in ("shipment", "charge"):
                try:
                    view = yield handles[alias].get(key)
                except NotFoundError:
                    row[alias] = None
                else:
                    row[alias] = {**view["data"], "_key": key}
            records.append(row)
        return records

    return app.env.process(page(app.env))


def grant_rpc_baseline(app, *, principal=STOREFRONT_PRINCIPAL):
    """Reader grants the RPC baseline needs on the three source stores."""
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
        app.de.grant(principal, store, role="reader")
