"""Data-store schemas for the 11 retail knactors.

``CHECKOUT`` reproduces the paper's Fig. 5 exactly (field names, types,
and ``+kr: external`` annotations), extended with the payment-card token
as a ``secret`` field to exercise field-level access control.
"""

#: Fig. 5: the Checkout knactor's order store.
CHECKOUT = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
status: string
email: string
cardToken: string # +kr: secret
"""

#: Shipping holds shipments created by the integrator; its reconciler
#: produces the id (tracking number) and quote by calling the carrier.
SHIPPING = """\
schema: OnlineRetail/v1/Shipping/Shipment
items: array # +kr: external
addr: string # +kr: external
method: string # +kr: external
id: string
quote:
  price: number
  currency: string
status: string
"""

#: Payment charges the given amount; its reconciler produces the id.
PAYMENT = """\
schema: OnlineRetail/v1/Payment/Charge
amount: number # +kr: external
currency: string # +kr: external
id: string
status: string
"""

CART = """\
schema: OnlineRetail/v1/Cart/Cart
userID: string
items: object
checkedOut: boolean
"""

PRODUCT_CATALOG = """\
schema: OnlineRetail/v1/ProductCatalog/Product
name: string
priceUSD: number
categories: array<string>
inStock: boolean
"""

CURRENCY = """\
schema: OnlineRetail/v1/Currency/Rate
code: string
ratePerUSD: number
"""

EMAIL = """\
schema: OnlineRetail/v1/Email/Notification
to: string # +kr: external
template: string # +kr: external
orderRef: string # +kr: external
sent: boolean
"""

FRONTEND = """\
schema: OnlineRetail/v1/Frontend/Session
userID: string
page: string
cartRef: string
"""

RECOMMENDATION = """\
schema: OnlineRetail/v1/Recommendation/Suggestion
userID: string # +kr: external
productIDs: array<string>
"""

AD = """\
schema: OnlineRetail/v1/Ad/Placement
context: string # +kr: external
creative: string
"""

LOADGEN = """\
schema: OnlineRetail/v1/LoadGen/Run
rate: number
totalOrders: number
issued: number
"""

#: knactor name -> (hosted store name, schema text)
ALL_SCHEMAS = {
    "checkout": CHECKOUT,
    "shipping": SHIPPING,
    "payment": PAYMENT,
    "cart": CART,
    "productcatalog": PRODUCT_CATALOG,
    "currency": CURRENCY,
    "email": EMAIL,
    "frontend": FRONTEND,
    "recommendation": RECOMMENDATION,
    "ad": AD,
    "loadgen": LOADGEN,
}
