"""A live HTTP gateway in front of the retail Data Exchange.

This is the "servable system" face of the repro: the knactor retail app
built on the realtime backend, fronted by a :class:`repro.rest.RestServer`
bound to a real TCP port.  A POST creates an order in Checkout's store
and the integrator cast does the rest -- the gateway holds none of the
composition logic, exactly the paper's point.

Routes:

- ``GET  /healthz``           liveness + backend + shard count
- ``POST /orders``            create an order (body: order fields,
  optional ``key`` -- minted/namespaced under ``order/``); 201 with
  the stored view
- ``GET  /orders/{key}``      current order state
- ``GET  /metrics``           orders placed / fulfilled, requests served

Use :func:`serve_retail` (or ``knactor serve retail --realtime``) to
bind and drive it.
"""

from itertools import count
from urllib.parse import unquote

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.core.optimizer import K_APISERVER
from repro.errors import ConfigurationError, ReproError
from repro.rest import HTTPError, Response, RestServer


class RetailGateway:
    """Routes HTTP verbs onto a built :class:`RetailKnactorApp`."""

    def __init__(self, app, location="retail-gateway"):
        self.app = app
        self._keys = count(1)
        self.server = RestServer(app.env, app.runtime.network, location)
        self.server.route("GET", "/healthz", self.healthz)
        self.server.route("POST", "/orders", self.create_order)
        self.server.route("GET", "/orders/{key}", self.get_order)
        self.server.route("GET", "/metrics", self.metrics)

    def serve(self, host="127.0.0.1", port=0):
        """Bind the gateway to a real TCP socket (realtime only)."""
        return self.server.serve(host=host, port=port)

    # -- handlers ----------------------------------------------------------

    def healthz(self, request):
        return {
            "status": "ok",
            "backend": getattr(self.app.env, "backend", "sim"),
            "knactors": len(self.app.runtime.knactors),
        }

    def create_order(self, request):
        body = dict(request.body or {})
        if not body:
            raise HTTPError(400, "order body required")
        # The DXG binds objects by the key's kind/cid structure, so an
        # order the Cast should fulfil must live under the "order" kind.
        key = body.pop("key", None)
        if key is None:
            key = f"order/g{next(self._keys):05d}"
        elif "/" not in key:
            key = f"order/{key}"
        elif not key.startswith("order/"):
            raise HTTPError(400, f"order keys live under 'order/', got {key!r}")
        try:
            yield self.app.place_order(key, body)
        except ReproError as exc:
            raise HTTPError(400, str(exc))
        view = yield self.app.order(key)
        return Response(201, {"key": key, "order": view["data"],
                              "revision": view["revision"]})

    def get_order(self, request):
        # Store keys may contain '/' (the workload's "order/o00001");
        # clients percent-encode them into one path segment.
        key = unquote(request.params["key"])
        try:
            view = yield self.app.order(key)
        except ReproError:
            raise HTTPError(404, f"no order {key!r}")
        return {"key": key, "order": view["data"], "revision": view["revision"]}

    def metrics(self, request):
        handle = self.app.runtime.handle_of("checkout")
        views = yield handle.list()
        fulfilled = sum(
            1 for v in views if v["data"].get("status") == "fulfilled"
        )
        return {
            "orders_placed": len(self.app.orders_placed),
            "orders_stored": len(views),
            "orders_fulfilled": fulfilled,
            "requests_served": self.server.requests_served,
        }


def serve_retail(host="127.0.0.1", port=0, profile=K_APISERVER, shards=1,
                 factor=1.0, seed=7):
    """Build the retail app on the realtime backend and bind a gateway.

    Returns ``(app, gateway, listener)`` with the socket already bound
    (read ``listener.port``).  Drive traffic by running the kernel:
    ``app.env.run()`` idles waiting for connections until
    ``listener.stop()``.
    """
    if factor < 0:
        raise ConfigurationError(f"negative time factor {factor}")
    from repro.realtime import RealtimeEnvironment

    env = RealtimeEnvironment(factor=factor)
    app = RetailKnactorApp.build(
        env=env, profile=profile, seed=seed, shards=shards
    )
    gateway = RetailGateway(app)
    listener = gateway.serve(host=host, port=port)
    return app, gateway, listener
