"""Protobuf-style IDL definitions for the RPC (API-centric) variant.

These mirror the 11-tier microservices demo the paper adapts: 15 rpc
methods across 9 service-exposing tiers (Frontend and LoadGen are pure
clients).  They are *real artifacts*: the RPC app parses them, generates
stubs from them, and the composition-cost benchmark counts them.
"""

PRODUCT_CATALOG_PROTO = """\
syntax = "proto3";
package onlineretail.productcatalog.v1;

message Product {
  string id = 1;
  string name = 2;
  double price_usd = 3;
  repeated string categories = 4;
}

message ListProductsRequest {
  int32 page_size = 1;
}

message ListProductsResponse {
  repeated Product products = 1;
}

message GetProductRequest {
  string id = 1;
}

message SearchProductsRequest {
  string query = 1;
}

message SearchProductsResponse {
  repeated Product results = 1;
}

service ProductCatalogService {
  rpc ListProducts(ListProductsRequest) returns (ListProductsResponse);
  rpc GetProduct(GetProductRequest) returns (Product);
  rpc SearchProducts(SearchProductsRequest) returns (SearchProductsResponse);
}
"""

CART_PROTO = """\
syntax = "proto3";
package onlineretail.cart.v1;

message CartItem {
  string product_id = 1;
  int32 quantity = 2;
}

message AddItemRequest {
  string user_id = 1;
  CartItem item = 2;
}

message GetCartRequest {
  string user_id = 1;
}

message Cart {
  string user_id = 1;
  repeated CartItem items = 2;
}

message EmptyCartRequest {
  string user_id = 1;
}

message Empty {
}

service CartService {
  rpc AddItem(AddItemRequest) returns (Empty);
  rpc GetCart(GetCartRequest) returns (Cart);
  rpc EmptyCart(EmptyCartRequest) returns (Empty);
}
"""

CURRENCY_PROTO = """\
syntax = "proto3";
package onlineretail.currency.v1;

message Money {
  double amount = 1;
  string currency_code = 2;
}

message ConvertRequest {
  Money from = 1;
  string to_code = 2;
}

message GetSupportedCurrenciesRequest {
}

message GetSupportedCurrenciesResponse {
  repeated string currency_codes = 1;
}

service CurrencyService {
  rpc GetSupportedCurrencies(GetSupportedCurrenciesRequest) returns (GetSupportedCurrenciesResponse);
  rpc Convert(ConvertRequest) returns (Money);
}
"""

PAYMENT_PROTO = """\
syntax = "proto3";
package onlineretail.payment.v1;

message ChargeRequest {
  double amount = 1;
  string currency_code = 2;
  string card_token = 3;
}

message ChargeResponse {
  string transaction_id = 1;
}

service PaymentService {
  rpc Charge(ChargeRequest) returns (ChargeResponse);
}
"""

#: The Shipping service's v1 API (Fig. 3a's /ShipOrder).
SHIPPING_PROTO = """\
syntax = "proto3";
package onlineretail.shipping.v1;

message Item {
  string name = 1;
}

message GetQuoteRequest {
  string address = 1;
  repeated Item items = 2;
}

message GetQuoteResponse {
  double cost_usd = 1;
}

message ShipOrderRequest {
  repeated Item items = 1;
  string address = 2;
  string method = 3;
}

message ShipOrderResponse {
  string tracking_id = 1;
  double shipping_cost = 2;
  string currency = 3;
}

service ShippingService {
  rpc GetQuote(GetQuoteRequest) returns (GetQuoteResponse);
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
}
"""

#: Task T3's schema evolution: v2 restructures the request (nested
#: destination message, renamed fields) -- a breaking change clients must
#: adapt to.
SHIPPING_PROTO_V2 = """\
syntax = "proto3";
package onlineretail.shipping.v2;

message Item {
  string product_name = 1;
  int32 quantity = 2;
}

message Destination {
  string street_address = 1;
  string zip_code = 2;
}

message GetQuoteRequest {
  Destination destination = 1;
  repeated Item items = 2;
}

message GetQuoteResponse {
  double cost_usd = 1;
}

message ShipOrderRequest {
  repeated Item items = 1;
  Destination destination = 2;
  string service_level = 3;
}

message ShipOrderResponse {
  string tracking_id = 1;
  double shipping_cost = 2;
  string currency = 3;
}

service ShippingService {
  rpc GetQuote(GetQuoteRequest) returns (GetQuoteResponse);
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
}
"""

EMAIL_PROTO = """\
syntax = "proto3";
package onlineretail.email.v1;

message SendOrderConfirmationRequest {
  string email = 1;
  string order_id = 2;
  string tracking_id = 3;
}

message Empty {
}

service EmailService {
  rpc SendOrderConfirmation(SendOrderConfirmationRequest) returns (Empty);
}
"""

CHECKOUT_PROTO = """\
syntax = "proto3";
package onlineretail.checkout.v1;

message OrderItem {
  string name = 1;
  double price_usd = 2;
}

message PlaceOrderRequest {
  string user_id = 1;
  string email = 2;
  string address = 3;
  string currency_code = 4;
  string card_token = 5;
  repeated OrderItem items = 6;
}

message PlaceOrderResponse {
  string order_id = 1;
  string tracking_id = 2;
  string transaction_id = 3;
  double total_cost = 4;
}

service CheckoutService {
  rpc PlaceOrder(PlaceOrderRequest) returns (PlaceOrderResponse);
}
"""

RECOMMENDATION_PROTO = """\
syntax = "proto3";
package onlineretail.recommendation.v1;

message ListRecommendationsRequest {
  string user_id = 1;
  repeated string product_ids = 2;
}

message ListRecommendationsResponse {
  repeated string product_ids = 1;
}

service RecommendationService {
  rpc ListRecommendations(ListRecommendationsRequest) returns (ListRecommendationsResponse);
}
"""

AD_PROTO = """\
syntax = "proto3";
package onlineretail.ad.v1;

message AdRequest {
  repeated string context_keys = 1;
}

message Ad {
  string redirect_url = 1;
  string text = 2;
}

message AdResponse {
  repeated Ad ads = 1;
}

service AdService {
  rpc GetAds(AdRequest) returns (AdResponse);
}
"""

#: service name -> (proto file name, proto text)
ALL_PROTOS = {
    "ProductCatalogService": ("productcatalog.proto", PRODUCT_CATALOG_PROTO),
    "CartService": ("cart.proto", CART_PROTO),
    "CurrencyService": ("currency.proto", CURRENCY_PROTO),
    "PaymentService": ("payment.proto", PAYMENT_PROTO),
    "ShippingService": ("shipping.proto", SHIPPING_PROTO),
    "EmailService": ("email.proto", EMAIL_PROTO),
    "CheckoutService": ("checkout.proto", CHECKOUT_PROTO),
    "RecommendationService": ("recommendation.proto", RECOMMENDATION_PROTO),
    "AdService": ("ad.proto", AD_PROTO),
}
