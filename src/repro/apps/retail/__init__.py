"""The online retail application (paper §2 example 1, §4 evaluation).

Eleven knactors, mirroring the 11-tier microservices demo the paper
adapts: Frontend, Cart, ProductCatalog, Currency, Payment, Shipping,
Email, Checkout, Recommendation, Ad, and LoadGen.  Two complete variants:

- :mod:`repro.apps.retail.rpc_app`     -- API-centric (gRPC-style stubs,
  synchronous orchestration inside Checkout),
- :mod:`repro.apps.retail.knactor_app` -- data-centric (externalized
  stores + the Fig. 6 Cast integrator).

Plus the measurement harnesses behind Tables 1 and 2:

- :mod:`repro.apps.retail.tasks`   -- T1/T2/T3 composition-cost artifacts,
- :mod:`repro.apps.retail.measure` -- per-stage latency extraction.

And the storefront read path (:mod:`repro.apps.retail.storefront`): the
order-details page as a federated :class:`~repro.federation.ComposedView`
over checkout/shipping/payment, with an RPC-composition baseline.
"""

from repro.apps.retail.knactor_app import RETAIL_DXG, RetailKnactorApp
from repro.apps.retail.rpc_app import RetailRpcApp
from repro.apps.retail.storefront import (
    STOREFRONT_PRINCIPAL,
    STOREFRONT_VIEW_NAME,
    attach_storefront,
    order_details,
    rpc_order_details,
    storefront_view,
)
from repro.apps.retail.workload import OrderWorkload

__all__ = [
    "RETAIL_DXG",
    "OrderWorkload",
    "RetailKnactorApp",
    "RetailRpcApp",
    "STOREFRONT_PRINCIPAL",
    "STOREFRONT_VIEW_NAME",
    "attach_storefront",
    "order_details",
    "rpc_order_details",
    "storefront_view",
]
