"""Stage-latency measurement for Table 2.

Reconstructs the paper's per-stage breakdown of a shipment request from
the trace streams the framework components emit:

- ``t0``  Checkout initiates the order write (the write itself is
  Checkout->integrator data movement, so it belongs to C-I),
- ``t1``  the Cast integrator begins processing that correlation id,
- ``t2``  the Cast finishes local compute and starts the data exchange,
- ``t3``  the shipment object commits in Shipping's store,
- ``t4``  Shipping's reconciler observes the shipment,
- ``t5``  the carrier call completes (``fedex.done``).

Stages (paper columns):

- ``C-I``  = t1 - t0   (Checkout -> integrator data movement),
- ``I``    = t2 - t1   (integrator execution); for the push-down setup
  the integrator executes inside the store, so ``I`` = t3 - t2 and
  ``I-S`` = t4 - t3 (local write + notification),
- ``I-S``  = t4 - t2   (integrator -> Shipping data movement),
- ``S``    = t5 - t4   (shipment processing),
- ``Prop.``= t4 - t0, ``Total`` = t5 - t0.
"""

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.rpc_app import RetailRpcApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER, K_REDIS, K_REDIS_UDF
from repro.errors import ConfigurationError
from repro.metrics.latency import StageBreakdown

#: Paper Table 2 rows (milliseconds), for side-by-side reporting.
PAPER_TABLE2 = {
    "RPC": {"C-I": None, "I": None, "I-S": None, "S": 446.0,
            "Prop.": 1.8, "Total": 447.8},
    "K-apiserver": {"C-I": 20.6, "I": 0.01, "I-S": 12.5, "S": 453.0,
                    "Prop.": 33.1, "Total": 486.1},
    "K-redis": {"C-I": 3.2, "I": 0.06, "I-S": 2.7, "S": 444.0,
                "Prop.": 5.8, "Total": 449.8},
    "K-redis-udf": {"C-I": 2.1, "I": 0.7, "I-S": 0.1, "S": 450.0,
                    "Prop.": 2.9, "Total": 452.9},
}

PROFILES = {
    "K-apiserver": K_APISERVER,
    "K-redis": K_REDIS,
    "K-redis-udf": K_REDIS_UDF,
}

#: The measured configuration: "we benchmark the Cast between the
#: Checkout and Shipping knactors" -- Payment is not on the bench path.
SHIPMENT_DXG = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    trackingID: S.id
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""


def run_knactor_setup(setup, orders=20, spacing=2.0, seed=7):
    """Run one Knactor setup and return its :class:`StageBreakdown`."""
    try:
        profile = PROFILES[setup]
    except KeyError:
        raise ConfigurationError(
            f"unknown setup {setup!r} (have {sorted(PROFILES)})"
        ) from None
    app = RetailKnactorApp.build(
        profile=profile, seed=seed, with_notify=False, dxg=SHIPMENT_DXG
    )
    workload = OrderWorkload(seed=seed)
    env = app.env

    def driver(env):
        for _ in range(orders):
            key, data = workload.next_order()
            yield app.place_order(key, data)
            yield env.timeout(spacing)

    env.process(driver(env))
    app.run_until_quiet(max_seconds=orders * spacing + 60.0)
    return extract_stages(app, setup, pushdown=profile.pushdown)


def extract_stages(app, setup, pushdown):
    tracer = app.tracer
    breakdown = StageBreakdown(setup)
    t0_by_key = tracer.timestamps("request", "start", key_attr="key")
    commit_by_key = tracer.timestamps("store", "commit", key_attr="key")
    cast_begin = _first_by_attr(tracer, "cast", "begin", "cid")
    writes_begin = _first_by_attr(tracer, "cast", "writes.begin", "cid")
    observed = _shipping_observed(tracer)
    fedex_done = _first_by_attr(tracer, "reconciler", "fedex.done", "key")
    order_read = _first_order_read(tracer)

    for order_key in app.orders_placed:
        cid = order_key.split("/", 1)[1]
        t0 = t0_by_key.get(order_key)  # checkout initiates the order write
        t1 = cast_begin.get(cid)
        t2 = writes_begin.get(cid)
        t3 = commit_by_key.get(f"knactor-shipping/{cid}")
        t4 = observed.get(cid)
        t5 = fedex_done.get(cid)
        if None in (t0, t1, t2, t3, t4, t5):
            continue  # request did not complete within the horizon
        if pushdown:
            stage_i = t3 - t2
            stage_is = t4 - t3
        else:
            # The integrator's read of the *order* is Checkout<->integrator
            # data movement; attribute it to C-I, not I-S.
            read_c = order_read.get(cid, 0.0)
            stage_i = t2 - t1
            stage_is = (t4 - t2) - read_c
            t1 = t1 + 0.0  # keep t1 for Prop.; C-I grows by read_c below
        stage_ci = (t1 - t0) + (0.0 if pushdown else order_read.get(cid, 0.0))
        breakdown.add_request(
            {
                "C-I": stage_ci,
                "I": stage_i,
                "I-S": stage_is,
                "S": t5 - t4,
                "Prop.": t4 - t0,
                "Total": t5 - t0,
            }
        )
    return breakdown


def _first_order_read(tracer):
    """Duration of the integrator's first read of alias C, per cid."""
    out = {}
    for event in tracer.events:
        if (
            event.category == "exchange"
            and event.name == "read.done"
            and event.attrs.get("alias") == "C"
        ):
            cid = event.attrs.get("cid")
            if cid is not None and cid not in out:
                out[cid] = event.attrs.get("duration", 0.0)
    return out


def run_rpc_setup(orders=20, spacing=2.0, seed=7):
    """Run the RPC baseline; only S / Prop. / Total are defined for it."""
    app = RetailRpcApp.build(seed=seed)
    workload = OrderWorkload(seed=seed)
    env = app.env
    breakdown = StageBreakdown("RPC")

    def driver(env):
        for _ in range(orders):
            _key, data = workload.next_order()
            begin_events = len(_ship_events(app, "shiporder.begin"))
            yield app.place_order(data)
            begins = _ship_events(app, "shiporder.begin")
            ends = _ship_events(app, "shiporder.end")
            fedex_b = _ship_events(app, "fedex.begin")
            fedex_d = _ship_events(app, "fedex.done")
            t_begin = begins[begin_events]
            t_end = ends[begin_events]
            service = fedex_d[begin_events] - fedex_b[begin_events]
            breakdown.add_request(
                {
                    "S": service,
                    "Prop.": (t_end - t_begin) - service,
                    "Total": t_end - t_begin,
                }
            )
            yield env.timeout(spacing)

    env.run(until=env.process(driver(env)))
    return breakdown


def _ship_events(app, name):
    return app.tracer.timestamps("rpc", name)


def _first_by_attr(tracer, category, name, attr):
    return tracer.timestamps(category, name, key_attr=attr)


def _shipping_observed(tracer):
    """First 'observed' per shipment key, from the shipping reconciler."""
    out = {}
    for event in tracer.events:
        if (
            event.category == "reconciler"
            and event.name == "observed"
            and event.attrs.get("knactor") == "shipping"
        ):
            key = event.attrs.get("key")
            if key is not None and key not in out:
                out[key] = event.time
    return out


def run_table2(orders=20, spacing=2.0, seed=7, setups=None):
    """Run every Table 2 row; returns {setup: StageBreakdown}."""
    rows = {}
    rows["RPC"] = run_rpc_setup(orders=orders, spacing=spacing, seed=seed)
    for setup in setups or PROFILES:
        rows[setup] = run_knactor_setup(
            setup, orders=orders, spacing=spacing, seed=seed
        )
    return rows
