"""The data-centric (Knactor) variant of the online retail app.

Eleven knactors on one Object Data Exchange, composed by a Cast
integrator whose DXG reproduces the paper's Fig. 6 (Checkout x Shipping x
Payment), plus a second Cast that queues a confirmation email once the
order is fulfilled -- composition logic consolidated into two integrator
modules instead of scattered across service codebases.
"""

from dataclasses import dataclass, field, replace

from repro import config
from repro.apps.retail import knactors as recs
from repro.apps.retail.schemas import ALL_SCHEMAS
from repro.core import Cast, Knactor, KnactorRuntime, StoreBinding, create_environment
from repro.core.optimizer import K_APISERVER, OptimizationProfile
from repro.errors import ConfigurationError
from repro.exchange import ObjectDE
from repro.flow import INTEGRATOR, FlowConfig
from repro.obs.context import use
from repro.simnet import Environment, FixedLatency, Network, Tracer
from repro.store import ApiServer, MemKV, ShardedStore
from repro.store.ring import coerce_shards_knob

#: Fig. 6, verbatim: the data exchange graph composing Checkout,
#: Shipping, and Payment.
RETAIL_DXG = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    # other fields in the data store: id
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    # other fields in the data store: id, quote
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""

#: A second integrator: confirmation email once the order fulfils.
NOTIFY_DXG = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  E: OnlineRetail/v1/Email/knactor-email
Kinds:
  C: [order]
DXG:
  E.notice:
    to: C.order.email if C.order.status == 'fulfilled' else None
    template: >
      'order-shipped' if C.order.status == 'fulfilled' else None
    orderRef: cid if C.order.status == 'fulfilled' else None
"""

_RECONCILERS = {
    "checkout": recs.CheckoutReconciler,
    "shipping": recs.ShippingReconciler,
    "payment": recs.PaymentReconciler,
    "email": recs.EmailReconciler,
    "cart": recs.CartReconciler,
    "productcatalog": recs.ProductCatalogReconciler,
    "currency": recs.CurrencyReconciler,
    "recommendation": recs.RecommendationReconciler,
    "ad": recs.AdReconciler,
    "frontend": recs.FrontendReconciler,
    "loadgen": recs.LoadGenReconciler,
}


@dataclass
class RetailKnactorApp:
    """A built, started instance of the Knactor retail app."""

    env: Environment
    runtime: KnactorRuntime
    de: ObjectDE
    cast: Cast
    notify_cast: Cast
    profile: OptimizationProfile
    tracer: Tracer = None
    orders_placed: list = field(default_factory=list)
    flow: FlowConfig = None
    #: Causal trace id of the most recent ``place_order`` (obs plane
    #: attached only) -- load drivers link latency exemplars through it.
    last_trace_id: str = None

    @classmethod
    def build(cls, env=None, profile=K_APISERVER, seed=7, with_notify=True,
              dxg=None, retry_policy=None, shards=1, topology=None,
              watch_batch_window=0.0,
              zero_copy=True, delta_watch=False, obs=None, flow=None,
              mode=None, shape_latency=None):
        """Construct the full app under an optimization profile.

        ``dxg`` overrides the main integrator's spec (the Table 2 bench
        uses a Checkout x Shipping-only DXG, matching the paper's
        measured configuration).  ``retry_policy`` (a
        :class:`repro.faults.RetryPolicy`) is shared by every store
        client the exchange mints -- required for chaos runs, harmless
        otherwise.  ``topology`` (a :class:`repro.store.Topology`)
        hash-partitions the Object backend on a consistent-hash ring (a
        :class:`repro.store.ShardedStore`) and enables live resharding;
        the integer ``shards=N`` knob is a deprecated alias for
        ``topology=Topology(shards=N)``;
        ``watch_batch_window > 0`` (seconds) coalesces watch fan-out per
        watcher per window -- the scale-out hot path.  ``zero_copy``
        keeps store state as frozen structurally-shared views (reads
        alias, writes path-copy); ``delta_watch`` ships merge-patch
        deltas instead of full snapshots on the watch/replication plane.
        ``obs=True`` attaches a :class:`repro.obs.ObsPlane`: every
        ``place_order`` opens a causal trace that follows the order
        through stores, integrators, and reconcilers.  ``flow=True`` (or
        a :class:`repro.flow.FlowConfig`) turns on the backpressure
        plane end to end: credit windows on every watch the exchange
        mints, bounded reconciler work queues, and token-bucket + AIMD
        admission control at the store front door with the integrator
        casts in the high-priority class.  ``mode`` selects the
        execution backend when no ``env`` is given (``"sim"`` default,
        ``"realtime"`` for wall-clock execution); ``shape_latency``
        keeps (True) or zeroes (False) the *simulated* infrastructure
        latencies -- network hops, store-op costs, watch overhead -- and
        defaults to True on the sim backend and False on realtime,
        where the wall clock itself provides the time.  App-semantic
        service times (the FedEx carrier call) are kept either way.
        """
        if env is None:
            env = create_environment(mode if mode is not None else "sim")
        if shape_latency is None:
            shape_latency = getattr(env, "backend", "sim") == "sim"
        flow_cfg = None
        if flow:
            flow_cfg = flow if isinstance(flow, FlowConfig) else FlowConfig()
        hop = config.NETWORK_HOP if shape_latency else FixedLatency(0.0)
        network = Network(env, default_latency=hop)
        tracer = Tracer(env)
        runtime = KnactorRuntime(
            env, network=network, tracer=tracer, obs=obs, mode=mode
        )

        if profile.backend == "apiserver":
            calibration = config.APISERVER
            server_cls = ApiServer
        elif profile.backend == "memkv":
            calibration = config.MEMKV
            server_cls = MemKV
        else:
            raise ConfigurationError(f"unknown backend {profile.backend!r}")
        if not shape_latency:
            calibration = config.zero_calibration(calibration)

        def make_backend(location):
            return server_cls(
                env, network, location=location,
                ops=calibration.ops, watch_overhead=calibration.watch_overhead,
                tracer=tracer, watch_batch_window=watch_batch_window,
                zero_copy=zero_copy, delta_watch=delta_watch,
            )

        if topology is None and shards != 1:
            topology = coerce_shards_knob(
                shards, "RetailKnactorApp.build(shards=)"
            )
        if topology is not None:
            backend = ShardedStore(
                topology=topology, name="object-backend",
                shard_factory=lambda i: make_backend(f"object-backend-{i}"),
            )
        else:
            backend = make_backend("object-backend")
        if flow_cfg is not None:
            # The integrator casts outrank knactor/bench traffic at the
            # admission front door; explicit overrides win.
            principals = {"retail-cast": INTEGRATOR, "notify-cast": INTEGRATOR}
            principals.update(flow_cfg.principals)
            flow_cfg = replace(flow_cfg, principals=principals)
            if isinstance(backend, ShardedStore):
                backend.set_admission(lambda: flow_cfg.build_admission(env))
            else:
                backend.admission = flow_cfg.build_admission(env)
        de = ObjectDE(
            env, backend, retry_policy=retry_policy,
            watch_credits=flow_cfg.watch_credits if flow_cfg else None,
            watch_overflow=flow_cfg.watch_overflow if flow_cfg else None,
        )
        runtime.add_exchange("object", de)

        for name, schema in ALL_SCHEMAS.items():
            reconciler_cls = _RECONCILERS[name]
            reconciler = (
                reconciler_cls(seed=seed) if name == "shipping" else reconciler_cls()
            )
            if flow_cfg is not None:
                reconciler.max_queue = flow_cfg.reconciler_queue
                reconciler.queue_overflow = flow_cfg.reconciler_overflow
            runtime.add_knactor(
                Knactor(
                    name,
                    [StoreBinding("default", "object", schema)],
                    reconciler=reconciler,
                )
            )

        # Grants: the integrators may read the involved stores and write
        # exactly the +kr: external fields.
        for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
            de.grant("retail-cast", store, role="integrator")
        cast = Cast(
            "retail-cast",
            dxg if dxg is not None else RETAIL_DXG,
            options=profile.executor_options(),
            pushdown=profile.pushdown,
            location=profile.integrator_location(backend.location, "retail-cast"),
        )
        runtime.add_integrator(cast)

        notify_cast = None
        if with_notify:
            de.grant("notify-cast", "knactor-checkout", role="reader")
            de.grant("notify-cast", "knactor-email", role="integrator")
            notify_cast = Cast(
                "notify-cast",
                NOTIFY_DXG,
                options=profile.executor_options(),
                location=profile.integrator_location(
                    backend.location, "notify-cast"
                ),
            )
            runtime.add_integrator(notify_cast)

        runtime.start()
        return cls(
            env=env,
            runtime=runtime,
            de=de,
            cast=cast,
            notify_cast=notify_cast,
            profile=profile,
            tracer=tracer,
            flow=flow_cfg,
        )

    # -- driving the app ---------------------------------------------------------

    def place_order(self, key, data):
        """Create an order in Checkout's store (a user checkout request).

        Returns the create-process event.  The rest of the flow -- the
        shipment, the charge, the back-filled order fields -- happens via
        the integrator with no further calls.  With the observability
        plane attached, the order gets a root causal trace (baggage:
        the order key) that the downstream exchange/reconcile chain
        extends automatically.
        """
        handle = self.runtime.handle_of("checkout")
        self.tracer.record("request", "start", key=key)
        self.orders_placed.append(key)
        obs = self.runtime.obs
        if obs is None:
            return handle.create(key, data)
        root = obs.causal.new_trace(
            "place-order", service="frontend", baggage={"order": key}, key=key,
        )
        self.last_trace_id = root.trace_id
        with use(root):
            proc = handle.create(key, data)
        # The root span covers the synchronous create round trip; the
        # causal chain it seeded keeps growing underneath it.
        proc.callbacks.append(
            lambda _evt: obs.causal.end_span(root, outcome="ok"))
        return proc

    def order(self, key):
        """Current order state (the owner's view); process event."""
        return self.runtime.handle_of("checkout").get(key)

    def shipment(self, key):
        return self.runtime.handle_of("shipping").get(key)

    def charge(self, key):
        return self.runtime.handle_of("payment").get(key)

    def run_until_quiet(self, max_seconds=120.0, settle=0.5):
        """Advance the simulation until no events fire for ``settle``s."""
        deadline = self.env.now + max_seconds
        while self.env.peek() <= deadline:
            horizon = min(self.env.peek() + settle, deadline)
            self.env.run(until=horizon)
        return self.env.now
