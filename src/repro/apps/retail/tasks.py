"""Composition tasks T1-T3 (Table 1), with real artifacts.

Each task is realized twice:

- **API-centric**: the concrete files a developer touches in the RPC
  variant -- proto definitions, stub wiring, orchestration code, configs,
  build targets, deployment manifests.  Proto artifacts are the very
  texts :mod:`repro.apps.retail.protos` parses; the orchestration diffs
  mirror :mod:`repro.apps.retail.rpc_app`.
- **Knactor**: the integrator (re)configuration -- a DXG fragment.

The benchmark counts operations / files / SLOC from these artifacts; it
does not hard-code the paper's numbers.
"""


from repro.apps.retail import protos
from repro.cluster import Cluster, Image, ImageRegistry, rolling_update
from repro.metrics.costmodel import CompositionTask, TaskComparison
from repro.metrics.sloc import Artifact
from repro.rpc import generate_client_stub, parse_idl

# ---------------------------------------------------------------------------
# Shared API-centric artifacts
# ---------------------------------------------------------------------------

_CHECKOUT_CLIENTS_T1 = '''\
"""Client wiring for Checkout's downstream services (generated stubs)."""
from generated import payment_pb2_grpc, shipping_pb2_grpc
import grpc

def payment_stub(endpoint):
    channel = grpc.insecure_channel(endpoint)
    return payment_pb2_grpc.PaymentServiceStub(channel)

def shipping_stub(endpoint):
    channel = grpc.insecure_channel(endpoint)
    return shipping_pb2_grpc.ShippingServiceStub(channel)
'''

_CHECKOUT_SERVICE_T1 = '''\
"""Checkout orchestration: charge the card, then create the shipment."""
from clients import payment_stub, shipping_stub
from generated import payment_pb2, shipping_pb2
from config import PAYMENT_ENDPOINT, SHIPPING_ENDPOINT

payment = payment_stub(PAYMENT_ENDPOINT)
shipping = shipping_stub(SHIPPING_ENDPOINT)

def place_order(order):
    charge_request = payment_pb2.ChargeRequest(
        amount=order.total_cost,
        currency_code=order.currency,
        card_token=order.card_token,
    )
    try:
        charge = payment.Charge(charge_request, timeout=5.0)
    except grpc.RpcError as error:
        raise CheckoutError(f"payment failed: {error.code()}") from error
    ship_request = shipping_pb2.ShipOrderRequest(
        items=[shipping_pb2.Item(name=item.name) for item in order.items],
        address=order.address,
        method="ground",
    )
    try:
        shipment = shipping.ShipOrder(ship_request, timeout=10.0)
    except grpc.RpcError as error:
        payment.Refund(payment_pb2.RefundRequest(id=charge.transaction_id))
        raise CheckoutError(f"shipping failed: {error.code()}") from error
    order.payment_id = charge.transaction_id
    order.tracking_id = shipment.tracking_id
    order.shipping_cost = shipment.shipping_cost
    return order
'''

_CHECKOUT_CONFIG_T1 = """\
payment:
  endpoint: payment.retail.svc:7001
  timeout_seconds: 5
shipping:
  endpoint: shipping.retail.svc:7002
  timeout_seconds: 10
"""

_CHECKOUT_DEPLOY = """\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: checkout
spec:
  replicas: 3
  template:
    spec:
      containers:
        - name: checkout
          image: retail/checkout:v{version}
          env:
            - name: PAYMENT_ENDPOINT
              value: payment.retail.svc:7001
            - name: SHIPPING_ENDPOINT
              value: shipping.retail.svc:7002
"""

_MAKEFILE_T1 = """\
protos:
\tprotoc --python_out=generated payment.proto
\tprotoc --python_out=generated shipping.proto
build: protos
\tdocker build -t retail/checkout:v2 .
push: build
\tdocker push retail/checkout:v2
"""

_REQUIREMENTS_T1 = """\
grpcio==1.62.0
grpcio-tools==1.62.0
"""

# ---------------------------------------------------------------------------
# T1: compose Payment and Shipping with Checkout
# ---------------------------------------------------------------------------

#: The Knactor side of T1: one integrator configuration fragment.
T1_KNACTOR_DXG = """\
# Compose Payment and Shipping with Checkout (integrator config only).
C.order:
  paymentID: P.id
  trackingID: S.id
P:
  amount: C.order.totalCost
  currency: C.order.currency
S:
  items: '[item.name for item in C.order.items]'
  addr: C.order.address
"""


def task1():
    api = CompositionTask(
        task="T1",
        approach="API",
        description="compose Payment and Shipping with Checkout via gRPC",
        operations=("c", "f", "b", "d"),
        services_rebuilt=("checkout",),
        artifacts=[
            Artifact("protos/payment.proto", protos.PAYMENT_PROTO, "proto"),
            Artifact("protos/shipping.proto", protos.SHIPPING_PROTO, "proto"),
            Artifact("checkout/clients.py", _CHECKOUT_CLIENTS_T1),
            Artifact("checkout/service.py", _CHECKOUT_SERVICE_T1),
            Artifact("checkout/config.yaml", _CHECKOUT_CONFIG_T1, "yaml"),
            Artifact(
                "deploy/checkout.yaml",
                _CHECKOUT_DEPLOY.format(version=2),
                "yaml",
            ),
            Artifact("checkout/Makefile", _MAKEFILE_T1, "shell"),
            Artifact("checkout/requirements.txt", _REQUIREMENTS_T1, "text"),
        ],
    )
    knactor = CompositionTask(
        task="T1",
        approach="KN",
        description="configure the Cast integrator's DXG",
        operations=("f",),
        artifacts=[Artifact("integrator/retail-dxg.yaml", T1_KNACTOR_DXG, "dxg")],
    )
    return TaskComparison(api=api, knactor=knactor)


# ---------------------------------------------------------------------------
# T2: add a shipment policy based on the order price
# ---------------------------------------------------------------------------

_CHECKOUT_SERVICE_T2_DIFF = '''\
AIR_SHIPPING_THRESHOLD_USD = load_config("air_shipping_threshold", 1000.0)

def select_shipping_method(order):
    """Business rule: expensive orders ship by air."""
    try:
        total_usd = convert_to_usd(order.total_cost, order.currency)
    except CurrencyError:
        log.warning("currency conversion failed; defaulting to ground")
        return "ground"
    if total_usd > AIR_SHIPPING_THRESHOLD_USD:
        metrics.increment("checkout.air_shipments")
        return "air"
    return "ground"
'''

_CHECKOUT_CONFIG_T2_DIFF = """\
shipping_policy:
  air_shipping_threshold: 1000.0
  fallback_method: ground
"""

#: The Knactor side of T2: literally one DXG line (Fig. 6, line 22).
T2_KNACTOR_DXG = """\
method: '"air" if C.order.cost > 1000 else "ground"'
"""


def task2():
    api = CompositionTask(
        task="T2",
        approach="API",
        description="price-based shipment policy inside Checkout",
        operations=("c", "f", "b", "d"),
        services_rebuilt=("checkout",),
        artifacts=[
            Artifact("checkout/service.py", _CHECKOUT_SERVICE_T2_DIFF),
            Artifact("checkout/config.yaml", _CHECKOUT_CONFIG_T2_DIFF, "yaml"),
        ],
    )
    knactor = CompositionTask(
        task="T2",
        approach="KN",
        description="one new assignment in the running integrator",
        operations=("f",),
        artifacts=[Artifact("integrator/retail-dxg.yaml", T2_KNACTOR_DXG, "dxg")],
    )
    return TaskComparison(api=api, knactor=knactor)


# ---------------------------------------------------------------------------
# T3: update the Shipping schema (v1 -> v2)
# ---------------------------------------------------------------------------

_CHECKOUT_CLIENTS_T3_DIFF = '''\
"""Adapt Checkout to shipping.v2 (Destination message, renamed fields)."""
from generated import shipping_v2_pb2_grpc
import grpc

def shipping_stub(endpoint):
    channel = grpc.insecure_channel(endpoint)
    return shipping_v2_pb2_grpc.ShippingServiceStub(channel)
'''

_CHECKOUT_SERVICE_T3_DIFF = '''\
from generated import shipping_v2_pb2

def build_ship_request(order):
    """shipping.v2 restructured the request: nested Destination, items
    with quantities, 'method' renamed to 'service_level'."""
    street, zip_code = split_address(order.address)
    destination = shipping_v2_pb2.Destination(
        street_address=street,
        zip_code=zip_code,
    )
    items = [
        shipping_v2_pb2.Item(product_name=item.name, quantity=1)
        for item in order.items
    ]
    return shipping_v2_pb2.ShipOrderRequest(
        items=items,
        destination=destination,
        service_level=select_shipping_method(order),
    )

def split_address(address):
    parts = address.rsplit(" ", 1)
    if len(parts) == 2 and parts[1].isdigit():
        return parts[0], parts[1]
    return address, "00000"

def place_order(order):
    request = build_ship_request(order)
    try:
        shipment = shipping.ShipOrder(request, timeout=10.0)
    except grpc.RpcError as error:
        if error.code() == grpc.StatusCode.UNIMPLEMENTED:
            # Mixed-version rollout: a v1 replica answered. Retry once so
            # the LB can pick a v2 replica; fail the order otherwise.
            shipment = shipping.ShipOrder(request, timeout=10.0)
        else:
            raise CheckoutError(f"shipping failed: {error.code()}") from error
    order.tracking_id = shipment.tracking_id
    order.shipping_cost = shipment.shipping_cost
    order.shipping_api_version = "v2"
    return order
'''

#: The Knactor side of T3: re-map the S section to the new schema.
T3_KNACTOR_DXG = """\
# Shipping schema v2: nested destination, items with quantity.
S:
  items: '[{"product_name": item.name, "quantity": 1} for item in C.order.items]'
  destination:
    street_address: C.order.address
    zip_code: '"00000"'
  service_level: >
    "air" if C.order.cost > 1000 else "ground"
"""


def task3():
    api = CompositionTask(
        task="T3",
        approach="API",
        description="adapt Checkout to the Shipping v2 schema",
        operations=("c", "f", "b", "d"),
        services_rebuilt=("checkout",),
        artifacts=[
            Artifact("protos/shipping.proto", protos.SHIPPING_PROTO_V2, "proto"),
            Artifact("checkout/clients.py", _CHECKOUT_CLIENTS_T3_DIFF),
            Artifact("checkout/service.py", _CHECKOUT_SERVICE_T3_DIFF),
            Artifact(
                "deploy/checkout.yaml",
                _CHECKOUT_DEPLOY.format(version=3),
                "yaml",
            ),
        ],
    )
    knactor = CompositionTask(
        task="T3",
        approach="KN",
        description="re-map the integrator's S section",
        operations=("f",),
        artifacts=[Artifact("integrator/retail-dxg.yaml", T3_KNACTOR_DXG, "dxg")],
    )
    return TaskComparison(api=api, knactor=knactor)


def all_tasks():
    return [task1(), task2(), task3()]


# ---------------------------------------------------------------------------
# Supporting evidence
# ---------------------------------------------------------------------------


def generated_stub_sloc():
    """SLOC of the stubs the API approach *generates and carries*.

    Not counted in Table 1 (generated code is not hand-changed), but
    reported alongside: it is build/deploy weight the Knactor approach
    does not have.
    """
    total = 0
    for name in ("PaymentService", "ShippingService"):
        _file, text = protos.ALL_PROTOS[name]
        stub = generate_client_stub(parse_idl(text))
        total += len([l for l in stub.splitlines() if l.strip()])
    return total


def rebuild_redeploy_seconds(env, service_sloc=3200):
    """Virtual-time cost of the ``b`` + ``d`` operations for Checkout.

    Returns a process event with ``(build_seconds, rollout_seconds)``.
    """
    registry = ImageRegistry(env)
    cluster = Cluster(env)

    def run(env):
        yield cluster.create_deployment("checkout", Image("checkout", "v1"),
                                        replicas=3)
        build = yield registry.build_and_push(
            Image("checkout", "v2"), service_sloc=service_sloc
        )
        rollout = yield rolling_update(cluster, "checkout", Image("checkout", "v2"))
        return (build.total_seconds, rollout.duration)

    return env.process(run(env))
