"""Observability over a running Knactor deployment (paper §5).

"Deployment issues such as load balancing, autoscaling, and observability,
such as monitoring knactor SLOs through distributed tracing and telemetry,
are also worth exploring."  This module provides the telemetry layer:

- :func:`runtime_snapshot` -- a point-in-time health view of every
  knactor, integrator, store, and the audit trail,
- :func:`resilience_snapshot` -- the failure-domain counters (retries,
  open circuits, dead letters, store availability) the chaos tooling
  asserts on,
- :func:`exchange_durations` -- per-exchange latency series extracted
  from the trace stream (the distributed-tracing view of an integrator),
- :class:`SLOMonitor` -- the **legacy** latency-objective shim.  The SLO
  vocabulary now lives in :mod:`repro.obs.slo` (latency / availability /
  freshness objectives with burn-rate alerting and trace exemplars);
  ``SLOMonitor`` delegates to :class:`repro.obs.slo.TraceLatencySLO` and
  warns once per process.
"""

from dataclasses import dataclass, field


def runtime_snapshot(runtime):
    """Health/throughput counters for every component of a runtime."""
    snapshot = {"time": runtime.env.now, "knactors": {}, "integrators": {},
                "exchanges": {}}
    for name, knactor in runtime.knactors.items():
        entry = {"stores": [b.store_name for b in knactor.stores]}
        reconciler = knactor.reconciler
        if reconciler is not None:
            entry.update(
                reconciles=reconciler.reconcile_count,
                conflicts=reconciler.error_count,
                queue_depth=len(reconciler._queue),
                health=reconciler.health(),
                dead_letters=len(reconciler.dead_letters),
                unavailable=reconciler.unavailable_count,
            )
        snapshot["knactors"][name] = entry
    for name, integrator in runtime.integrators.items():
        snapshot["integrators"][name] = integrator.status()
    for name, de in runtime.exchanges.items():
        entry = {
            "stores": de.stores(),
            "backend_ops": dict(de.backend.op_counts),
            "audited_accesses": len(de.audit),
            "denials": len(de.audit.denials()),
            "backend_available": de.backend.available,
            "backend_aborted_ops": de.backend.aborted_ops,
            "backend_crashes": de.backend.crash_count,
        }
        state_plane = _state_plane_stats(de.backend)
        if state_plane is not None:
            entry["state_plane"] = state_plane
        if de.retry_policy is not None:
            entry["retry"] = de.retry_policy.stats()
        snapshot["exchanges"][name] = entry
    obs = getattr(runtime, "obs", None)
    if obs is not None:
        snapshot["obs"] = obs.snapshot()
    return snapshot


def _state_plane_stats(backend):
    """Zero-copy / delta-replication counters for one store backend.

    Log backends and older store stand-ins may lack the counters;
    return None rather than guessing.
    """
    copy_stats = getattr(backend, "copy_stats", None)
    if copy_stats is None:
        return None
    return {
        "zero_copy": getattr(backend, "zero_copy", False),
        "delta_watch": getattr(backend, "delta_watch", False),
        "copy": copy_stats,
        "watch_wire_bytes": getattr(backend, "watch_wire_bytes", 0),
        "watch_deltas_sent": getattr(backend, "watch_deltas_sent", 0),
        "watch_fulls_sent": getattr(backend, "watch_fulls_sent", 0),
    }


def resilience_snapshot(runtime, breakers=()):
    """The failure-domain view: retry/circuit/DLQ/availability counters.

    ``breakers`` is an optional iterable of
    :class:`repro.faults.CircuitBreaker` instances to include (breakers
    are client-side objects the runtime does not know about).
    """
    snapshot = {
        "time": runtime.env.now,
        "reconcilers": {},
        "integrators": {},
        "stores": {},
        "retries": {},
        "circuits": {},
    }
    for name, knactor in runtime.knactors.items():
        reconciler = knactor.reconciler
        if reconciler is None:
            continue
        snapshot["reconcilers"][name] = {
            "health": reconciler.health(),
            "dead_letters": len(reconciler.dead_letters),
            "dead_letter_keys": reconciler.dead_letters.keys(),
            "unavailable": reconciler.unavailable_count,
            "kills": reconciler.kill_count,
        }
    for name, integrator in runtime.integrators.items():
        entry = {"started": integrator.started}
        dlq = getattr(integrator, "dead_letters", None)
        if dlq is not None:
            entry["dead_letters"] = len(dlq)
            entry["dead_letter_keys"] = dlq.keys()
        if hasattr(integrator, "unavailable_count"):
            entry["unavailable"] = integrator.unavailable_count
            entry["kills"] = integrator.kill_count
        snapshot["integrators"][name] = entry
    for name, de in runtime.exchanges.items():
        snapshot["stores"][de.backend.location] = {
            "available": de.backend.available,
            "aborted_ops": de.backend.aborted_ops,
            "crashes": de.backend.crash_count,
        }
        if de.retry_policy is not None:
            snapshot["retries"][name] = de.retry_policy.stats()
    for breaker in breakers:
        snapshot["circuits"][breaker.name or repr(breaker)] = breaker.stats()
    return snapshot


def exchange_durations(tracer, integrator):
    """Per-exchange (begin -> end) durations for one Cast integrator.

    Matches each ``cast/begin`` with the next ``cast/end`` of the same
    correlation id, in trace order -- the span a distributed tracer
    would reconstruct.
    """
    open_begins = {}
    durations = []
    for event in tracer.events:
        if event.category != "cast" or event.attrs.get("integrator") != integrator:
            continue
        cid = event.attrs.get("cid")
        if event.name == "begin":
            open_begins.setdefault(cid, []).append(event.time)
        elif event.name in ("end", "denied") and open_begins.get(cid):
            started = open_begins[cid].pop(0)
            durations.append(event.time - started)
    return durations


def reconcile_durations(tracer, knactor):
    """Per-reconcile durations for one knactor's reconciler."""
    return [
        event.attrs["duration"]
        for event in tracer.events
        if event.category == "reconciler"
        and event.name == "reconciled"
        and event.attrs.get("knactor") == knactor
        and "duration" in event.attrs
    ]


@dataclass
class SLOReport:
    """Outcome of one SLO evaluation."""

    name: str
    target_seconds: float
    percentile: float
    observed_seconds: float
    sample_count: int
    met: bool
    no_data: bool = False

    def describe(self):
        if self.no_data:
            return (
                f"SLO {self.name}: NO DATA (0 samples) vs target "
                f"{self.target_seconds * 1000:.2f} ms -> NOT MET"
            )
        status = "MET" if self.met else "VIOLATED"
        return (
            f"SLO {self.name}: p{int(self.percentile * 100)} "
            f"{self.observed_seconds * 1000:.2f} ms vs target "
            f"{self.target_seconds * 1000:.2f} ms over "
            f"{self.sample_count} samples -> {status}"
        )


@dataclass
class SLOMonitor:
    """Legacy shim: a latency objective over an integrator's spans.

    Superseded by :class:`repro.obs.slo.TraceLatencySLO` (and, for
    registry-backed objectives with burn-rate alerting,
    :class:`repro.obs.slo.LatencySLO` /
    :class:`~repro.obs.slo.AvailabilitySLO` /
    :class:`~repro.obs.slo.FreshnessSLO`).  Construction warns once per
    process; behaviour -- including the no-data-is-an-answer contract --
    is unchanged.
    """

    name: str
    integrator: str
    target_seconds: float
    percentile: float = 0.99
    reports: list = field(default_factory=list)

    def __post_init__(self):
        from repro.obs.slo import TraceLatencySLO
        from repro.store.ring import deprecation_notice

        # Validation lives in the new spec; invalid configuration still
        # raises ConfigurationError from here.
        self._spec = TraceLatencySLO(
            name=self.name, integrator=self.integrator,
            target_seconds=self.target_seconds, percentile=self.percentile,
        )
        deprecation_notice(
            "repro.metrics.telemetry.SLOMonitor is deprecated; declare "
            "objectives with repro.obs.slo (TraceLatencySLO keeps this "
            "exact behaviour) -- see docs/observability.md",
            dedup_key="slomonitor",
        )

    def evaluate(self, tracer):
        """Evaluate against the trace; returns (and records) a report.

        Zero recorded spans is an *answer*, not a configuration error: a
        dead integrator should read as a violated objective, never crash
        the monitoring loop.  The report carries ``no_data=True`` and
        ``met=False``.
        """
        result = self._spec.evaluate_trace(tracer)
        report = SLOReport(
            name=self.name,
            target_seconds=self.target_seconds,
            percentile=self.percentile,
            observed_seconds=result.observed or 0.0,
            sample_count=result.sample_count,
            met=result.met,
            no_data=result.no_data,
        )
        self.reports.append(report)
        return report
