"""Plain-text table rendering with paper-vs-measured columns."""


def format_seconds(seconds, digits=1):
    """Render seconds as milliseconds, the paper's unit."""
    if seconds is None:
        return "-"
    return f"{seconds * 1000.0:.{digits}f}"


def format_ms(ms, digits=1):
    if ms is None:
        return "-"
    return f"{ms:.{digits}f}"


class Table:
    """A fixed-column text table (benchmark report output)."""

    def __init__(self, headers, title=""):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_render(c) for c in cells])

    def render(self):
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        for row in self.rows:
            out.append(line(row))
        return "\n".join(out)

    def __str__(self):
        return self.render()


def _render(cell):
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def paper_vs_measured(title, headers, paper_rows, measured_rows):
    """Two stacked tables: the paper's numbers and ours, same columns."""
    paper = Table(headers, title=f"{title} -- paper")
    for row in paper_rows:
        paper.add_row(*row)
    measured = Table(headers, title=f"{title} -- measured (this repro)")
    for row in measured_rows:
        measured.add_row(*row)
    return paper.render() + "\n\n" + measured.render()
