"""Composition-cost accounting (Table 1).

A :class:`CompositionTask` records, for one task and one approach:

- the required **operations** -- ``c`` (code changes), ``f`` (config
  changes), ``b`` (rebuild service), ``d`` (redeploy service),
- the **artifacts** (files) touched, with their real content,

and derives the paper's columns: operation string, # files, SLOC.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.metrics.sloc import file_count, total_sloc

#: Operation glyphs in Table 1's order.
OPERATIONS = ("c", "f", "b", "d")
OPERATION_NAMES = {
    "c": "code changes",
    "f": "config changes",
    "b": "rebuild service",
    "d": "redeploy service",
}


@dataclass
class CompositionTask:
    """One (task, approach) cell of Table 1."""

    task: str  # "T1" / "T2" / "T3"
    approach: str  # "API" / "KN"
    description: str = ""
    operations: tuple = ()
    artifacts: list = field(default_factory=list)
    services_rebuilt: tuple = ()  # names of services needing b+d

    def __post_init__(self):
        bad = set(self.operations) - set(OPERATIONS)
        if bad:
            raise ConfigurationError(f"unknown operation(s) {sorted(bad)}")

    @property
    def operation_string(self):
        """Paper notation: ``c / f / b / d`` subset, slash-separated."""
        present = [op for op in OPERATIONS if op in self.operations]
        return " / ".join(present)

    @property
    def files(self):
        return file_count(self.artifacts)

    @property
    def sloc(self):
        return total_sloc(self.artifacts)

    def artifact_index(self):
        return [(a.path, a.language, a.sloc) for a in self.artifacts if a.changed]


@dataclass
class TaskComparison:
    """API-centric vs Knactor for one task (one Table 1 row)."""

    api: CompositionTask
    knactor: CompositionTask

    def __post_init__(self):
        if self.api.task != self.knactor.task:
            raise ConfigurationError(
                f"mismatched tasks {self.api.task} vs {self.knactor.task}"
            )

    @property
    def task(self):
        return self.api.task

    def row(self):
        """(task, api_ops, kn_ops, api_files, kn_files, api_sloc, kn_sloc)."""
        return (
            self.task,
            self.api.operation_string,
            self.knactor.operation_string,
            self.api.files,
            self.knactor.files,
            self.api.sloc,
            self.knactor.sloc,
        )

    def knactor_wins(self):
        """The paper's qualitative claims for every task."""
        api, kn = self.api, self.knactor
        return {
            "config_only": set(kn.operations) <= {"f"},
            "api_needs_rebuild": {"b", "d"} <= set(api.operations),
            "fewer_files": kn.files <= api.files,
            "fewer_sloc": kn.sloc <= api.sloc,
            "single_location": kn.files == 1,
        }
