"""Measurement: SLOC counting, composition-cost accounting, latency stats.

- :mod:`repro.metrics.sloc`      -- source-lines-of-code counting over the
  artifact files each composition task touches (Table 1's SLOC column),
- :mod:`repro.metrics.costmodel` -- the operations/files/SLOC accounting
  model behind Table 1,
- :mod:`repro.metrics.latency`   -- per-stage latency extraction and
  summary statistics (Table 2),
- :mod:`repro.metrics.report`    -- plain-text table rendering with
  paper-vs-measured columns.
"""

from repro.metrics.costmodel import CompositionTask, TaskComparison
from repro.metrics.latency import StageBreakdown, summarize
from repro.metrics.report import Table, format_seconds
from repro.metrics.sloc import Artifact, count_sloc
from repro.metrics.telemetry import (
    SLOMonitor,
    exchange_durations,
    resilience_snapshot,
    runtime_snapshot,
)

__all__ = [
    "Artifact",
    "CompositionTask",
    "SLOMonitor",
    "StageBreakdown",
    "Table",
    "TaskComparison",
    "count_sloc",
    "exchange_durations",
    "format_seconds",
    "resilience_snapshot",
    "runtime_snapshot",
    "summarize",
]
