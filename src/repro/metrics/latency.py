"""Per-stage latency extraction and summary statistics (Table 2)."""

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def summarize(values):
    """Mean / median / p99 / min / max of a list of durations."""
    if not values:
        raise ConfigurationError("no values to summarize")
    ordered = sorted(values)
    n = len(ordered)

    def percentile(p):
        if n == 1:
            return ordered[0]
        rank = p * (n - 1)
        low = int(math.floor(rank))
        high = min(low + 1, n - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    return {
        "mean": sum(ordered) / n,
        "p50": percentile(0.50),
        "p99": percentile(0.99),
        "min": ordered[0],
        "max": ordered[-1],
        "count": n,
    }


@dataclass
class StageBreakdown:
    """Per-request stage durations for one experimental setup.

    ``stages`` maps stage name -> list of per-request durations; the
    stage names for the retail experiment are the paper's: ``C-I``,
    ``I``, ``I-S``, ``S`` (plus derived ``Prop.`` and ``Total``).
    """

    setup: str
    stages: dict = field(default_factory=dict)

    def add(self, stage, duration):
        self.stages.setdefault(stage, []).append(duration)

    def add_request(self, durations):
        """Record one request's full stage dict."""
        for stage, duration in durations.items():
            self.add(stage, duration)

    def mean(self, stage):
        values = self.stages.get(stage)
        if not values:
            return None
        return sum(values) / len(values)

    def summary(self, stage):
        return summarize(self.stages[stage])

    def count(self):
        if not self.stages:
            return 0
        return min(len(v) for v in self.stages.values())

    def row(self, stage_order=("C-I", "I", "I-S", "S", "Prop.", "Total")):
        """Mean per stage in milliseconds, None for absent stages."""
        out = {"Setup": self.setup}
        for stage in stage_order:
            mean = self.mean(stage)
            out[stage] = None if mean is None else mean * 1000.0
        return out
