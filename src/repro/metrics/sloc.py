"""Source-lines-of-code counting over composition artifacts.

Table 1 counts "the source lines of code (SLOC) changed or used to
implement the task, including the services' source code, scripts,
configurations, and schema definitions".  An :class:`Artifact` is one such
file (its content is real text generated/maintained in this repo -- proto
definitions, generated stubs, client code, deployment configs, DXG
fragments); SLOC is non-blank, non-comment lines with language-appropriate
comment syntax.
"""

from dataclasses import dataclass

_COMMENT_PREFIXES = {
    "python": ("#",),
    "proto": ("//",),
    "yaml": ("#",),
    "dxg": ("#",),
    "shell": ("#",),
    "text": (),
}


@dataclass(frozen=True)
class Artifact:
    """One file touched by a composition task."""

    path: str
    content: str
    language: str = "python"
    changed: bool = True  # False = read/used but not modified

    @property
    def sloc(self):
        return count_sloc(self.content, self.language)


def count_sloc(text, language="python"):
    """Non-blank, non-comment source lines.

    Python docstrings are counted as code (they are part of the shipped
    artifact), matching how ``cloc``-style tools treat this repo's style
    when configured for logical lines; pure comment lines are not.
    """
    prefixes = _COMMENT_PREFIXES.get(language, ("#",))
    count = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if any(line.startswith(p) for p in prefixes):
            continue
        count += 1
    return count


def total_sloc(artifacts, changed_only=True):
    """Sum SLOC over artifacts (changed ones by default)."""
    return sum(a.sloc for a in artifacts if a.changed or not changed_only)


def file_count(artifacts, changed_only=True):
    return sum(1 for a in artifacts if a.changed or not changed_only)
