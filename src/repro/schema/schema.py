"""Schema and field definitions for knactor data stores.

A schema is declared in the YAML-subset syntax of the paper's Fig. 5::

    schema: OnlineRetail/v1/Checkout/Order
    items: object
    address: string
    cost: number
    shippingCost: number   # +kr: external
    totalCost: number
    currency: string
    paymentID: string      # +kr: external
    trackingID: string     # +kr: external

Nested fields are supported with indentation; a nested block is typed
``object`` with declared sub-fields::

    schema: OnlineRetail/v1/Shipping/Shipment
    quote:
      price: number
      currency: string
"""

from dataclasses import dataclass, field as dc_field

from repro.errors import SchemaError
from repro.schema.annotations import Annotations, parse_annotation
from repro.schema.types import AnyType, FieldType, ObjectType, parse_type
from repro.util import yamlish


@dataclass(frozen=True)
class SchemaName:
    """Structured schema name: ``App/version/Service/Resource``.

    The last component is optional (a knactor-level reference like
    ``OnlineRetail/v1/Checkout`` names the service's default store).
    """

    app: str
    version: str
    service: str
    resource: str = ""

    @classmethod
    def parse(cls, text):
        if isinstance(text, SchemaName):
            return text
        parts = [p for p in str(text).split("/") if p]
        if len(parts) == 3:
            return cls(parts[0], parts[1], parts[2])
        if len(parts) == 4:
            return cls(parts[0], parts[1], parts[2], parts[3])
        raise SchemaError(
            f"schema name {text!r} must be App/version/Service[/Resource]"
        )

    def __str__(self):
        base = f"{self.app}/{self.version}/{self.service}"
        return f"{base}/{self.resource}" if self.resource else base

    def with_version(self, version):
        return SchemaName(self.app, version, self.service, self.resource)


@dataclass(frozen=True)
class Field:
    """One schema field: dotted path, type, annotations, requiredness."""

    path: str
    type: FieldType = dc_field(default_factory=AnyType)
    annotations: Annotations = dc_field(default_factory=Annotations)
    required: bool = False

    @property
    def name(self):
        """Leaf name of the field."""
        return self.path.rsplit(".", 1)[-1]

    @property
    def external(self):
        return self.annotations.external

    def describe(self):
        note = self.annotations.describe()
        suffix = f"  # {note}" if note else ""
        return f"{self.path}: {self.type.describe()}{suffix}"


class Schema:
    """The schema of one data store: an ordered set of typed fields."""

    def __init__(self, name, fields=()):
        self.name = SchemaName.parse(name)
        self._fields = {}
        for f in fields:
            self.add_field(f)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_text(cls, text):
        """Parse the Fig. 5 schema syntax (see module docstring)."""
        data, annotations = yamlish.parse(text, with_annotations=True)
        if not isinstance(data, dict) or "schema" not in data:
            raise SchemaError("schema text must start with a 'schema: <name>' line")
        name = data.pop("schema")
        schema = cls(name)
        schema._load_fields(data, annotations, prefix=())
        return schema

    @classmethod
    def from_dict(cls, payload):
        """Build from ``{"schema": name, "fields": [{...}, ...]}``."""
        if "schema" not in payload:
            raise SchemaError("payload is missing the 'schema' key")
        schema = cls(payload["schema"])
        for entry in payload.get("fields", []):
            schema.add_field(
                Field(
                    path=entry["path"],
                    type=parse_type(entry.get("type", "any")),
                    annotations=parse_annotation(entry.get("annotation")),
                    required=entry.get("required", False),
                )
            )
        return schema

    def _load_fields(self, mapping, annotations, prefix):
        for key, value in mapping.items():
            path = prefix + (key,)
            dotted = ".".join(path)
            ann = parse_annotation(annotations.get(path))
            if isinstance(value, dict):
                self.add_field(Field(dotted, ObjectType(), ann))
                self._load_fields(value, annotations, path)
            else:
                self.add_field(Field(dotted, parse_type(value), ann))

    def add_field(self, field):
        if field.path in self._fields:
            raise SchemaError(f"duplicate field {field.path!r} in {self.name}")
        parent = field.path.rsplit(".", 1)[0] if "." in field.path else None
        if parent is not None and parent not in self._fields:
            raise SchemaError(
                f"field {field.path!r} declared before its parent {parent!r}"
            )
        self._fields[field.path] = field

    # -- queries ----------------------------------------------------------

    @property
    def fields(self):
        """All fields, in declaration order."""
        return list(self._fields.values())

    def field(self, path):
        """Look up a field by dotted path; raises SchemaError if absent."""
        try:
            return self._fields[path]
        except KeyError:
            raise SchemaError(f"{self.name} has no field {path!r}") from None

    def has_field(self, path):
        return path in self._fields

    def paths(self):
        return list(self._fields)

    def external_fields(self):
        """Fields an integrator is allowed to fill (``+kr: external``)."""
        return [f for f in self.fields if f.annotations.external]

    def ingest_fields(self):
        """Fields the store accepts as ingested data (``+kr: ingest``)."""
        return [f for f in self.fields if f.annotations.ingest]

    def secret_fields(self):
        return [f for f in self.fields if f.annotations.secret]

    def top_level(self):
        """Fields without a parent."""
        return [f for f in self.fields if "." not in f.path]

    def children(self, path):
        prefix = path + "."
        depth = path.count(".") + 1
        return [
            f
            for f in self.fields
            if f.path.startswith(prefix) and f.path.count(".") == depth
        ]

    # -- serialization ----------------------------------------------------

    def to_dict(self):
        return {
            "schema": str(self.name),
            "fields": [
                {
                    "path": f.path,
                    "type": f.type.describe(),
                    "annotation": f.annotations.describe() or None,
                    "required": f.required,
                }
                for f in self.fields
            ],
        }

    def to_text(self):
        """Render back into the Fig. 5 syntax."""
        lines = [f"schema: {str(self.name)}"]
        for f in self.fields:
            indent = "  " * f.path.count(".")
            note = self.field(f.path).annotations.describe()
            comment = f"  # {note}" if note else ""
            if isinstance(f.type, ObjectType) and self.children(f.path):
                lines.append(f"{indent}{f.name}:{comment}")
            else:
                lines.append(f"{indent}{f.name}: {f.type.describe()}{comment}")
        return "\n".join(lines)

    def __eq__(self, other):
        return (
            isinstance(other, Schema)
            and self.name == other.name
            and self._fields == other._fields
        )

    def __repr__(self):
        return f"<Schema {self.name} fields={len(self._fields)}>"
