"""Data-store schema system.

Knactors *externalize* their state: each data store declares a schema (the
paper's Fig. 5) that names its fields, their types, and ``+kr`` annotations
marking which fields are filled externally by an integrator (``external``)
or ingestible from other stores (``ingest``).  Schemas are registered on the
Data Exchange so integrator developers can compose services from schemas
alone, without reading service code.
"""

from repro.schema.annotations import ANNOTATION_PREFIX, Annotations, parse_annotation
from repro.schema.diff import SchemaDiff, diff_schemas
from repro.schema.registry import SchemaRegistry
from repro.schema.schema import Field, Schema, SchemaName
from repro.schema.types import (
    AnyType,
    ArrayType,
    BooleanType,
    FieldType,
    IntegerType,
    NumberType,
    ObjectType,
    StringType,
    parse_type,
)
from repro.schema.validation import ValidationResult, validate_state

__all__ = [
    "ANNOTATION_PREFIX",
    "Annotations",
    "AnyType",
    "ArrayType",
    "BooleanType",
    "Field",
    "FieldType",
    "IntegerType",
    "NumberType",
    "ObjectType",
    "Schema",
    "SchemaDiff",
    "SchemaName",
    "SchemaRegistry",
    "StringType",
    "ValidationResult",
    "diff_schemas",
    "parse_annotation",
    "parse_type",
    "validate_state",
]
