"""Schema diffing and compatibility checks.

Task T3 in the paper ("updating the Shipping schema") is a schema evolution:
the API-centric approach forces client-side code changes, while Knactor only
needs the DXG updated.  The diff machinery here powers both: the registry
uses it to gate re-registration, and the composition-cost benchmark uses it
to enumerate what changed.
"""

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass
class SchemaDiff:
    """Field-level difference between two schema versions."""

    added: list = field(default_factory=list)
    removed: list = field(default_factory=list)
    retyped: list = field(default_factory=list)  # (path, old_type, new_type)
    reannotated: list = field(default_factory=list)  # (path, old, new)

    @property
    def empty(self):
        return not (self.added or self.removed or self.retyped or self.reannotated)

    def is_backward_compatible(self):
        """Existing readers keep working: nothing removed or retyped.

        Annotation changes are compatible (they gate *writers*, and the
        registry re-checks grants), and additions are always compatible.
        """
        return not self.removed and not self.retyped

    def summary(self):
        parts = []
        if self.added:
            parts.append(f"added: {', '.join(self.added)}")
        if self.removed:
            parts.append(f"removed: {', '.join(self.removed)}")
        if self.retyped:
            parts.append(
                "retyped: "
                + ", ".join(f"{p} ({o}->{n})" for p, o, n in self.retyped)
            )
        if self.reannotated:
            parts.append(
                "reannotated: " + ", ".join(p for p, _o, _n in self.reannotated)
            )
        return "; ".join(parts) if parts else "no changes"


def diff_schemas(old, new):
    """Compute the :class:`SchemaDiff` from ``old`` to ``new``."""
    if str(old.name.app) != str(new.name.app) or old.name.service != new.name.service:
        raise SchemaError(
            f"cannot diff unrelated schemas {old.name} and {new.name}"
        )
    result = SchemaDiff()
    old_paths = set(old.paths())
    new_paths = set(new.paths())
    result.added = sorted(new_paths - old_paths)
    result.removed = sorted(old_paths - new_paths)
    for path in sorted(old_paths & new_paths):
        old_field = old.field(path)
        new_field = new.field(path)
        if old_field.type != new_field.type:
            result.retyped.append(
                (path, old_field.type.describe(), new_field.type.describe())
            )
        if old_field.annotations != new_field.annotations:
            result.reannotated.append(
                (
                    path,
                    old_field.annotations.describe(),
                    new_field.annotations.describe(),
                )
            )
    return result
