"""``+kr`` field annotations.

In the paper's schema listings, fields are annotated with trailing comments
such as ``# +kr: external`` (Fig. 5).  Annotations drive the development
workflow's *Express* step: they declare which fields an integrator may fill
(``external``), which the store can ingest from other services' data
(``ingest``), which must never leave the store unmasked (``secret``), and
which are write-once (``immutable``).
"""

from dataclasses import dataclass, field

from repro.errors import SchemaError

#: Trailing-comment prefix that marks a Knactor annotation.
ANNOTATION_PREFIX = "+kr:"

KNOWN_ANNOTATIONS = frozenset({"external", "ingest", "secret", "immutable"})


@dataclass(frozen=True)
class Annotations:
    """The parsed annotation set of one field."""

    tokens: frozenset = field(default_factory=frozenset)

    @property
    def external(self):
        """Field is filled externally, by an integrator."""
        return "external" in self.tokens

    @property
    def ingest(self):
        """Field accepts data ingested from other stores (Log DE)."""
        return "ingest" in self.tokens

    @property
    def secret(self):
        """Field is masked from any reader without an explicit grant."""
        return "secret" in self.tokens

    @property
    def immutable(self):
        """Field may be written once and never changed."""
        return "immutable" in self.tokens

    def describe(self):
        if not self.tokens:
            return ""
        return f"{ANNOTATION_PREFIX} {', '.join(sorted(self.tokens))}"

    def __bool__(self):
        return bool(self.tokens)


def parse_annotation(comment):
    """Parse a trailing-comment string into :class:`Annotations`.

    Comments without the ``+kr:`` prefix produce an empty annotation set
    (they are ordinary comments).  Unknown tokens after the prefix are an
    error -- silent typos in access annotations would be a security bug.
    """
    if comment is None:
        return Annotations()
    text = comment.strip()
    if not text.startswith(ANNOTATION_PREFIX):
        return Annotations()
    body = text[len(ANNOTATION_PREFIX) :].strip()
    tokens = {tok.strip() for tok in body.split(",") if tok.strip()}
    unknown = tokens - KNOWN_ANNOTATIONS
    if unknown:
        raise SchemaError(
            f"unknown +kr annotation(s): {sorted(unknown)} "
            f"(known: {sorted(KNOWN_ANNOTATIONS)})"
        )
    return Annotations(frozenset(tokens))
