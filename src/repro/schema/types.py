"""Field types for data-store schemas.

Types mirror what the paper's examples use (Fig. 5): ``object``, ``string``,
``number``, plus the obvious companions (``integer``, ``boolean``, ``array``,
``any``).  Arrays may constrain their element type: ``array<string>``.
"""

from repro.errors import SchemaError


class FieldType:
    """Base class for schema field types."""

    name = "any"

    def check(self, value):
        """True if ``value`` conforms to this type (None always conforms)."""
        raise NotImplementedError

    def describe(self):
        """Render back to the schema-text spelling."""
        return self.name

    def __eq__(self, other):
        return type(self) is type(other) and self.describe() == other.describe()

    def __hash__(self):
        return hash(self.describe())

    def __repr__(self):
        return f"<{type(self).__name__} {self.describe()}>"


class AnyType(FieldType):
    """Accepts anything."""

    name = "any"

    def check(self, value):
        return True


class StringType(FieldType):
    name = "string"

    def check(self, value):
        return value is None or isinstance(value, str)


class NumberType(FieldType):
    """Accepts ints and floats (bools are *not* numbers)."""

    name = "number"

    def check(self, value):
        return value is None or (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )


class IntegerType(FieldType):
    name = "integer"

    def check(self, value):
        return value is None or (
            isinstance(value, int) and not isinstance(value, bool)
        )


class BooleanType(FieldType):
    name = "boolean"

    def check(self, value):
        return value is None or isinstance(value, bool)


class ObjectType(FieldType):
    """A nested attribute-value object; open (any keys) by default."""

    name = "object"

    def check(self, value):
        return value is None or isinstance(value, dict)


class ArrayType(FieldType):
    """A list, optionally constrained to a uniform element type."""

    name = "array"

    def __init__(self, element_type=None):
        self.element_type = element_type

    def check(self, value):
        if value is None:
            return True
        if not isinstance(value, list):
            return False
        if self.element_type is None:
            return True
        return all(self.element_type.check(item) for item in value)

    def describe(self):
        if self.element_type is None:
            return "array"
        return f"array<{self.element_type.describe()}>"


_SIMPLE_TYPES = {
    "any": AnyType,
    "string": StringType,
    "number": NumberType,
    "integer": IntegerType,
    "int": IntegerType,
    "boolean": BooleanType,
    "bool": BooleanType,
    "object": ObjectType,
}


def parse_type(text):
    """Parse a type spelling like ``"number"`` or ``"array<string>"``."""
    if isinstance(text, FieldType):
        return text
    if not isinstance(text, str):
        raise SchemaError(f"type spelling must be a string, got {text!r}")
    spelling = text.strip()
    if spelling in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[spelling]()
    if spelling == "array":
        return ArrayType()
    if spelling.startswith("array<") and spelling.endswith(">"):
        inner = spelling[len("array<") : -1]
        return ArrayType(parse_type(inner))
    raise SchemaError(f"unknown field type {text!r}")
