"""Schema registry hosted on a Data Exchange.

The development workflow's *Externalize* step (paper §3.2) registers each
data store's schema with the DE.  The registry:

- keeps every registered version (names embed a version component),
- gates re-registration of an existing version behind a backward-
  compatibility check (breaking changes require ``allow_breaking=True``,
  mirroring a deliberate major-version bump),
- is the only thing integrator developers can see about a store --
  per the paper's access-control design, "developers can only view data
  store schemas, not actual states".
"""

from repro.errors import NotFoundError, SchemaError
from repro.schema.diff import diff_schemas
from repro.schema.schema import SchemaName


class SchemaRegistry:
    """Versioned registry of data-store schemas."""

    def __init__(self):
        self._schemas = {}

    def register(self, schema, allow_breaking=False):
        """Register or update a schema.

        Updating an existing name with a backward-incompatible change
        raises :class:`SchemaError` unless ``allow_breaking`` is set.
        Returns the :class:`~repro.schema.diff.SchemaDiff` against the
        previous registration (empty diff for first registration).
        """
        key = str(schema.name)
        previous = self._schemas.get(key)
        if previous is None:
            self._schemas[key] = schema
            return diff_schemas(schema, schema)
        delta = diff_schemas(previous, schema)
        if not delta.is_backward_compatible() and not allow_breaking:
            raise SchemaError(
                f"breaking change to {key}: {delta.summary()} "
                "(pass allow_breaking=True to force)"
            )
        self._schemas[key] = schema
        return delta

    def get(self, name):
        key = str(SchemaName.parse(name))
        try:
            return self._schemas[key]
        except KeyError:
            raise NotFoundError(f"schema {key!r} is not registered") from None

    def exists(self, name):
        return str(SchemaName.parse(name)) in self._schemas

    def names(self):
        """All registered schema names, sorted."""
        return sorted(self._schemas)

    def for_service(self, app, service):
        """All schemas registered by one service, any version."""
        return [
            s
            for s in self._schemas.values()
            if s.name.app == app and s.name.service == service
        ]

    def versions(self, app, service, resource=""):
        """Registered versions of one resource, sorted."""
        return sorted(
            s.name.version
            for s in self._schemas.values()
            if s.name.app == app
            and s.name.service == service
            and s.name.resource == resource
        )

    def __len__(self):
        return len(self._schemas)

    def __contains__(self, name):
        return self.exists(name)
