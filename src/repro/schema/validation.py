"""State validation against a data-store schema.

Stores call :func:`validate_state` on every write (the Data Exchange's
admission step).  Validation reports *all* violations, not just the first:
composition debugging is much easier with the complete list.
"""

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.util.paths import get_path, walk_leaves


@dataclass
class ValidationResult:
    """Outcome of validating one state object."""

    errors: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.errors

    def raise_if_invalid(self):
        if self.errors:
            raise SchemaError("; ".join(self.errors))

    def __bool__(self):
        return self.ok


def validate_state(state, schema, partial=False, allow_unknown=False):
    """Validate ``state`` (a nested dict) against ``schema``.

    - ``partial=True`` skips required-field checks (used for patches).
    - ``allow_unknown=True`` permits fields not declared in the schema
      (Object DEs are strict by default; Log DEs are semi-structured).
    """
    result = ValidationResult()
    if not isinstance(state, dict):
        result.errors.append(f"state must be an object, got {type(state).__name__}")
        return result

    for f in schema.fields:
        value = get_path(state, f.path, default=None)
        present = _path_present(state, f.path)
        if f.required and not partial and not present:
            result.errors.append(f"missing required field {f.path!r}")
        if present and not f.type.check(value):
            result.errors.append(
                f"field {f.path!r} expects {f.type.describe()}, "
                f"got {type(value).__name__}"
            )

    if not allow_unknown:
        declared = set(schema.paths())
        for path_tuple, _value in walk_leaves(state):
            dotted = ".".join(str(p) for p in path_tuple)
            if dotted in declared:
                continue
            # A leaf under a declared open object (no declared children)
            # is fine: 'items: object' accepts arbitrary contents.
            if _covered_by_open_object(dotted, schema):
                continue
            result.errors.append(f"unknown field {dotted!r}")
    return result


def _path_present(state, dotted):
    current = state
    for part in dotted.split("."):
        if not isinstance(current, dict) or part not in current:
            return False
        current = current[part]
    return True


def _covered_by_open_object(dotted, schema):
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        ancestor = ".".join(parts[:cut])
        if schema.has_field(ancestor):
            # Open if the declared ancestor has no declared children.
            return not schema.children(ancestor)
    return False
