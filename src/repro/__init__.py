"""Knactor: a data-centric service composition framework.

This package is a from-scratch reproduction of the system described in
"Toward Data-Centric Service Composition" (HotNets '24).  It provides:

- ``repro.simnet``   -- deterministic discrete-event simulation kernel,
- ``repro.schema``   -- data-store schema system with ``+kr`` annotations,
- ``repro.store``    -- Object stores (apiserver-like, Redis-like) and a
  Log store (Zed-lake-like), built from scratch,
- ``repro.exchange`` -- the Data Exchange layer (hosting, access control),
- ``repro.core``     -- knactors, reconcilers, integrators (Cast and Sync),
  the DXG language, the runtime, and the optimizations from the paper,
- ``repro.rpc`` / ``repro.pubsub`` -- API-centric baselines,
- ``repro.cluster``  -- a miniature deployment model (build/rollout costs),
- ``repro.apps``     -- the paper's example applications,
- ``repro.metrics``  -- SLOC / composition-cost / latency measurement.

Quickstart::

    from repro import simnet
    from repro.apps.retail import knactor_app

    env = simnet.Environment()
    app = knactor_app.build(env)
    app.start()
    env.run(until=5.0)
"""

from repro._version import __version__

__all__ = ["__version__"]
