"""The unified observability plane (paper §5).

"Deployment issues such as ... observability, such as monitoring knactor
SLOs through distributed tracing and telemetry, are also worth
exploring."  Data-centric composition replaces the RPC call-chain with
state flowing through Data Exchanges, so classic request tracing has
nothing to hook: services never call each other.  This package restores
end-to-end visibility from the data plane itself:

- :mod:`repro.obs.context` -- a :class:`TraceContext` carried on every
  store write, stamped into watch/delta events, WAL records, pub/sub
  messages and RPC calls, and re-attached when reconcilers and
  integrators read state and write downstream;
- :mod:`repro.obs.causal` -- the :class:`CausalTracer` that turns those
  contexts into a per-request causal DAG spanning services and stores;
- :mod:`repro.obs.registry` -- labeled counters/gauges/histograms with
  sim-time-aware windowing behind one ``Registry.snapshot()``;
- :mod:`repro.obs.plane` -- the :class:`ObsPlane` tying both to a
  running :class:`~repro.core.runtime.KnactorRuntime`;
- :mod:`repro.obs.slo` -- declarative :class:`SLOSpec` objectives over
  the registry (latency percentiles, availability, watch-lag freshness)
  with multi-window burn-rate alerting and trace exemplars.
"""

from repro.obs.causal import CausalSpan, CausalTracer
from repro.obs.context import (
    TraceContext,
    activate,
    bind_generator,
    current_context,
    restore,
    span_process,
    use,
)
from repro.obs.plane import ObsPlane
from repro.obs.registry import Registry
from repro.obs.slo import (
    AvailabilitySLO,
    BurnRateTracker,
    BurnWindow,
    FreshnessSLO,
    LatencySLO,
    SLOReport,
    SLOResult,
    SLOSpec,
    TraceLatencySLO,
)

__all__ = [
    "AvailabilitySLO",
    "BurnRateTracker",
    "BurnWindow",
    "CausalSpan",
    "CausalTracer",
    "FreshnessSLO",
    "LatencySLO",
    "ObsPlane",
    "Registry",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "TraceContext",
    "TraceLatencySLO",
    "activate",
    "bind_generator",
    "current_context",
    "restore",
    "span_process",
    "use",
]
