"""Trace-context propagation primitives.

A :class:`TraceContext` names one span of one causal trace.  It travels
two ways:

- **explicitly**, stamped onto the artifacts that carry causality across
  component boundaries (store request args, watch events, WAL records,
  pub/sub deliveries, RPC dispatches);
- **ambiently**, through a single module-level slot read by
  :func:`current_context`.

The ambient slot is safe because simnet is a single-threaded
discrete-event simulation: code only interleaves at ``yield`` points, so
any *synchronous* section -- building a request's argument dict, running
a store op method, invoking a watch handler -- executes atomically.
Capture therefore always happens synchronously at call-creation time,
and :func:`bind_generator` re-arms the slot around each resumption of a
generator-based process so concurrent processes never observe each
other's contexts.
"""

from dataclasses import dataclass, field

#: The ambient context of the currently-executing synchronous section.
_current = None


@dataclass(frozen=True, eq=False)
class TraceContext:
    """One span's identity within a causal trace.

    ``baggage`` carries request-scoped key/values (e.g. the order id)
    down the whole causal chain; ``sink`` is the
    :class:`~repro.obs.causal.CausalTracer` that minted the context, so
    any component holding a context can record spans and annotations
    without extra plumbing.
    """

    trace_id: str
    span_id: str
    parent_span_id: str = None
    baggage: dict = field(default_factory=dict)
    sink: object = field(default=None, repr=False)

    def __repr__(self):
        return (f"<TraceContext {self.trace_id}/{self.span_id} "
                f"parent={self.parent_span_id}>")


def current_context():
    """The ambient :class:`TraceContext` of this synchronous section."""
    return _current


def activate(ctx):
    """Install ``ctx`` as the ambient context; returns the previous one.

    Always pair with :func:`restore` (``try/finally``): a leaked
    activation would attribute unrelated work to this trace.
    """
    global _current
    previous = _current
    _current = ctx
    return previous


def restore(token):
    """Undo an :func:`activate` using its return value."""
    global _current
    _current = token


class use:
    """``with use(ctx): ...`` -- ambient context for one synchronous block."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._token = None

    def __enter__(self):
        self._token = activate(self.ctx)
        return self.ctx

    def __exit__(self, *_exc):
        restore(self._token)
        return False


def bind_generator(gen, ctx):
    """Drive ``gen`` with ``ctx`` ambient during each synchronous slice.

    Simnet processes are generators resumed by the event loop; between
    resumptions, *other* processes run.  This wrapper activates ``ctx``
    exactly while ``gen`` executes and restores the previous ambient
    context at every yield, so the context follows the logical task, not
    the wall clock.  Exceptions thrown into the wrapper (conflict,
    unavailability, interrupts) are forwarded into ``gen`` under the
    same discipline.
    """
    value = None
    error = None
    while True:
        token = activate(ctx)
        try:
            if error is not None:
                item = gen.throw(error)
            else:
                item = gen.send(value)
        except StopIteration as stop:
            return stop.value
        finally:
            restore(token)
        error = None
        try:
            value = yield item
        except Exception as exc:  # forwarded by the event loop
            value = None
            error = exc


def span_process(gen, ctx, **end_attrs):
    """Run ``gen`` inside span ``ctx`` and close the span at exit.

    The span ends with ``outcome="ok"`` on normal return, or with the
    exception's type name when ``gen`` raises (the exception still
    propagates).  Requires ``ctx.sink``.
    """
    try:
        result = yield from bind_generator(gen, ctx)
    except Exception as exc:
        ctx.sink.end_span(ctx, outcome=type(exc).__name__, **end_attrs)
        raise
    ctx.sink.end_span(ctx, outcome="ok", **end_attrs)
    return result
