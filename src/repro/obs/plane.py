"""The observability plane: one causal tracer + one metrics registry.

The plane attaches to the runtime's existing
:class:`~repro.simnet.trace.Tracer` (as its ``obs`` attribute), which
is already threaded into every store server -- so deep components reach
the plane with zero new constructor plumbing.  ``bind_runtime``
registers pull collectors that scrape the runtime's scattered counters
(store ops, watch wire bytes, CopyMeter, retry stats, queue depths,
dead letters) into the registry at snapshot time.
"""

from repro.obs.causal import CausalTracer
from repro.obs.registry import Registry


class ObsPlane:
    """Everything observability for one simulation run."""

    def __init__(self, env):
        self.env = env
        self.causal = CausalTracer(env)
        self.causal.plane = self
        self.registry = Registry(env)

    def attach(self, tracer):
        """Make this plane reachable from a latency tracer (``tracer.obs``)."""
        tracer.obs = self
        return self

    # -- runtime scraping ----------------------------------------------------

    def bind_runtime(self, runtime, breakers=()):
        """Scrape a runtime's component counters at every snapshot.

        Reads the live registries (``runtime.knactors`` etc.) at collect
        time, so components registered *after* binding are still seen.
        """
        breakers = list(breakers)

        def collect(reg):
            for name, knactor in runtime.knactors.items():
                reconciler = knactor.reconciler
                if reconciler is None:
                    continue
                reg.counter("reconciles_total", knactor=name).set_total(
                    reconciler.reconcile_count)
                reg.counter("reconcile_conflicts_total", knactor=name
                            ).set_total(reconciler.error_count)
                reg.gauge("reconciler_queue_depth", knactor=name).set(
                    len(reconciler._queue))
                reg.gauge("reconciler_queue_peak", knactor=name).set(
                    reconciler.queue_peak)
                reg.counter("reconciler_shed_total", knactor=name).set_total(
                    reconciler.shed_count)
                reg.gauge("dead_letters", component=name).set(
                    len(reconciler.dead_letters))
            for name, integrator in runtime.integrators.items():
                runs = getattr(integrator, "exchanges_run", None)
                if runs is not None:
                    reg.counter("exchanges_total", integrator=name
                                ).set_total(runs)
                dlq = getattr(integrator, "dead_letters", None)
                if dlq is not None:
                    reg.gauge("dead_letters", component=name).set(len(dlq))
                queue = getattr(integrator, "_queue", None)
                if queue is not None:
                    reg.gauge("integrator_queue_depth", integrator=name
                              ).set(len(queue))
            for name, de in runtime.exchanges.items():
                backend = de.backend
                for op, count in backend.op_counts.items():
                    reg.counter("store_ops_total", exchange=name, op=op
                                ).set_total(count)
                reg.counter("watch_messages_total", exchange=name
                            ).set_total(backend.watch_messages_sent)
                reg.counter("watch_events_total", exchange=name
                            ).set_total(backend.watch_events_sent)
                reg.counter("watch_wire_bytes_total", exchange=name
                            ).set_total(backend.watch_wire_bytes)
                reg.counter("watch_deltas_total", exchange=name
                            ).set_total(backend.watch_deltas_sent)
                reg.counter("watch_fulls_total", exchange=name
                            ).set_total(backend.watch_fulls_sent)
                reg.gauge("store_available", exchange=name).set(
                    1.0 if backend.available else 0.0)
                # Flow-control plane (repro.flow): credit pauses, sheds,
                # forced resyncs, and the admission front door.
                pauses = getattr(backend, "watch_pauses", None)
                if pauses is not None:
                    reg.counter("watch_credit_pauses_total", exchange=name
                                ).set_total(pauses)
                    reg.counter("watch_shed_events_total", exchange=name
                                ).set_total(backend.watch_shed_events)
                    reg.counter("watch_forced_resyncs_total", exchange=name
                                ).set_total(backend.watch_forced_resyncs)
                    reg.counter("watch_credit_grants_total", exchange=name
                                ).set_total(backend.watch_credit_grants)
                admission_stats = None
                if getattr(backend, "admission", None) is not None:
                    stats_fn = getattr(backend, "admission_stats", None)
                    admission_stats = (stats_fn() if stats_fn is not None
                                       else backend.admission.stats())
                if admission_stats is not None:
                    reg.counter("admission_admitted_total", exchange=name
                                ).set_total(admission_stats["admitted"])
                    reg.counter("admission_rejected_total", exchange=name
                                ).set_total(admission_stats["rejected"])
                    for cls, entry in admission_stats["classes"].items():
                        reg.counter("admission_rejected_total", exchange=name,
                                    priority=cls
                                    ).set_total(entry["rejected"])
                        reg.gauge("admission_scale", exchange=name,
                                  priority=cls).set(entry["scale"])
                # Cross-shard transactional plane (repro.txn): the
                # in-doubt gauge is the recovery-health signal -- it
                # must drain to zero after a coordinator restart.
                in_doubt = getattr(backend, "in_doubt_txns", None)
                if in_doubt is not None:
                    reg.gauge("txn_in_doubt", exchange=name).set(in_doubt)
                txn_stats_fn = getattr(backend, "txn_stats", None)
                txn_stats = txn_stats_fn() if txn_stats_fn is not None else None
                if txn_stats:
                    for field in ("prepared", "committed", "aborted",
                                  "compensations", "idempotent_replays",
                                  "unknown_participants", "recoveries"):
                        reg.counter(f"txn_{field}_total", exchange=name
                                    ).set_total(txn_stats[field])
                # Elastic topology plane (repro.store.ring/reshard):
                # ring version, live shard count, write fencing, and
                # migration volume -- `knactor top` shows a reshard as a
                # ring_version bump plus a keys_moved jump.
                ring_version = getattr(backend, "ring_version", None)
                if ring_version is not None:
                    reg.gauge("ring_version", exchange=name).set(
                        ring_version)
                    reg.gauge("ring_shards", exchange=name).set(
                        len(backend.shards))
                    reg.counter("ring_fence_rejections_total",
                                exchange=name).set_total(
                                    backend.fence_rejections)
                    reroutes = sum(c.reroutes
                                   for c in getattr(backend, "_clients", ()))
                    reg.counter("ring_reroutes_total", exchange=name
                                ).set_total(reroutes)
                    reshard_stats = backend.reshard_stats
                    for field in ("reshards", "transitions", "keys_moved",
                                  "ranges_moved", "resyncs"):
                        reg.counter(f"reshard_{field}_total", exchange=name
                                    ).set_total(reshard_stats[field])
                copy_stats = getattr(backend, "copy_stats", None)
                if copy_stats is not None:
                    reg.counter("copied_bytes_total", exchange=name
                                ).set_total(copy_stats["copied_bytes"])
                    reg.counter("copy_bytes_avoided_total", exchange=name
                                ).set_total(
                                    copy_stats["shared_bytes_avoided"])
                if de.retry_policy is not None:
                    stats = de.retry_policy.stats()
                    for field in ("attempts", "retries", "giveups"):
                        reg.counter(f"retry_{field}_total", exchange=name
                                    ).set_total(stats[field])
            reg.counter("network_bytes_total").set_total(
                runtime.network.bytes_sent)
            for breaker in breakers:
                stats = breaker.stats()
                label = breaker.name or repr(breaker)
                reg.gauge("circuit_open", breaker=label).set(
                    1.0 if stats["state"] == "open" else 0.0)
                reg.counter("circuit_opened_total", breaker=label
                            ).set_total(stats["opened"])
                reg.counter("circuit_rejected_total", breaker=label
                            ).set_total(stats["rejected"])

        self.registry.register_collector(collect)
        return self

    def watch_autoscalers(self, autoscalers):
        """Scrape :class:`~repro.cluster.HorizontalAutoscaler` activity.

        Every registered autoscaler contributes its scaling-event count,
        current replica target, and the load it last acted on -- so
        ``knactor top`` shows elastic topology decisions next to the
        queue-depth signals that drove them.
        """
        autoscalers = list(autoscalers)

        def collect(reg):
            for scaler in autoscalers:
                label = scaler.deployment_name
                reg.counter("autoscale_events_total", deployment=label
                            ).set_total(len(scaler.events))
                try:
                    replicas = len(
                        scaler.cluster.deployment(label).ready_pods)
                except Exception:
                    replicas = 0
                reg.gauge("autoscale_replicas", deployment=label).set(
                    replicas)
                if scaler.events:
                    last = scaler.events[-1]
                    reg.gauge("autoscale_last_load", deployment=label).set(
                        last.load)
                    reg.gauge("autoscale_last_target", deployment=label
                              ).set(last.to_replicas)

        self.registry.register_collector(collect)
        return self

    def watch_breakers(self, breakers):
        """Late-bind client-side circuit breakers into the scrape set."""
        def collect(reg):
            for breaker in breakers:
                stats = breaker.stats()
                label = breaker.name or repr(breaker)
                reg.gauge("circuit_open", breaker=label).set(
                    1.0 if stats["state"] == "open" else 0.0)

        self.registry.register_collector(collect)

    # -- summary views -------------------------------------------------------

    def snapshot(self):
        """Metrics + trace-volume summary, all plain JSON data."""
        return {
            "metrics": self.registry.snapshot(),
            "traces": {
                "count": len(self.causal.trace_ids()),
                "spans": len(self.causal.spans),
            },
        }

    def dashboard(self):
        """The ``knactor top`` text view: every metric, one line per series."""
        snapshot = self.registry.snapshot()
        lines = [f"time {snapshot['time']:.3f}s  "
                 f"traces {len(self.causal.trace_ids())}  "
                 f"spans {len(self.causal.spans)}"]
        for name, entry in snapshot["metrics"].items():
            for key, value in entry["series"].items():
                label = f"{{{key}}}" if key else ""
                if entry["kind"] == "histogram":
                    if not value["count"]:
                        continue
                    p99 = value["p99"]
                    rendered = (
                        f"count={value['count']} p50={value['p50']:.6f} "
                        f"p99={p99:.6f}" if p99 is not None
                        else f"count={value['count']}"
                    )
                else:
                    rendered = (f"{value:.0f}" if float(value).is_integer()
                                else f"{value:.4f}")
                title = f"{name}{label}"
                lines.append(f"  {title:<56} {rendered}")
        return "\n".join(lines)
