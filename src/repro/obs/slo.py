"""Declarative SLOs over the observability plane.

The PR-4 obs plane records what happened; this layer judges it.  An
:class:`SLOSpec` declares one objective over the metrics
:class:`~repro.obs.registry.Registry`:

- :class:`LatencySLO` -- a percentile of a latency histogram stays under
  a threshold (``p99 of request_latency_seconds <= 250ms``),
- :class:`AvailabilitySLO` -- the good fraction of a request counter set
  stays above a target (sheds and admission rejections from the flow
  plane count against the budget),
- :class:`FreshnessSLO` -- a :class:`LatencySLO` over ``watch_lag_seconds``:
  how stale downstream state is allowed to run,
- :class:`TraceLatencySLO` -- the legacy trace-span objective (percentile
  of one integrator's exchange spans), folded in from
  ``repro.metrics.telemetry.SLOMonitor``.

Evaluation returns :class:`SLOResult` objects that carry **trace
exemplars**: the worst over-threshold samples keep their causal trace id
(see ``Registry.histogram(...).observe(v, exemplar=trace_id)``), so a
violated p99 objective is one ``knactor trace request`` away from the
causal DAG that produced it.

Budget accounting follows the multi-window burn-rate recipe: a
:class:`BurnRateTracker` samples cumulative good/total counts on the
schedule clock and reports, per configured :class:`BurnWindow`, how many
times faster than sustainable the error budget is burning.  An alert
fires only when the long *and* short window both exceed the window's
factor -- fast burns page quickly, slow burns page eventually, recovered
burns stop paging.

Everything is deterministic: evaluation reads counters and seeded
reservoirs, never wall clocks, so same-seed runs produce bit-identical
:class:`SLOReport` JSON.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

LATENCY = "latency"
AVAILABILITY = "availability"
FRESHNESS = "freshness"
TRACE_LATENCY = "trace-latency"


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) burn-rate alert window pair.

    ``factor`` is the burn-rate multiple that trips the alert: budget
    consumed ``factor`` times faster than the sustainable rate, observed
    over *both* the long window and the short confirmation window.
    """

    long_seconds: float
    short_seconds: float
    factor: float

    def __post_init__(self):
        if self.long_seconds <= self.short_seconds:
            raise ConfigurationError(
                "burn window needs long_seconds > short_seconds"
            )
        if self.factor <= 0:
            raise ConfigurationError("burn factor must be positive")


#: Google-SRE-shaped defaults scaled to simulation horizons: a fast-burn
#: pair that pages within seconds and a slow-burn pair for sustained leaks.
DEFAULT_WINDOWS = (
    BurnWindow(long_seconds=60.0, short_seconds=5.0, factor=14.4),
    BurnWindow(long_seconds=300.0, short_seconds=30.0, factor=6.0),
)


def _parse_label_key(label_key):
    if not label_key:
        return {}
    return dict(part.split("=", 1) for part in label_key.split(","))


def _match(label_key, labels):
    """True when every item of ``labels`` appears in the series key."""
    if not labels:
        return True
    have = _parse_label_key(label_key)
    return all(have.get(k) == str(v) for k, v in labels.items())


def _percentile(ordered, q):
    if not ordered:
        return None
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] * (1 - (rank - low)) + ordered[high] * (rank - low)


@dataclass
class SLOResult:
    """Outcome of evaluating one :class:`SLOSpec`."""

    name: str
    kind: str
    met: bool
    observed: float = None
    objective: float = None
    target: float = None          # good-fraction target (error budget base)
    sample_count: int = 0
    good: float = 0.0
    total: float = 0.0
    no_data: bool = False
    exemplars: list = field(default_factory=list)
    burn: list = field(default_factory=list)    # per-window burn rates
    budget_remaining: float = None
    detail: str = ""

    def describe(self):
        if self.no_data:
            return f"SLO {self.name} [{self.kind}]: NO DATA -> NOT MET"
        status = "MET" if self.met else "VIOLATED"
        line = f"SLO {self.name} [{self.kind}]: {self.detail} -> {status}"
        if self.budget_remaining is not None:
            line += f" (budget {self.budget_remaining * 100:.1f}% left)"
        if self.exemplars and not self.met:
            worst = self.exemplars[0]
            line += f" exemplar={worst['trace_id']}"
        return line

    def to_json(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "met": self.met,
            "no_data": self.no_data,
            "observed": self.observed,
            "objective": self.objective,
            "target": self.target,
            "sample_count": self.sample_count,
            "good": self.good,
            "total": self.total,
            "exemplars": list(self.exemplars),
            "burn": list(self.burn),
            "budget_remaining": self.budget_remaining,
            "detail": self.detail,
        }


@dataclass
class SLOSpec:
    """Base declaration: a name, a good-fraction target, alert windows.

    Subclasses define what "good" means by implementing
    :meth:`good_total` (cumulative good/total counts read from the
    registry) and :meth:`evaluate` (the point-in-time judgement).
    """

    name: str
    description: str = ""
    windows: tuple = DEFAULT_WINDOWS

    kind = "abstract"

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("an SLO needs a name")
        self.windows = tuple(self.windows)

    #: Good-fraction target backing the error budget (subclass-specific).
    def budget_target(self):
        raise NotImplementedError

    def good_total(self, registry):
        """Cumulative ``(good, total)`` counts at this instant."""
        raise NotImplementedError

    def evaluate(self, registry, tracker=None):
        """Judge the objective against the registry's current state."""
        raise NotImplementedError

    def _finish(self, result, tracker):
        """Attach burn rates + budget from the tracker, when sampling ran."""
        if tracker is not None:
            result.burn = tracker.burn_rates(self)
            result.budget_remaining = tracker.error_budget_remaining(self)
        return result


@dataclass
class LatencySLO(SLOSpec):
    """``percentile`` of histogram ``metric`` must stay <= ``threshold``.

    The good-fraction view (for burn rates) counts a sample good when it
    is at or under ``threshold_seconds``; the target good fraction is the
    declared percentile (p99 <= t means 99% of samples must be under t).
    """

    metric: str = "request_latency_seconds"
    labels: dict = field(default_factory=dict)
    percentile: float = 0.99
    threshold_seconds: float = None

    kind = LATENCY

    def __post_init__(self):
        super().__post_init__()
        if self.threshold_seconds is None or self.threshold_seconds <= 0:
            raise ConfigurationError(
                f"SLO {self.name!r}: threshold_seconds must be positive"
            )
        if not 0 < self.percentile < 1:
            raise ConfigurationError(
                f"SLO {self.name!r}: percentile must be in (0, 1)"
            )

    def budget_target(self):
        return self.percentile

    def _matching_series(self, registry):
        return [series for key, series
                in sorted(registry.get_series(self.metric).items())
                if _match(key, self.labels)]

    def good_total(self, registry):
        """Good/total from the reservoirs (exact while undecimated).

        Past the decimation cap the good count is the reservoir's
        under-threshold fraction scaled to the true count -- an estimate,
        but an unbiased one (decimation drops every other sample).
        """
        good = total = 0.0
        for series in self._matching_series(registry):
            if not series.count:
                continue
            under = sum(1 for v in series.values
                        if v <= self.threshold_seconds)
            scale = series.count / len(series.values) if series.values else 0
            good += under * scale
            total += series.count
        return good, total

    def _exemplars(self, registry):
        merged = []
        for series in self._matching_series(registry):
            for value, when, trace_id in series.exemplars or ():
                if value > self.threshold_seconds:
                    merged.append(
                        {"value": value, "time": when, "trace_id": trace_id}
                    )
        merged.sort(key=lambda e: e["value"], reverse=True)
        return merged[:4]

    def evaluate(self, registry, tracker=None):
        reservoir = []
        count = 0
        for series in self._matching_series(registry):
            reservoir.extend(series.values)
            count += series.count
        if not reservoir:
            return self._finish(SLOResult(
                name=self.name, kind=self.kind, met=False, no_data=True,
                objective=self.threshold_seconds, target=self.percentile,
                detail=f"no samples of {self.metric}",
            ), tracker)
        observed = _percentile(sorted(reservoir), self.percentile)
        good, total = self.good_total(registry)
        met = observed <= self.threshold_seconds
        result = SLOResult(
            name=self.name, kind=self.kind, met=met,
            observed=observed, objective=self.threshold_seconds,
            target=self.percentile, sample_count=count,
            good=good, total=total,
            exemplars=self._exemplars(registry) if not met else [],
            detail=(f"p{self.percentile * 100:g} {observed * 1000:.2f} ms "
                    f"vs {self.threshold_seconds * 1000:.2f} ms "
                    f"over {count} samples"),
        )
        return self._finish(result, tracker)


@dataclass
class FreshnessSLO(LatencySLO):
    """Watch-lag freshness: downstream staleness stays under a bound.

    A :class:`LatencySLO` whose histogram defaults to the obs plane's
    ``watch_lag_seconds`` (observed at every watch delivery, exemplar =
    the stale write's trace id).
    """

    metric: str = "watch_lag_seconds"

    kind = FRESHNESS


@dataclass
class AvailabilitySLO(SLOSpec):
    """Good fraction of a counter set stays >= ``target``.

    ``total`` and ``bad`` are iterables of ``(metric_name, labels)``
    counter selectors; matching series values are summed.  Good = total -
    bad, so the flow plane's shed and admission-rejection counters plug
    straight in as ``bad``.

    Counters carry no trace ids, so a violated availability objective
    borrows its exemplars from a companion histogram: set
    ``exemplar_metric`` (plus ``exemplar_labels``) to the latency
    histogram recorded alongside the counters and the report links the
    worst traces observed while the budget burned.
    """

    target: float = 0.999
    total: tuple = ()
    bad: tuple = ()
    exemplar_metric: str = None
    exemplar_labels: dict = field(default_factory=dict)

    kind = AVAILABILITY

    def __post_init__(self):
        super().__post_init__()
        if not 0 < self.target < 1:
            raise ConfigurationError(
                f"SLO {self.name!r}: target must be in (0, 1)"
            )
        if not self.total:
            raise ConfigurationError(
                f"SLO {self.name!r}: needs at least one total counter"
            )
        self.total = tuple(self.total)
        self.bad = tuple(self.bad)

    def budget_target(self):
        return self.target

    @staticmethod
    def _sum(registry, selectors):
        out = 0.0
        for metric, labels in selectors:
            for key, series in sorted(registry.get_series(metric).items()):
                if _match(key, labels):
                    out += series.value
        return out

    def good_total(self, registry):
        total = self._sum(registry, self.total)
        bad = min(self._sum(registry, self.bad), total)
        return total - bad, total

    def _exemplars(self, registry):
        if not self.exemplar_metric:
            return []
        merged = []
        for key, series in sorted(
            registry.get_series(self.exemplar_metric).items()
        ):
            if not _match(key, self.exemplar_labels):
                continue
            for value, when, trace_id in series.exemplars or ():
                merged.append(
                    {"value": value, "time": when, "trace_id": trace_id}
                )
        merged.sort(key=lambda e: e["value"], reverse=True)
        return merged[:4]

    def evaluate(self, registry, tracker=None):
        good, total = self.good_total(registry)
        if total <= 0:
            return self._finish(SLOResult(
                name=self.name, kind=self.kind, met=False, no_data=True,
                objective=self.target, target=self.target,
                detail="no requests counted",
            ), tracker)
        availability = good / total
        met = availability >= self.target
        result = SLOResult(
            name=self.name, kind=self.kind, met=met,
            observed=availability, objective=self.target, target=self.target,
            sample_count=int(total), good=good, total=total,
            exemplars=self._exemplars(registry) if not met else [],
            detail=(f"availability {availability * 100:.3f}% vs "
                    f"{self.target * 100:.3f}% "
                    f"({total - good:g}/{total:g} bad)"),
        )
        return self._finish(result, tracker)


@dataclass
class TraceLatencySLO(SLOSpec):
    """The legacy objective: a percentile of one integrator's exchange
    spans (begin -> end in the latency tracer) under a target.

    Folded in from ``repro.metrics.telemetry.SLOMonitor``; evaluated
    against a :class:`~repro.simnet.trace.Tracer` rather than the
    registry, so it has no burn-rate view.
    """

    integrator: str = None
    target_seconds: float = None
    percentile: float = 0.99

    kind = TRACE_LATENCY

    def __post_init__(self):
        super().__post_init__()
        if not self.integrator:
            raise ConfigurationError(
                f"SLO {self.name!r}: needs an integrator"
            )
        if self.target_seconds is None or self.target_seconds <= 0:
            raise ConfigurationError("target_seconds must be positive")
        if not 0 < self.percentile <= 1:
            raise ConfigurationError("percentile must be in (0, 1]")

    def budget_target(self):
        return min(self.percentile, 0.999999)

    def evaluate_trace(self, tracer):
        """Judge against a latency tracer's exchange spans."""
        from repro.metrics.telemetry import exchange_durations

        durations = exchange_durations(tracer, self.integrator)
        if not durations:
            return SLOResult(
                name=self.name, kind=self.kind, met=False, no_data=True,
                objective=self.target_seconds, target=self.percentile,
                detail=f"no exchange spans for {self.integrator}",
            )
        observed = _percentile(sorted(durations), self.percentile)
        met = observed <= self.target_seconds
        good = sum(1 for d in durations if d <= self.target_seconds)
        return SLOResult(
            name=self.name, kind=self.kind, met=met,
            observed=observed, objective=self.target_seconds,
            target=self.percentile, sample_count=len(durations),
            good=good, total=len(durations),
            detail=(f"p{self.percentile * 100:g} {observed * 1000:.2f} ms "
                    f"vs {self.target_seconds * 1000:.2f} ms over "
                    f"{len(durations)} spans"),
        )

    def evaluate(self, registry, tracker=None):
        raise ConfigurationError(
            f"SLO {self.name!r} evaluates a tracer; call evaluate_trace()"
        )


class BurnRateTracker:
    """Samples cumulative good/total per SLO; answers burn-rate queries.

    Call :meth:`sample` at interesting instants, or :meth:`start` to
    sample every ``interval`` schedule-seconds as a process.  Burn rate
    over a window = (bad fraction in the window) / (error budget), where
    the budget is ``1 - spec.budget_target()``; 1.0 means the budget is
    being consumed exactly as fast as it accrues.
    """

    def __init__(self, env, registry, specs, interval=1.0):
        if interval <= 0:
            raise ConfigurationError("sample interval must be positive")
        self.env = env
        self.registry = registry
        self.specs = list(specs)
        self.interval = interval
        self._samples = {spec.name: [] for spec in self.specs}
        self._running = False

    def sample(self):
        """Record one (time, good, total) point per tracked SLO."""
        self.registry.collect()
        now = self.env.now
        for spec in self.specs:
            good, total = spec.good_total(self.registry)
            self._samples[spec.name].append((now, good, total))

    def start(self):
        if self._running:
            return None
        self._running = True
        return self.env.process(self._run())

    def stop(self):
        self._running = False

    def _run(self):
        while self._running:
            yield self.env.timeout(self.interval)
            if not self._running:
                return
            self.sample()

    # -- queries -------------------------------------------------------------

    def _window_bad_fraction(self, name, window_seconds):
        samples = self._samples.get(name, ())
        if len(samples) < 1:
            return None
        now, good_now, total_now = samples[-1]
        cutoff = now - window_seconds
        # Latest sample at or before the cutoff; the run's start (zero
        # counts) anchors windows longer than the history.
        base = (0.0, 0.0, 0.0)
        for entry in samples:
            if entry[0] <= cutoff:
                base = entry
            else:
                break
        _t, good_then, total_then = base
        dt_total = total_now - total_then
        if dt_total <= 0:
            return None
        dt_bad = (total_now - good_now) - (total_then - good_then)
        return max(0.0, dt_bad) / dt_total

    def burn_rates(self, spec):
        """Per-window burn rates + alert state for one SLO."""
        budget = 1.0 - spec.budget_target()
        out = []
        for window in spec.windows:
            long_frac = self._window_bad_fraction(
                spec.name, window.long_seconds)
            short_frac = self._window_bad_fraction(
                spec.name, window.short_seconds)
            long_burn = (long_frac / budget) if long_frac is not None else None
            short_burn = (short_frac / budget) if short_frac is not None else None
            out.append({
                "long_seconds": window.long_seconds,
                "short_seconds": window.short_seconds,
                "factor": window.factor,
                "long_burn": long_burn,
                "short_burn": short_burn,
                "alert": (long_burn is not None and short_burn is not None
                          and long_burn >= window.factor
                          and short_burn >= window.factor),
            })
        return out

    def error_budget_remaining(self, spec):
        """Run-to-date budget left, in [0, 1] (None before any data)."""
        samples = self._samples.get(spec.name, ())
        if not samples:
            return None
        _t, good, total = samples[-1]
        if total <= 0:
            return None
        budget = 1.0 - spec.budget_target()
        consumed = ((total - good) / total) / budget if budget > 0 else 0.0
        return max(0.0, 1.0 - consumed)

    def alerts(self):
        """Every (slo, window) pair currently in the alerting state."""
        firing = []
        for spec in self.specs:
            for entry in self.burn_rates(spec):
                if entry["alert"]:
                    firing.append((spec.name, entry))
        return firing


@dataclass
class SLOReport:
    """Per-scenario judgement: every declared SLO, evaluated once."""

    scenario: str
    results: list = field(default_factory=list)
    time: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def met(self):
        return all(r.met for r in self.results)

    def violated(self):
        return [r for r in self.results if not r.met]

    def to_json(self):
        return {
            "scenario": self.scenario,
            "time": self.time,
            "met": self.met,
            "objectives": [r.to_json() for r in self.results],
            "meta": dict(self.meta),
        }

    def describe(self):
        lines = [f"SLO report: {self.scenario} at t={self.time:.3f}s "
                 f"-> {'ALL MET' if self.met else 'VIOLATIONS'}"]
        for result in self.results:
            lines.append("  " + result.describe())
        return "\n".join(lines)


def evaluate(specs, registry, tracker=None, scenario="", env=None, meta=None):
    """Evaluate every spec against the registry; returns an :class:`SLOReport`.

    :class:`TraceLatencySLO` specs are skipped (they need a tracer; use
    ``evaluate_trace``) -- mixing vocabularies is allowed, judging them
    together is not.
    """
    registry.collect()
    results = [
        spec.evaluate(registry, tracker=tracker)
        for spec in specs
        if not isinstance(spec, TraceLatencySLO)
    ]
    now = env.now if env is not None else getattr(registry.env, "now", 0.0)
    return SLOReport(scenario=scenario, results=results, time=now,
                     meta=dict(meta or {}))
