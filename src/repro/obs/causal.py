"""The causal tracer: spans linked by parenthood across services/stores.

Where :class:`repro.simnet.trace.Tracer` collects flat point events and
keyed spans for latency breakdowns, the :class:`CausalTracer` records a
**DAG**: every span knows its parent, every context inherits its trace
id and baggage, and commits/exchanges/reconciles chain into one
end-to-end picture per request -- Apiary-style provenance captured for
free because every interaction is mediated by the data layer.

Span ids are counter-based, never random: the simulation's determinism
contract (identical seeds -> identical schedules) extends to traces.
"""

from dataclasses import dataclass, field


@dataclass
class CausalSpan:
    """One node of the causal DAG."""

    trace_id: str
    span_id: str
    parent_id: str  # None for a root
    name: str
    service: str
    start: float
    end: float = None
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)  # (time, name, attrs)
    baggage: dict = field(default_factory=dict)

    @property
    def duration(self):
        return (self.end if self.end is not None else self.start) - self.start


class CausalTracer:
    """Mints trace contexts and stores the spans they describe."""

    def __init__(self, env):
        self.env = env
        # Wall-clock stamps on the realtime backend (see simnet.trace).
        clock = getattr(env, "trace_clock", None)
        self._clock = clock if clock is not None else (lambda: env.now)
        self.plane = None  # back-reference set by ObsPlane
        self._seq = 0
        self.spans = {}  # span_id -> CausalSpan
        self._traces = {}  # trace_id -> [span_id] in creation order

    def _next_id(self, prefix):
        self._seq += 1
        return f"{prefix}{self._seq:06d}"

    # -- recording -----------------------------------------------------------

    def new_trace(self, name, service, baggage=None, **attrs):
        """Open a root span of a brand-new trace; returns its context."""
        return self.start_span(name, service, parent=None,
                               baggage=baggage, **attrs)

    def start_span(self, name, service, parent=None, baggage=None, **attrs):
        """Open a span (a child of ``parent`` when given); returns a context.

        Baggage is inherited from the parent and merged with any new
        entries, so request-scoped keys (the order id) reach every
        descendant.
        """
        from repro.obs.context import TraceContext

        if parent is not None:
            trace_id = parent.trace_id
            merged = dict(parent.baggage)
        else:
            trace_id = self._next_id("t")
            merged = {}
        if baggage:
            merged.update(baggage)
        span_id = self._next_id("s")
        span = CausalSpan(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            service=service,
            start=self._clock(),
            attrs=dict(attrs),
            baggage=merged,
        )
        self.spans[span_id] = span
        self._traces.setdefault(trace_id, []).append(span_id)
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=span.parent_id,
            baggage=merged,
            sink=self,
        )

    def end_span(self, ctx, **attrs):
        """Close the span named by ``ctx`` (idempotent: first end wins)."""
        span = self.spans.get(ctx.span_id)
        if span is None:
            return None
        if span.end is None:
            span.end = self._clock()
        span.attrs.update(attrs)
        return span

    def point(self, name, service, parent=None, baggage=None, **attrs):
        """A zero-duration span (e.g. a store commit); returns its context."""
        ctx = self.start_span(name, service, parent=parent,
                              baggage=baggage, **attrs)
        self.end_span(ctx)
        return ctx

    def annotate(self, ctx, name, **attrs):
        """Attach a point event (retry, dead-letter, ...) to a span."""
        span = self.spans.get(ctx.span_id)
        if span is not None:
            span.events.append((self._clock(), name, attrs))

    # -- queries -------------------------------------------------------------

    def trace_ids(self):
        return list(self._traces)

    def spans_of(self, trace_id):
        """All spans of one trace, in creation (= causal) order."""
        return [self.spans[sid] for sid in self._traces.get(trace_id, ())]

    def roots(self, trace_id):
        return [s for s in self.spans_of(trace_id) if s.parent_id is None]

    def children(self, span_id):
        span = self.spans.get(span_id)
        if span is None:
            return []
        return [
            s for s in self.spans_of(span.trace_id) if s.parent_id == span_id
        ]

    def dag(self, trace_id):
        """Adjacency: span_id -> [child span_ids], in causal order."""
        edges = {s.span_id: [] for s in self.spans_of(trace_id)}
        for span in self.spans_of(trace_id):
            if span.parent_id is not None and span.parent_id in edges:
                edges[span.parent_id].append(span.span_id)
        return edges

    def services(self, trace_id):
        """Every service a trace touched (sorted)."""
        return sorted({s.service for s in self.spans_of(trace_id)})

    def stores(self, trace_id):
        """Every store a trace wrote (sorted; from write-span attrs)."""
        return sorted({
            s.attrs["store"]
            for s in self.spans_of(trace_id)
            if "store" in s.attrs
        })

    def find_trace(self, **baggage):
        """The first trace whose root baggage matches every given item."""
        for trace_id, span_ids in self._traces.items():
            root = self.spans[span_ids[0]]
            if all(root.baggage.get(k) == v for k, v in baggage.items()):
                return trace_id
        return None

    def critical_path(self, trace_id):
        """Root -> latest-finishing leaf: the request's slowest chain."""
        spans = self.spans_of(trace_id)
        if not spans:
            return []
        latest = max(spans, key=lambda s: (s.end if s.end is not None
                                           else s.start, s.span_id))
        path = [latest]
        while path[-1].parent_id is not None:
            parent = self.spans.get(path[-1].parent_id)
            if parent is None:
                break
            path.append(parent)
        path.reverse()
        return path

    # -- exporters -----------------------------------------------------------

    def to_chrome_trace(self):
        """Chrome trace-event JSON objects: one ``X`` event per span.

        Services map to processes (``pid``) and traces to threads
        (``tid``), so one request reads as one line across service
        tracks.  Still-open spans export with their current extent.
        """
        out = []
        for span in self.spans.values():
            end = span.end if span.end is not None else self._clock()
            args = {"span": span.span_id, "trace": span.trace_id}
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            args.update(span.attrs)
            if span.baggage:
                args["baggage"] = dict(span.baggage)
            out.append({
                "name": span.name,
                "cat": "causal",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": span.service,
                "tid": span.trace_id,
                "args": args,
            })
        out.sort(key=lambda entry: (entry["ts"], entry["args"]["span"]))
        return out

    def request_report(self, trace_id):
        """Human-readable provenance + critical-path report for one trace."""
        spans = self.spans_of(trace_id)
        if not spans:
            return f"trace {trace_id}: no spans recorded"
        root = spans[0]
        start = min(s.start for s in spans)
        finish = max(s.end if s.end is not None else s.start for s in spans)
        lines = [
            f"trace {trace_id}"
            + (f"  baggage={root.baggage}" if root.baggage else ""),
            f"  {len(spans)} spans over {(finish - start) * 1000:.2f} ms, "
            f"services: {', '.join(self.services(trace_id))}",
        ]
        stores = self.stores(trace_id)
        if stores:
            lines.append(f"  stores written: {', '.join(stores)}")
        lines.append("")
        by_parent = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)

        def render(span, depth):
            marker = "" if span.end is not None else "  [open]"
            lines.append(
                f"  {'  ' * depth}{span.name} [{span.service}] "
                f"@{span.start * 1000:.2f}ms +{span.duration * 1000:.2f}ms"
                f"{marker}"
            )
            for _time, name, attrs in span.events:
                lines.append(f"  {'  ' * (depth + 1)}* {name} {attrs}")
            for child in by_parent.get(span.span_id, ()):
                render(child, depth + 1)

        for span in by_parent.get(None, ()):
            render(span, 0)
        path = self.critical_path(trace_id)
        lines.append("")
        lines.append("  critical path: " + " -> ".join(
            f"{s.name}[{s.service}]" for s in path
        ))
        return "\n".join(lines)
