"""A labeled metrics registry with sim-time-aware windowing.

The registry absorbs the accounting that previous PRs scattered across
components -- ``CopyMeter`` bytes, watch wire bytes, retry/breaker
counts, queue depths, watch lag -- behind one ``Registry.snapshot()``.

Two feeding modes, Prometheus-style:

- **direct instruments**: hot-path code calls
  ``registry.counter(name, **labels).inc()`` /
  ``histogram(...).observe(v)``;
- **collectors**: pull callbacks registered via
  :meth:`Registry.register_collector` scrape existing component counters
  at snapshot time, so legacy accounting joins the registry without
  touching its write paths.

Windowing is virtual-time aware: :meth:`Registry.window` captures the
cumulative totals at ``env.now``; ``window.delta()`` later yields
per-series increases and rates over the elapsed *simulated* interval.
"""

from repro.errors import ConfigurationError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Histograms decimate (drop every other sample) past this many values,
#: bounding memory while keeping percentile estimates stable.
_HISTOGRAM_CAP = 8192

#: Worst-sample exemplars kept per histogram series: enough to hand an
#: SLO violation a causal trace id without growing with the run.
_EXEMPLAR_CAP = 4


def _label_key(labels):
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Series:
    """One (metric, label-set) time series."""

    __slots__ = ("kind", "value", "values", "count", "total",
                 "last_updated", "_stride", "exemplars")

    def __init__(self, kind):
        self.kind = kind
        self.value = 0.0  # counter total / gauge level
        self.values = [] if kind == HISTOGRAM else None
        self.count = 0
        self.total = 0.0
        self.last_updated = None
        self._stride = 1  # histogram decimation stride
        # Worst observations carrying a trace id: [(value, time, trace_id)],
        # kept sorted descending by value, capped at _EXEMPLAR_CAP.
        self.exemplars = [] if kind == HISTOGRAM else None


class _Handle:
    """What instrument calls return: bound to one series."""

    __slots__ = ("_registry", "_series")

    def __init__(self, registry, series):
        self._registry = registry
        self._series = series

    def inc(self, amount=1.0):
        if self._series.kind != COUNTER:
            raise ConfigurationError(
                f"inc() on a {self._series.kind}"
            )
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self._series.value += amount
        self._touch()

    def set_total(self, value):
        """Collector scrape: adopt a cumulative total from elsewhere."""
        if self._series.kind != COUNTER:
            raise ConfigurationError(f"set_total() on a {self._series.kind}")
        self._series.value = float(value)
        self._touch()

    def set(self, value):
        if self._series.kind != GAUGE:
            raise ConfigurationError(f"set() on a {self._series.kind}")
        self._series.value = float(value)
        self._touch()

    def observe(self, value, exemplar=None):
        """Record one sample; ``exemplar`` (a causal trace id) links the
        observation to its trace.  Only the worst few exemplars are kept,
        so a p99 violation is always one ``knactor trace request`` away
        from the causal DAG that produced it."""
        series = self._series
        if series.kind != HISTOGRAM:
            raise ConfigurationError(f"observe() on a {series.kind}")
        series.count += 1
        series.total += value
        if series.count % series._stride == 0:
            series.values.append(value)
            if len(series.values) > _HISTOGRAM_CAP:
                series.values = series.values[::2]
                series._stride *= 2
        if exemplar is not None:
            exemplars = series.exemplars
            if len(exemplars) < _EXEMPLAR_CAP or value > exemplars[-1][0]:
                exemplars.append((value, self._registry._clock(), exemplar))
                exemplars.sort(key=lambda e: e[0], reverse=True)
                del exemplars[_EXEMPLAR_CAP:]
        self._touch()

    def _touch(self):
        self._series.last_updated = self._registry._clock()

    @property
    def value(self):
        return self._series.value


class Registry:
    """All metrics of one simulation run."""

    def __init__(self, env):
        self.env = env
        # Wall-clock stamps on the realtime backend (see simnet.trace).
        clock = getattr(env, "trace_clock", None)
        self._clock = clock if clock is not None else (lambda: env.now)
        self._metrics = {}  # name -> (kind, {label_key: _Series})
        self._collectors = []

    # -- instruments ---------------------------------------------------------

    def counter(self, name, **labels):
        return self._handle(name, COUNTER, labels)

    def gauge(self, name, **labels):
        return self._handle(name, GAUGE, labels)

    def histogram(self, name, **labels):
        return self._handle(name, HISTOGRAM, labels)

    def _handle(self, name, kind, labels):
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {entry[0]}, not a {kind}"
            )
        key = _label_key(labels)
        series = entry[1].get(key)
        if series is None:
            series = _Series(kind)
            entry[1][key] = series
        return _Handle(self, series)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn):
        """``fn(registry)`` runs at every snapshot (scrape-on-read)."""
        self._collectors.append(fn)
        return fn

    def collect(self):
        for fn in self._collectors:
            fn(self)

    # -- reading -------------------------------------------------------------

    def get_series(self, name):
        """All ``label_key -> _Series`` of one metric ({} when absent).

        The SLO layer reads raw reservoirs through this to evaluate
        arbitrary percentiles and over-threshold fractions that the
        p50/p99 snapshot summary cannot answer.
        """
        entry = self._metrics.get(name)
        return dict(entry[1]) if entry is not None else {}

    @staticmethod
    def _percentile(ordered, q):
        if not ordered:
            return None
        rank = q * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] * (1 - (rank - low)) + ordered[high] * (rank - low)

    def _series_value(self, series):
        if series.kind == HISTOGRAM:
            ordered = sorted(series.values)
            summary = {
                "count": series.count,
                "sum": series.total,
                "min": ordered[0] if ordered else None,
                "max": ordered[-1] if ordered else None,
                "p50": self._percentile(ordered, 0.5),
                "p99": self._percentile(ordered, 0.99),
            }
            if series.exemplars:
                summary["exemplars"] = [
                    {"value": value, "time": when, "trace_id": trace_id}
                    for value, when, trace_id in series.exemplars
                ]
            return summary
        return series.value

    def snapshot(self):
        """Run collectors, then return every metric as plain JSON data:
        ``{"time": ..., "metrics": {name: {"kind": ...,
        "series": {labels: value-or-summary}}}}``."""
        self.collect()
        metrics = {}
        for name in sorted(self._metrics):
            kind, series_map = self._metrics[name]
            metrics[name] = {
                "kind": kind,
                "series": {
                    key: self._series_value(series)
                    for key, series in sorted(series_map.items())
                },
            }
        return {"time": self._clock(), "metrics": metrics}

    def window(self):
        """Mark the current totals; ``delta()`` later gives rates."""
        return RegistryWindow(self, self.snapshot())


class RegistryWindow:
    """Cumulative-total mark for sim-time rate computation."""

    def __init__(self, registry, baseline):
        self.registry = registry
        self.baseline = baseline

    def delta(self):
        """Per-counter increase and rate since the window opened.

        Rates are over elapsed *virtual* seconds.  Gauges report their
        current level; histograms the count/sum increase.
        """
        current = self.registry.snapshot()
        elapsed = current["time"] - self.baseline["time"]
        out = {"interval": elapsed, "metrics": {}}
        base_metrics = self.baseline["metrics"]
        for name, entry in current["metrics"].items():
            series_out = {}
            for key, value in entry["series"].items():
                before = base_metrics.get(name, {}).get("series", {}).get(key)
                if entry["kind"] == COUNTER:
                    increase = value - (before or 0.0)
                    series_out[key] = {
                        "increase": increase,
                        "rate": increase / elapsed if elapsed > 0 else None,
                    }
                elif entry["kind"] == HISTOGRAM:
                    series_out[key] = {
                        "count": value["count"]
                        - (before["count"] if before else 0),
                        "sum": value["sum"]
                        - (before["sum"] if before else 0.0),
                    }
                else:
                    series_out[key] = {"level": value}
            out["metrics"][name] = series_out
        return out
