"""Deterministic discrete-event simulation kernel.

``simnet`` is a small SimPy-flavoured kernel purpose-built for this
reproduction.  Every substrate in the repository (data stores, RPC channels,
pub/sub brokers, reconcilers, integrators) runs as processes on a shared
:class:`Environment` with a virtual clock, which makes latency experiments
deterministic, seedable, and orders of magnitude faster than wall-clock
execution.

Core concepts:

- :class:`Environment` -- the event loop and virtual clock.
- :class:`Event` -- a one-shot occurrence processes can wait on.
- :class:`Process` -- a generator-based coroutine; ``yield`` an event to
  suspend until it fires.
- :class:`Store` / :class:`Resource` -- blocking queue / counting semaphore.
- :class:`Link` / :class:`Network` -- message delivery with pluggable
  latency models.
- :class:`Tracer` -- structured event/span recording used by the latency
  benchmarks.
"""

from repro.simnet.events import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.simnet.process import Process
from repro.simnet.queue import Resource, Store
from repro.simnet.network import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    Link,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.simnet.trace import Span, TraceError, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "ExponentialLatency",
    "FixedLatency",
    "Interrupt",
    "LatencyModel",
    "Link",
    "LogNormalLatency",
    "Network",
    "Process",
    "Resource",
    "SimulationError",
    "Span",
    "Store",
    "Timeout",
    "TraceError",
    "Tracer",
    "UniformLatency",
]
