"""Network links with pluggable latency models.

The substrates (stores, RPC channels, brokers) communicate over
:class:`Link` objects.  A link samples a latency from its
:class:`LatencyModel` and delivers the message by invoking a handler (or
fulfilling an event) after that delay.  FIFO links additionally guarantee
per-link ordering even when sampled latencies would reorder messages, which
matches TCP-like transports.
"""

import math
import random

from repro.errors import ConfigurationError


class LatencyModel:
    """Base class: samples per-message one-way delays in seconds."""

    def sample(self):
        raise NotImplementedError

    def mean(self):
        """Analytic mean of the distribution (used by planners/tests)."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant delay."""

    def __init__(self, delay):
        if delay < 0:
            raise ConfigurationError(f"negative latency {delay}")
        self.delay = float(delay)

    def sample(self):
        return self.delay

    def mean(self):
        return self.delay

    def __repr__(self):
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low, high, seed=None):
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._rng = random.Random(seed)

    def sample(self):
        return self._rng.uniform(self.low, self.high)

    def mean(self):
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, plus an optional floor."""

    def __init__(self, mean, floor=0.0, seed=None):
        if mean <= 0 or floor < 0:
            raise ConfigurationError(
                f"invalid exponential parameters mean={mean} floor={floor}"
            )
        self._mean = float(mean)
        self.floor = float(floor)
        self._rng = random.Random(seed)

    def sample(self):
        return self.floor + self._rng.expovariate(1.0 / self._mean)

    def mean(self):
        return self.floor + self._mean

    def __repr__(self):
        return f"ExponentialLatency(mean={self._mean}, floor={self.floor})"


class LogNormalLatency(LatencyModel):
    """Log-normal delay parameterized by its *actual* median and sigma.

    Real network / service-time distributions are heavy-tailed; the paper's
    shipment-processing stage (FedEx API, ~446 ms) is modelled this way.
    """

    def __init__(self, median, sigma=0.1, seed=None):
        if median <= 0 or sigma < 0:
            raise ConfigurationError(
                f"invalid lognormal parameters median={median} sigma={sigma}"
            )
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)
        self._rng = random.Random(seed)

    def sample(self):
        if self.sigma == 0:
            return self.median
        return self._rng.lognormvariate(self._mu, self.sigma)

    def mean(self):
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self):
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class Link:
    """One-way message pipe with latency and optional FIFO ordering."""

    def __init__(self, env, latency=None, fifo=True, name=""):
        self.env = env
        self.latency = latency if latency is not None else FixedLatency(0.0)
        self.fifo = fifo
        self.name = name
        self._last_delivery = -math.inf
        self.delivered = 0

    def send(self, handler, message):
        """Deliver ``message`` to ``handler(message)`` after sampled latency."""
        delay = self.latency.sample()
        if self.fifo:
            # Never deliver before a previously sent message on this link.
            arrival = max(self.env.now + delay, self._last_delivery)
            self._last_delivery = arrival
            delay = arrival - self.env.now
        event = self.env.event()

        def fire(_evt):
            self.delivered += 1
            handler(message)

        event.callbacks.append(fire)
        event._ok = True
        event._value = None
        self.env.schedule(event, delay=delay)
        return self.env.now + delay

    def transfer(self, value=None):
        """Event that fires with ``value`` after sampled latency.

        Convenience for process code: ``result = yield link.transfer(x)``.
        """
        delay = self.latency.sample()
        if self.fifo:
            arrival = max(self.env.now + delay, self._last_delivery)
            self._last_delivery = arrival
            delay = arrival - self.env.now
        self.delivered += 1
        return self.env.timeout(delay, value)

    def __repr__(self):
        return f"<Link {self.name or id(self):#x} latency={self.latency!r}>"


class Network:
    """A registry of named endpoints and the links between them.

    Links are created lazily with a default latency model; specific pairs
    can be overridden (e.g. the integrator may be co-located with the DE).
    """

    def __init__(self, env, default_latency=None):
        self.env = env
        self.default_latency = (
            default_latency if default_latency is not None else FixedLatency(0.0005)
        )
        self._links = {}
        self._overrides = {}

    def set_latency(self, src, dst, latency, symmetric=True):
        """Override the latency model for ``src -> dst`` (and back)."""
        self._overrides[(src, dst)] = latency
        if symmetric:
            self._overrides[(dst, src)] = latency
        # Drop any cached links so the override takes effect.
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)

    def link(self, src, dst):
        """The (cached) FIFO link from ``src`` to ``dst``."""
        key = (src, dst)
        if key not in self._links:
            latency = self._overrides.get(key, self.default_latency)
            self._links[key] = Link(self.env, latency, name=f"{src}->{dst}")
        return self._links[key]

    def transfer(self, src, dst, value=None):
        """Event firing with ``value`` after the ``src -> dst`` latency."""
        return self.link(src, dst).transfer(value)
