"""Network links with pluggable latency models.

The substrates (stores, RPC channels, brokers) communicate over
:class:`Link` objects.  A link samples a latency from its
:class:`LatencyModel` and delivers the message by invoking a handler (or
fulfilling an event) after that delay.  FIFO links additionally guarantee
per-link ordering even when sampled latencies would reorder messages, which
matches TCP-like transports.

Fault model (:mod:`repro.faults`): a :class:`Network` carries per-pair
fault rules -- partitions, probabilistic drop windows, latency spikes --
that links consult on every delivery.  One-way ``send`` deliveries are
silently lost (datagram semantics; reliable streams layered on top, like
store watches, detect the break and resync).  Round-trip ``transfer``
events *fail* with a retryable
:class:`~repro.errors.UnavailableError` (connection-reset semantics), so
client code can retry through :class:`repro.faults.RetryPolicy`.
"""

import math
import random

from repro.errors import ConfigurationError, UnavailableError


class LatencyModel:
    """Base class: samples per-message one-way delays in seconds."""

    def sample(self):
        raise NotImplementedError

    def mean(self):
        """Analytic mean of the distribution (used by planners/tests)."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant delay."""

    def __init__(self, delay):
        if delay < 0:
            raise ConfigurationError(f"negative latency {delay}")
        self.delay = float(delay)

    def sample(self):
        return self.delay

    def mean(self):
        return self.delay

    def __repr__(self):
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low, high, seed=None):
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._rng = random.Random(seed)

    def sample(self):
        return self._rng.uniform(self.low, self.high)

    def mean(self):
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, plus an optional floor."""

    def __init__(self, mean, floor=0.0, seed=None):
        if mean <= 0 or floor < 0:
            raise ConfigurationError(
                f"invalid exponential parameters mean={mean} floor={floor}"
            )
        self._mean = float(mean)
        self.floor = float(floor)
        self._rng = random.Random(seed)

    def sample(self):
        return self.floor + self._rng.expovariate(1.0 / self._mean)

    def mean(self):
        return self.floor + self._mean

    def __repr__(self):
        return f"ExponentialLatency(mean={self._mean}, floor={self.floor})"


class LogNormalLatency(LatencyModel):
    """Log-normal delay parameterized by its *actual* median and sigma.

    Real network / service-time distributions are heavy-tailed; the paper's
    shipment-processing stage (FedEx API, ~446 ms) is modelled this way.
    """

    def __init__(self, median, sigma=0.1, seed=None):
        if median <= 0 or sigma < 0:
            raise ConfigurationError(
                f"invalid lognormal parameters median={median} sigma={sigma}"
            )
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)
        self._rng = random.Random(seed)

    def sample(self):
        if self.sigma == 0:
            return self.median
        return self._rng.lognormvariate(self._mu, self.sigma)

    def mean(self):
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self):
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class Link:
    """One-way message pipe with latency and optional FIFO ordering.

    Links created through a :class:`Network` know their endpoints and
    consult the network's fault rules on every delivery.
    """

    def __init__(self, env, latency=None, fifo=True, name="",
                 network=None, src=None, dst=None):
        self.env = env
        self.latency = latency if latency is not None else FixedLatency(0.0)
        self.fifo = fifo
        self.name = name
        self.network = network
        self.src = src
        self.dst = dst
        self._last_delivery = -math.inf
        self.delivered = 0
        self.dropped = 0
        #: Payload bytes carried (senders that know their wire size pass
        #: ``size=``; store watch fan-out does).  Zero-sized sends are
        #: control traffic.
        self.bytes_sent = 0

    def _fault_verdict(self):
        """``(lost, extra_delay)`` from the owning network's fault rules."""
        if self.network is None or self.src is None:
            return False, 0.0
        return self.network.fault_verdict(self.src, self.dst)

    def send(self, handler, message, size=0):
        """Deliver ``message`` to ``handler(message)`` after sampled latency.

        Returns the arrival time, or ``None`` when a fault rule dropped
        the message (the handler never runs).  ``size`` is the payload's
        wire size in bytes, accounted on the link (dropped messages still
        hit the wire).
        """
        lost, extra = self._fault_verdict()
        self.bytes_sent += size
        if lost:
            self.dropped += 1
            return None
        delay = self.latency.sample() + extra
        if self.fifo:
            # Never deliver before a previously sent message on this link.
            arrival = max(self.env.now + delay, self._last_delivery)
            self._last_delivery = arrival
            delay = arrival - self.env.now
        event = self.env.event()

        def fire(_evt):
            self.delivered += 1
            handler(message)

        event.callbacks.append(fire)
        event._ok = True
        event._value = None
        self.env.schedule(event, delay=delay)
        return self.env.now + delay

    def transfer(self, value=None, size=0):
        """Event that fires with ``value`` after sampled latency.

        Convenience for process code: ``result = yield link.transfer(x)``.
        Under an active fault rule the event *fails* with
        :class:`~repro.errors.UnavailableError` after the sampled delay
        (connection reset), so the yielding process sees a retryable
        exception rather than hanging forever.
        """
        lost, extra = self._fault_verdict()
        self.bytes_sent += size
        delay = self.latency.sample() + extra
        if lost:
            self.dropped += 1
            failed = self.env.timeout(delay)
            failed._ok = False
            failed._value = UnavailableError(
                f"link {self.name or '?'} is unreachable"
            )
            return failed
        if self.fifo:
            arrival = max(self.env.now + delay, self._last_delivery)
            self._last_delivery = arrival
            delay = arrival - self.env.now
        self.delivered += 1
        return self.env.timeout(delay, value)

    def __repr__(self):
        return f"<Link {self.name or id(self):#x} latency={self.latency!r}>"


class Network:
    """A registry of named endpoints and the links between them.

    Links are created lazily with a default latency model; specific pairs
    can be overridden (e.g. the integrator may be co-located with the DE).
    """

    def __init__(self, env, default_latency=None):
        self.env = env
        self.default_latency = (
            default_latency if default_latency is not None else FixedLatency(0.0005)
        )
        self._links = {}
        self._overrides = {}
        # Fault rules (managed by repro.faults.FaultInjector, or directly).
        # Pairs may use "*" as a wildcard endpoint.
        self._partitions = set()  # {(src, dst)} currently severed
        self._drop_rules = {}  # (src, dst) -> (rate, random.Random)
        self._latency_spikes = {}  # (src, dst) -> extra seconds
        self.messages_lost = 0

    def set_latency(self, src, dst, latency, symmetric=True):
        """Override the latency model for ``src -> dst`` (and back)."""
        self._overrides[(src, dst)] = latency
        if symmetric:
            self._overrides[(dst, src)] = latency
        # Drop any cached links so the override takes effect.
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)

    def link(self, src, dst):
        """The (cached) FIFO link from ``src`` to ``dst``."""
        key = (src, dst)
        if key not in self._links:
            latency = self._overrides.get(key, self.default_latency)
            self._links[key] = Link(
                self.env, latency, name=f"{src}->{dst}",
                network=self, src=src, dst=dst,
            )
        return self._links[key]

    def transfer(self, src, dst, value=None, size=0):
        """Event firing with ``value`` after the ``src -> dst`` latency."""
        return self.link(src, dst).transfer(value, size=size)

    @property
    def bytes_sent(self):
        """Total accounted payload bytes across every link."""
        return sum(link.bytes_sent for link in self._links.values())

    # -- fault rules (see repro.faults) -----------------------------------

    @staticmethod
    def _pairs(src, dst, symmetric):
        return [(src, dst), (dst, src)] if symmetric else [(src, dst)]

    def _matching(self, rules, src, dst):
        """First rule key covering ``src -> dst`` (with ``"*"`` wildcards).

        ``rules`` may be any container supporting ``in`` (set or dict).
        """
        for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
            if key in rules:
                return key
        return None

    def partition(self, src, dst, symmetric=True):
        """Sever ``src -> dst`` (and back): every message is lost."""
        self._partitions.update(self._pairs(src, dst, symmetric))

    def heal(self, src, dst, symmetric=True):
        """Remove a partition installed by :meth:`partition`."""
        self._partitions.difference_update(self._pairs(src, dst, symmetric))

    def is_partitioned(self, src, dst):
        return self._matching(self._partitions, src, dst) is not None

    def set_drop_rate(self, src, dst, rate, seed=0, symmetric=True):
        """Lose a seeded-random fraction of messages on ``src -> dst``."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"drop rate {rate} not in [0, 1]")
        rng = random.Random(seed)
        for pair in self._pairs(src, dst, symmetric):
            self._drop_rules[pair] = (rate, rng)

    def clear_drop_rate(self, src, dst, symmetric=True):
        for pair in self._pairs(src, dst, symmetric):
            self._drop_rules.pop(pair, None)

    def set_extra_latency(self, src, dst, extra, symmetric=True):
        """Add ``extra`` seconds to every delivery on ``src -> dst``."""
        if extra < 0:
            raise ConfigurationError(f"negative extra latency {extra}")
        for pair in self._pairs(src, dst, symmetric):
            self._latency_spikes[pair] = float(extra)

    def clear_extra_latency(self, src, dst, symmetric=True):
        for pair in self._pairs(src, dst, symmetric):
            self._latency_spikes.pop(pair, None)

    def heal_all(self):
        """Drop every fault rule (end of a chaos experiment)."""
        self._partitions.clear()
        self._drop_rules.clear()
        self._latency_spikes.clear()

    def fault_verdict(self, src, dst):
        """``(lost, extra_delay)`` for one delivery on ``src -> dst``.

        Consumes one sample from the drop rule's RNG when one applies,
        so verdicts are deterministic given the event schedule.
        """
        if self.is_partitioned(src, dst):
            self.messages_lost += 1
            return True, 0.0
        rule_key = self._matching(self._drop_rules, src, dst)
        if rule_key is not None:
            rate, rng = self._drop_rules[rule_key]
            if rng.random() < rate:
                self.messages_lost += 1
                return True, 0.0
        spike_key = self._matching(self._latency_spikes, src, dst)
        extra = self._latency_spikes[spike_key] if spike_key is not None else 0.0
        return False, extra
