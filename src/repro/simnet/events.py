"""Event loop and event primitives for the simulation kernel.

The design follows the classic discrete-event pattern: a priority queue of
``(time, priority, sequence, event)`` entries, popped in order.  Events carry
callbacks; a :class:`~repro.simnet.process.Process` registers itself as a
callback on whatever event its generator yields.

Times are floats in **seconds** of virtual time.
"""

import heapq
from itertools import count

#: Scheduling priorities.  URGENT is used internally for process resumption
#: so that, at equal timestamps, resumed processes run before fresh timeouts.
URGENT = 0
NORMAL = 1

_PENDING = object()


class SimulationError(RuntimeError):
    """The simulation reached an invalid state (e.g. negative delay)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event is *triggered* once scheduled, and *processed* once its
    callbacks have run.  ``succeed`` and ``fail`` both trigger the event;
    the distinction only affects what a waiting process sees (a value is
    sent into the generator, an exception is thrown into it).
    """

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None

    @property
    def triggered(self):
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded; only valid once triggered."""
        return self._ok

    @property
    def value(self):
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise AttributeError("event has not been triggered yet")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` seconds of virtual time."""

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class _Condition(Event):
    """Shared implementation of :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        self._pending = sum(1 for e in self._events if not e.processed)
        for event in self._events:
            if event.processed:
                if not event.ok and not self.triggered:
                    self.fail(event.value)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered and self._done():
            self.succeed(self._collect())

    def _observe(self, event):
        self._pending -= 1
        if self.triggered:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
        elif self._done():
            self.succeed(self._collect())

    def _done(self):
        raise NotImplementedError

    def _collect(self):
        """Map each already-delivered event to its value.

        Uses ``processed`` rather than ``triggered``: a Timeout carries its
        value from creation (so it reads as triggered), but it has not
        *fired* until its callbacks ran.
        """
        return {e: e.value for e in self._events if e.processed and e.ok}


class AllOf(_Condition):
    """Fires when *all* given events have fired (fails fast on failure)."""

    def _done(self):
        return self._pending == 0


class AnyOf(_Condition):
    """Fires when *any* one of the given events has fired."""

    def _done(self):
        return self._pending < len(self._events) or not self._events


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=10.0)
    """

    #: Which execution backend this kernel is (``repro.realtime`` ships a
    #: wall-clock ``"realtime"`` environment with the same surface).
    backend = "sim"

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._eid = count()
        self.active_process = None

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Queue ``event`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def event(self):
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` firing after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events):
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator):
        """Start a new :class:`Process` running ``generator``."""
        from repro.simnet.process import Process

        return Process(self, generator)

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process the single next event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event.ok and not getattr(event, "_defused", False):
            # An unhandled failure: re-raise so bugs don't pass silently.
            raise event.value

    def run(self, until=None):
        """Run until no events remain, or until virtual time ``until``.

        If ``until`` is an :class:`Event`, run until it fires and return its
        value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                if stop.ok:
                    return stop.value
                raise stop.value
            done = []
            stop.callbacks.append(done.append)
            while not done and self._queue:
                self.step()
            if not done:
                raise SimulationError("event queue empty before target event fired")
            if stop.ok:
                return stop.value
            stop._defused = True
            raise stop.value

        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: clock already at {self._now}"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None

    def __repr__(self):
        return f"<Environment now={self._now} queued={len(self._queue)}>"
