"""Structured tracing for latency breakdowns.

The Table 2 reproduction needs per-stage latencies (Checkout->integrator,
integrator compute, integrator->Shipping, shipment processing).  Components
record point events and spans on a shared :class:`Tracer`; the metrics layer
aggregates them into the paper's rows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """A point event: something happened at ``time``."""

    time: float
    category: str
    name: str
    attrs: dict = field(default_factory=dict)


@dataclass
class Span:
    """A named interval, optionally keyed to a request/correlation id."""

    category: str
    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self):
        if self.end is None:
            raise ValueError(f"span {self.category}/{self.name} is still open")
        return self.end - self.start


class TraceError(Exception):
    """A tracing-protocol violation (e.g. ending a span never begun)."""


class Tracer:
    """Collects point events and spans during a simulation run."""

    #: Optional :class:`repro.obs.ObsPlane` attachment.  Store servers
    #: and watches already hold a tracer reference, so hanging the
    #: observability plane here makes it reachable everywhere without
    #: new constructor plumbing.
    obs = None

    def __init__(self, env):
        self.env = env
        self.events = []
        self._open_spans = {}
        self.spans = []
        # Realtime environments expose ``trace_clock()`` (the wall
        # clock); without it timestamps are the schedule clock.  Same
        # recording API either way.
        clock = getattr(env, "trace_clock", None)
        self._clock = clock if clock is not None else (lambda: env.now)

    @property
    def now(self):
        """The timestamp source this tracer stamps with."""
        return self._clock()

    def record(self, category, name, **attrs):
        """Record a point event at the current time."""
        self.events.append(TraceEvent(self._clock(), category, name, attrs))

    def begin(self, category, name, key=None, **attrs):
        """Open a span; ``key`` distinguishes concurrent spans of one name."""
        span = Span(category, name, self._clock(), attrs=attrs)
        self._open_spans[(category, name, key)] = span
        return span

    def end(self, category, name, key=None, **attrs):
        """Close the matching open span and return it.

        Raises :class:`TraceError` when no span ``begin(category, name,
        key)`` is open -- naming the span and what *is* open, because a
        silent ``KeyError`` from deep inside a reconciler is useless.
        """
        span = self._open_spans.pop((category, name, key), None)
        if span is None:
            open_now = sorted(str(k) for k in self._open_spans)
            raise TraceError(
                f"cannot end span {category}/{name} (key={key!r}): it was "
                f"never begun or already ended; open spans: "
                f"{open_now if open_now else 'none'}"
            )
        span.end = self._clock()
        span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def durations(self, category, name=None):
        """All closed-span durations for a category (optionally one name)."""
        return [
            s.duration
            for s in self.spans
            if s.category == category and (name is None or s.name == name)
        ]

    def events_by_name(self, category=None):
        """Point events grouped by ``(category, name)``."""
        grouped = defaultdict(list)
        for event in self.events:
            if category is None or event.category == category:
                grouped[(event.category, event.name)].append(event)
        return dict(grouped)

    def timestamps(self, category, name, key_attr=None):
        """Times of matching point events, optionally keyed by an attribute.

        With ``key_attr`` the result is a dict ``{attr_value: time}`` keeping
        the *first* occurrence per key; without it, a sorted list of times.
        """
        if key_attr is None:
            return sorted(
                e.time
                for e in self.events
                if e.category == category and e.name == name
            )
        keyed = {}
        for event in self.events:
            if event.category == category and event.name == name:
                key = event.attrs.get(key_attr)
                if key is not None and key not in keyed:
                    keyed[key] = event.time
        return keyed

    def clear(self):
        """Drop all recorded events and spans."""
        self.events.clear()
        self.spans.clear()
        self._open_spans.clear()

    def to_chrome_trace(self):
        """Export as Chrome trace-event JSON objects (``chrome://tracing``).

        Point events become instant events (``ph: "i"``), closed spans
        become complete events (``ph: "X"``).  Timestamps are microseconds
        of virtual time; the category doubles as the process name so each
        subsystem gets its own track.
        """
        out = []
        for event in self.events:
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "i",
                    "ts": event.time * 1e6,
                    "pid": event.category,
                    "tid": str(event.attrs.get("cid")
                               or event.attrs.get("key") or 0),
                    "s": "p",
                    "args": dict(event.attrs),
                }
            )
        for span in self.spans:
            if span.end is None:
                continue
            out.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": span.category,
                    "tid": str(span.attrs.get("cid")
                               or span.attrs.get("key") or 0),
                    "args": dict(span.attrs),
                }
            )
        out.sort(key=lambda entry: entry["ts"])
        return out
