"""Generator-based simulation processes.

A process wraps a generator.  Each ``yield <event>`` suspends the process
until the event fires; the event's value is sent back into the generator
(or its failure exception is thrown into it).  A process is itself an
:class:`~repro.simnet.events.Event` that fires when the generator returns,
so processes can wait on one another::

    def child(env):
        yield env.timeout(1.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        assert result == "done"
"""

from repro.simnet.events import URGENT, Event, Interrupt, SimulationError


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target = None
        # Kick off the generator at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)
        init.callbacks.append(self._resume)
        self._target = init

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self):
        """The event this process is currently waiting on (or None)."""
        return self._target

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event):
        if self.triggered:
            return  # already finished (e.g. interrupted after completing)
        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target may fire later and must not resume us again).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self.env.active_process = self
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                event._defused = True
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self.env.active_process = None
            self._target = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.env.active_process = None
            self._target = None
            self.fail(exc)
            return
        self.env.active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
        self._target = next_event
        if next_event.processed:
            # The event already fired; resume on the next scheduler tick.
            redo = Event(self.env)
            redo._ok = next_event.ok
            redo._value = next_event._value
            if not next_event.ok:
                redo._defused = True
            redo.callbacks.append(self._resume)
            self.env.schedule(redo, priority=URGENT)
            self._target = redo
        else:
            next_event.callbacks.append(self._resume)

    def __repr__(self):
        name = getattr(self._generator, "__name__", "process")
        state = "alive" if self.is_alive else "finished"
        return f"<Process {name} {state}>"
