"""Blocking synchronization primitives for simulation processes.

- :class:`Store` -- a FIFO queue; ``get()`` blocks the calling process
  until an item is available.  A bounded store applies its typed
  *overflow policy* when full: ``block`` (``put()`` waits, the classic
  behaviour), ``shed_oldest`` / ``shed_newest`` (drop an item, count the
  shed, notify ``on_shed``), or ``reject`` (the put event fails with a
  retryable :class:`~repro.errors.OverloadedError`).
- :class:`Resource` -- a counting semaphore with FIFO granting; used to
  model bounded server concurrency (e.g. a store's worker pool).
"""

from collections import deque

from repro.errors import OverloadedError
from repro.flow.policy import BLOCK, REJECT, SHED_OLDEST, check_overflow
from repro.simnet.events import Event


class Store:
    """FIFO queue of items shared between processes.

    ``put`` and ``get`` both return events; processes ``yield`` them::

        def producer(env, store):
            yield store.put("item")

        def consumer(env, store):
            item = yield store.get()

    With a finite ``capacity`` and a non-blocking ``overflow`` policy the
    queue degrades gracefully under overload instead of stalling its
    producers: sheds are counted (``shed``), handed to ``on_shed(item)``
    (e.g. a dead-letter queue), and ``reject`` surfaces a retryable
    :class:`~repro.errors.OverloadedError` through the put event.
    ``peak_depth`` records the deepest the queue ever got.
    """

    def __init__(self, env, capacity=float("inf"), overflow=BLOCK,
                 on_shed=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.overflow = check_overflow(overflow)
        self.on_shed = on_shed
        self.items = deque()
        self._getters = deque()
        self._putters = deque()
        self.shed = 0
        self.rejected = 0
        self.peak_depth = 0

    def __len__(self):
        return len(self.items)

    @property
    def full(self):
        return len(self.items) >= self.capacity

    def put(self, item):
        """Event that fires once ``item`` has been enqueued (or shed).

        Under a non-blocking overflow policy the event resolves
        immediately even when the queue is full: ``shed_oldest`` evicts
        the head to make room, ``shed_newest`` drops ``item`` itself,
        and ``reject`` fails the event with
        :class:`~repro.errors.OverloadedError`.
        """
        event = Event(self.env)
        if self.overflow != BLOCK and self.full and not self._getters:
            if self.overflow == REJECT:
                self.rejected += 1
                event.fail(OverloadedError(
                    f"queue is full ({len(self.items)}/{self.capacity})"
                ))
                return event
            if self.overflow == SHED_OLDEST:
                self._shed(self.items.popleft())
                self.items.append(item)
            else:  # SHED_NEWEST: the incoming item is the casualty
                self._shed(item)
            event.succeed()
            return event
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self):
        """Event that fires with the next item once one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _shed(self, item):
        self.shed += 1
        if self.on_shed is not None:
            self.on_shed(item)

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                self.peak_depth = max(self.peak_depth, len(self.items))
                put_event.succeed()
                progressed = True
            while self._getters and self.items:
                get_event = self._getters.popleft()
                get_event.succeed(self.items.popleft())
                progressed = True


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage::

        def worker(env, resource):
            yield resource.acquire()
            try:
                yield env.timeout(1.0)
            finally:
                resource.release()
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()
        self.peak_queued = 0

    @property
    def in_use(self):
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self):
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self):
        """Event that fires once a slot has been granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
            self.peak_queued = max(self.peak_queued, len(self._waiters))
        return event

    def release(self):
        """Release one held slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
