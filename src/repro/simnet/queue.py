"""Blocking synchronization primitives for simulation processes.

- :class:`Store` -- an unbounded-or-bounded FIFO queue; ``get()`` blocks the
  calling process until an item is available, ``put()`` blocks while full.
- :class:`Resource` -- a counting semaphore with FIFO granting; used to model
  bounded server concurrency (e.g. a store's worker pool).
"""

from collections import deque

from repro.simnet.events import Event


class Store:
    """FIFO queue of items shared between processes.

    ``put`` and ``get`` both return events; processes ``yield`` them::

        def producer(env, store):
            yield store.put("item")

        def consumer(env, store):
            item = yield store.get()
    """

    def __init__(self, env, capacity=float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items = deque()
        self._getters = deque()
        self._putters = deque()

    def __len__(self):
        return len(self.items)

    def put(self, item):
        """Event that fires once ``item`` has been enqueued."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self):
        """Event that fires with the next item once one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
                progressed = True
            while self._getters and self.items:
                get_event = self._getters.popleft()
                get_event.succeed(self.items.popleft())
                progressed = True


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage::

        def worker(env, resource):
            yield resource.acquire()
            try:
                yield env.timeout(1.0)
            finally:
                resource.release()
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self):
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self):
        """Event that fires once a slot has been granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release one held slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
